//! Rule `concurrency-discipline`: PR 7's byte-identical parallelism rests
//! on one argument — workers touch **disjoint** `&mut` chunks and nothing
//! else, and the scope join is the only merge point. This rule codifies
//! the argument so a future edit cannot silently break the serial
//! fingerprint:
//!
//! 1. **No mutable statics** in library/binary code, anywhere — a
//!    `static mut` is cross-worker shared state by construction.
//! 2. Inside a `thread::scope` region (library code): no lock or atomic
//!    types (`Mutex`, `RwLock`, `Condvar`, `Atomic*`) and no `.lock(`
//!    acquisitions (the closure-side face of a lock captured from
//!    outside) — shared synchronization reintroduces
//!    interleaving-dependent state.
//! 3. A scope region that spawns workers must sit in a function that
//!    splits its data with the disjoint-chunk pattern
//!    (`split_at_mut` / `chunks_mut` / `chunks_exact_mut`).
//! 4. Functions **reachable from calls made inside the region** (the work
//!    the workers run) must not mention locks, atomics, or mutable
//!    statics either — a worker taking a lock three calls down is just as
//!    order-dependent as one taking it inline.

use std::collections::BTreeSet;

use crate::graph::{extract_calls, Graph, Workspace};
use crate::lexer::{is_ident, is_punct, Tok, Token};
use crate::source::TargetKind;

use super::Finding;

pub const NAME: &str = "concurrency-discipline";

const CHUNK_PATTERNS: &[&str] = &["split_at_mut", "chunks_mut", "chunks_exact_mut"];

pub fn check(ws: &Workspace, graph: &Graph, out: &mut Vec<Finding>) {
    // 1. Mutable statics, everywhere in lib/bin code.
    for wf in &ws.files {
        if !matches!(wf.source.kind, TargetKind::Lib | TargetKind::Bin) {
            continue;
        }
        for (i, t) in wf.source.tokens.iter().enumerate() {
            if is_ident(&wf.source.tokens, i, "static")
                && is_ident(&wf.source.tokens, i + 1, "mut")
                && !wf.source.is_test_line(t.line)
            {
                out.push(Finding::at(
                    NAME,
                    &wf.source,
                    t.line,
                    "`static mut` is cross-worker shared mutable state; \
                     pass `&mut` slices into the workers instead"
                        .to_owned(),
                ));
            }
        }
    }
    // 2–4. thread::scope regions in library code.
    for (fi, wf) in ws.files.iter().enumerate() {
        if wf.source.kind != TargetKind::Lib {
            continue;
        }
        let tokens = &wf.source.tokens;
        for i in 0..tokens.len() {
            if !(is_ident(tokens, i, "thread")
                && is_punct(tokens, i + 1, ':')
                && is_punct(tokens, i + 2, ':')
                && is_ident(tokens, i + 3, "scope")
                && is_punct(tokens, i + 4, '('))
            {
                continue;
            }
            if wf.source.is_test_line(tokens[i].line) {
                continue;
            }
            let region = i + 4..match_paren(tokens, i + 4) + 1;
            check_region(ws, graph, fi, region, out);
        }
    }
}

fn check_region(
    ws: &Workspace,
    graph: &Graph,
    file: usize,
    region: std::ops::Range<usize>,
    out: &mut Vec<Finding>,
) {
    let source = &ws.files[file].source;
    let tokens = &source.tokens;
    let mut spawns = false;
    for i in region.clone() {
        let Some(t) = tokens.get(i) else { continue };
        if source.is_test_line(t.line) {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            if is_shared_state_name(name) {
                out.push(Finding::at(
                    NAME,
                    source,
                    t.line,
                    format!(
                        "`{name}` inside a `thread::scope` region: workers must \
                         mutate only disjoint `&mut` chunks; merge after the \
                         scope join, not through shared synchronization"
                    ),
                ));
            }
            if name == "lock"
                && is_punct(tokens, i.wrapping_sub(1), '.')
                && is_punct(tokens, i + 1, '(')
            {
                out.push(Finding::at(
                    NAME,
                    source,
                    t.line,
                    "lock acquisition inside a `thread::scope` region: the \
                     guarded state is shared across workers; split it into \
                     disjoint `&mut` chunks instead"
                        .to_owned(),
                ));
            }
            if name == "spawn" && is_punct(tokens, i.wrapping_sub(1), '.') {
                spawns = true;
            }
        }
    }
    // 3. Spawning regions need the disjoint-chunk split in the enclosing fn.
    if spawns {
        if let Some(idx) = enclosing_fn(graph, file, region.start) {
            let node = &graph.nodes[idx];
            let body = node.item.body.clone().unwrap_or(region.clone());
            let has_split = tokens[body.clone()]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if CHUNK_PATTERNS.contains(&s.as_str())));
            if !has_split {
                out.push(Finding::at_symbol(
                    NAME,
                    source,
                    tokens[region.start].line,
                    &node.qual,
                    "worker spawn without the disjoint-chunk pattern: split the \
                     data with `split_at_mut`/`chunks_mut` so each worker owns \
                     its slice"
                        .to_owned(),
                ));
            }
        }
    }
    // 4. Work reachable from inside the region must be lock/atomic-free.
    let caller_self =
        enclosing_fn(graph, file, region.start).and_then(|i| graph.nodes[i].item.self_type.clone());
    let entry_calls = extract_calls(source, region);
    let mut roots: Vec<usize> = Vec::new();
    for call in &entry_calls {
        roots.extend(graph.resolve(call, caller_self.as_deref(), file));
    }
    roots.sort_unstable();
    roots.dedup();
    let reach = graph.reach(&roots, &BTreeSet::new(), &|n| {
        !n.is_test && ws.files[n.file].source.kind == TargetKind::Lib
    });
    for &idx in reach.parent.keys() {
        let node = &graph.nodes[idx];
        let nsrc = &ws.files[node.file].source;
        let Some(body) = node.item.body.clone() else {
            continue;
        };
        for j in body {
            let Some(t) = nsrc.tokens.get(j) else {
                continue;
            };
            if nsrc.is_test_line(t.line) {
                continue;
            }
            if let Tok::Ident(name) = &t.tok {
                if is_shared_state_name(name) {
                    let path = graph.path(&reach, idx).join(" → ");
                    out.push(Finding::at_symbol(
                        NAME,
                        nsrc,
                        t.line,
                        &node.qual,
                        format!(
                            "`{name}` in worker-reachable code (`{}` runs under \
                             `thread::scope` via {path}): order-dependent shared \
                             state breaks the serial fingerprint",
                            node.qual
                        ),
                    ));
                }
            }
        }
    }
}

fn is_shared_state_name(name: &str) -> bool {
    name == "Mutex" || name == "RwLock" || name == "Condvar" || name.starts_with("Atomic")
}

/// The graph node whose body contains token index `at` in `file` (the
/// innermost, i.e. the one with the shortest body).
fn enclosing_fn(graph: &Graph, file: usize, at: usize) -> Option<usize> {
    graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.file == file)
        .filter(|(_, n)| n.item.body.as_ref().is_some_and(|b| b.contains(&at)))
        .min_by_key(|(_, n)| n.item.body.as_ref().map_or(usize::MAX, |b| b.end - b.start))
        .map(|(i, _)| i)
}

/// Index of the `)` matching the `(` at `open` (or the last token).
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}
