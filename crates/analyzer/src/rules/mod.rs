//! The lint rules. Each rule is a pure function from parsed sources (or
//! manifests, or the workspace item graph) to findings; `crate::run`
//! wires them to the workspace walk and the allowlist.
//!
//! Per-file rules see one [`SourceFile`] at a time; graph rules
//! ([`check_workspace`]) see the whole [`Workspace`] plus the conservative
//! call [`Graph`] built from it.

pub mod cast_safety;
pub mod concurrency;
pub mod deprecated;
pub mod determinism;
pub mod error_discard;
pub mod hot_path_alloc;
pub mod layering;
pub mod obs_names;
pub mod panic_freedom;

use std::collections::BTreeSet;

use crate::graph::{Graph, Workspace};
use crate::source::SourceFile;

/// Names of every source + manifest + graph rule, in report order. The
/// pseudo-rules `allowlist-unused` and `allowlist-error` are emitted by
/// the driver.
pub const RULE_NAMES: &[&str] = &[
    determinism::NAME,
    panic_freedom::NAME,
    error_discard::NAME,
    layering::NAME,
    deprecated::NAME,
    hot_path_alloc::NAME,
    cast_safety::NAME,
    concurrency::NAME,
    obs_names::NAME,
    "allowlist-unused",
    "allowlist-error",
];

/// One violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Trimmed source line, used for display and allowlist `contains`.
    pub snippet: String,
    /// Qualified name of the containing `fn` (`Type::name` or bare
    /// `name`), set by graph rules; empty for per-file findings. Used for
    /// allowlist `symbol =` scoping.
    pub symbol: String,
}

impl Finding {
    pub fn at(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: file.rel_path.clone(),
            line,
            message,
            snippet: file.snippet(line).to_owned(),
            symbol: String::new(),
        }
    }

    /// Like [`Finding::at`], tagged with the containing symbol.
    pub fn at_symbol(
        rule: &'static str,
        file: &SourceFile,
        line: u32,
        symbol: &str,
        message: String,
    ) -> Finding {
        Finding {
            symbol: symbol.to_owned(),
            ..Finding::at(rule, file, line, message)
        }
    }
}

/// Runs every source-level rule over one file.
pub fn check_source(file: &SourceFile, out: &mut Vec<Finding>) {
    determinism::check(file, out);
    panic_freedom::check(file, out);
    error_discard::check(file, out);
    deprecated::check(file, out);
}

/// Runs every graph rule over the workspace. `cold` holds the allowlist's
/// `symbol =` scopes for `hot-path-alloc` (cold/setup functions cut from
/// the hot-path walk); the returned set names the scopes that actually cut
/// an edge, so the driver can fail stale ones as `allowlist-unused`.
pub fn check_workspace(
    ws: &Workspace,
    graph: &Graph,
    cold: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) -> BTreeSet<String> {
    let used_cold = hot_path_alloc::check(ws, graph, cold, out);
    cast_safety::check(ws, graph, out);
    concurrency::check(ws, graph, out);
    obs_names::check(ws, out);
    determinism::check_graph(ws, graph, out);
    used_cold
}
