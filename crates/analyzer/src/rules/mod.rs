//! The lint rules. Each rule is a pure function from parsed sources (or
//! manifests) to findings; `crate::run` wires them to the workspace walk
//! and the allowlist.

pub mod deprecated;
pub mod determinism;
pub mod error_discard;
pub mod layering;
pub mod panic_freedom;

use crate::source::SourceFile;

/// Names of every source + manifest rule, in report order. The pseudo-rules
/// `allowlist-unused` and `allowlist-error` are emitted by the driver.
pub const RULE_NAMES: &[&str] = &[
    determinism::NAME,
    panic_freedom::NAME,
    error_discard::NAME,
    layering::NAME,
    deprecated::NAME,
    "allowlist-unused",
    "allowlist-error",
];

/// One violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Trimmed source line, used for display and allowlist `contains`.
    pub snippet: String,
}

impl Finding {
    pub fn at(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: file.rel_path.clone(),
            line,
            message,
            snippet: file.snippet(line).to_owned(),
        }
    }
}

/// Runs every source-level rule over one file.
pub fn check_source(file: &SourceFile, out: &mut Vec<Finding>) {
    determinism::check(file, out);
    panic_freedom::check(file, out);
    error_discard::check(file, out);
    deprecated::check(file, out);
}
