//! The dogfood test: the shipped workspace itself must be clean under every
//! rule — any violation is either fixed or carries a justified allowlist
//! entry. This is the same check `ci.sh` runs via `--deny-all`.

use std::path::PathBuf;

use swamp_analyzer::rules::RULE_NAMES;
use swamp_analyzer::{run, Config};

#[test]
fn shipped_workspace_is_clean_under_deny_all() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let analysis = run(&Config::new(root)).expect("analyzer runs on the shipped tree");
    assert!(
        analysis.findings.is_empty(),
        "workspace has unallowlisted findings:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk really covered the tree.
    assert!(
        analysis.files_scanned > 100,
        "only {} files scanned",
        analysis.files_scanned
    );
    assert!(
        analysis.manifests_checked >= 12,
        "only {} manifests",
        analysis.manifests_checked
    );
    // Every allowlisted exception carries its written justification.
    assert!(analysis.allowed.iter().all(|a| a.justification.len() >= 10));
}

#[test]
fn all_nine_rules_run_on_the_shipped_tree() {
    // The registry carries the nine analysis rules plus the two allowlist
    // meta-rules; `run` executes every one of them — a rule that fell out
    // of the registry would silently stop gating CI.
    for rule in [
        "determinism",
        "panic-freedom",
        "error-discard",
        "layering",
        "deprecated-api",
        "hot-path-alloc",
        "cast-safety",
        "concurrency-discipline",
        "obs-name-drift",
    ] {
        assert!(RULE_NAMES.contains(&rule), "missing rule {rule}");
    }
    assert_eq!(
        RULE_NAMES.len(),
        11,
        "nine rules + two allowlist meta-rules"
    );
}
