//! End-to-end CLI tests: the binary must exit non-zero on a seeded
//! violation under `--deny-all` and zero on a clean workspace, with the
//! finding visible in the JSON report.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swamp-analyzer")
}

/// A scratch workspace under the OS temp dir; removed on drop. The name is
/// keyed by pid + a caller tag, so parallel test binaries don't collide.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("swamp-analyzer-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture file");
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Lays down a one-member workspace; `lib_src` becomes the member's lib.rs.
fn seed_workspace(ws: &Scratch, lib_src: &str) {
    ws.write("Cargo.toml", "[workspace]\nmembers = [\"crates/net\"]\n");
    ws.write(
        "crates/net/Cargo.toml",
        "[package]\nname = \"swamp-net\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    );
    ws.write("crates/net/src/lib.rs", lib_src);
}

#[test]
fn deny_all_fails_on_seeded_violation_and_reports_it() {
    let ws = Scratch::new("bad");
    seed_workspace(
        &ws,
        "pub fn stamp() -> u128 {\n    std::time::Instant::now().elapsed().as_millis()\n}\n",
    );
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all", "--json", "-"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\": \"determinism\""), "{json}");
    assert!(json.contains("crates/net/src/lib.rs"), "{json}");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("error[determinism]"), "{text}");
}

#[test]
fn deny_all_passes_on_clean_workspace() {
    let ws = Scratch::new("clean");
    seed_workspace(&ws, "pub fn double(x: u64) -> u64 {\n    x * 2\n}\n");
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn allowlist_downgrades_finding_but_stale_entry_fails() {
    let ws = Scratch::new("allow");
    seed_workspace(
        &ws,
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );
    ws.write(
        "analyzer.allow.toml",
        r#"[[allow]]
rule = "panic-freedom"
path = "crates/net/src/lib.rs"
justification = "fixture: documented scratch exception"
"#,
    );
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Fix the code but keep the entry: the stale exception itself fails.
    ws.write(
        "crates/net/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n",
    );
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("allowlist-unused"), "{text}");
}

#[test]
fn unknown_rule_flag_is_a_usage_error() {
    let out = Command::new(bin())
        .args(["--rule", "no-such-rule"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn sarif_output_agrees_with_the_json_report() {
    let ws = Scratch::new("sarif");
    seed_workspace(
        &ws,
        "pub fn stamp() -> u128 {\n    std::time::Instant::now().elapsed().as_millis()\n}\n",
    );
    let sarif_path = ws.path().join("out.sarif");
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all", "--json", "-", "--sarif"])
        .arg(&sarif_path)
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sarif = fs::read_to_string(&sarif_path).expect("sarif file written");
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"determinism\""), "{sarif}");
    assert!(
        sarif.contains("\"uri\": \"crates/net/src/lib.rs\""),
        "{sarif}"
    );
    assert!(sarif.contains("\"startLine\": 2"), "{sarif}");
    // Same result set in both formats: one SARIF result per JSON finding.
    let json = String::from_utf8_lossy(&out.stdout);
    let json_count: usize = json
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"finding_count\": "))
        .and_then(|n| n.trim_end_matches(',').parse().ok())
        .expect("finding_count in JSON");
    let sarif_count = sarif.matches("\"ruleId\"").count();
    assert_eq!(json_count, sarif_count, "json:\n{json}\nsarif:\n{sarif}");
}

#[test]
fn symbol_scoped_cold_cut_passes_then_goes_stale() {
    let ws = Scratch::new("symbol");
    // `Platform::pump` is a hot-path entry; `step` allocates two calls in.
    let hot = "pub struct Platform;\n\
               impl Platform {\n\
                   pub fn pump(&mut self) { self.step(); }\n\
                   fn step(&self) { let _s = format!(\"x\"); }\n\
               }\n";
    seed_workspace(&ws, hot);
    ws.write(
        "analyzer.allow.toml",
        r#"[[allow]]
rule = "hot-path-alloc"
path = "crates/net/src/lib.rs"
symbol = "Platform::step"
justification = "fixture: step is a documented cold boundary"
"#,
    );
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Break the edge that made the cut live: the entry no longer reaches
    // `step`, so the symbol-scoped entry must fail as stale.
    let cold = "pub struct Platform;\n\
                impl Platform {\n\
                    pub fn pump(&mut self) {}\n\
                    fn step(&self) { let _s = format!(\"x\"); }\n\
                }\n";
    ws.write("crates/net/src/lib.rs", cold);
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("allowlist-unused"), "{text}");
    assert!(text.contains("Platform::step"), "{text}");
}
