//! End-to-end CLI tests: the binary must exit non-zero on a seeded
//! violation under `--deny-all` and zero on a clean workspace, with the
//! finding visible in the JSON report.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swamp-analyzer")
}

/// A scratch workspace under the OS temp dir; removed on drop. The name is
/// keyed by pid + a caller tag, so parallel test binaries don't collide.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("swamp-analyzer-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture file");
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Lays down a one-member workspace; `lib_src` becomes the member's lib.rs.
fn seed_workspace(ws: &Scratch, lib_src: &str) {
    ws.write("Cargo.toml", "[workspace]\nmembers = [\"crates/net\"]\n");
    ws.write(
        "crates/net/Cargo.toml",
        "[package]\nname = \"swamp-net\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    );
    ws.write("crates/net/src/lib.rs", lib_src);
}

#[test]
fn deny_all_fails_on_seeded_violation_and_reports_it() {
    let ws = Scratch::new("bad");
    seed_workspace(
        &ws,
        "pub fn stamp() -> u128 {\n    std::time::Instant::now().elapsed().as_millis()\n}\n",
    );
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all", "--json", "-"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\": \"determinism\""), "{json}");
    assert!(json.contains("crates/net/src/lib.rs"), "{json}");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("error[determinism]"), "{text}");
}

#[test]
fn deny_all_passes_on_clean_workspace() {
    let ws = Scratch::new("clean");
    seed_workspace(&ws, "pub fn double(x: u64) -> u64 {\n    x * 2\n}\n");
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn allowlist_downgrades_finding_but_stale_entry_fails() {
    let ws = Scratch::new("allow");
    seed_workspace(
        &ws,
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );
    ws.write(
        "analyzer.allow.toml",
        r#"[[allow]]
rule = "panic-freedom"
path = "crates/net/src/lib.rs"
justification = "fixture: documented scratch exception"
"#,
    );
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Fix the code but keep the entry: the stale exception itself fails.
    ws.write(
        "crates/net/src/lib.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n",
    );
    let out = Command::new(bin())
        .args(["--root"])
        .arg(ws.path())
        .args(["--deny-all"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("allowlist-unused"), "{text}");
}

#[test]
fn unknown_rule_flag_is_a_usage_error() {
    let out = Command::new(bin())
        .args(["--rule", "no-such-rule"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(3));
}
