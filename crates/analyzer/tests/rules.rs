//! Fixture tests: for every rule, one snippet that must trip it and one
//! that must stay clean, exercised through the same `analyze_str` path the
//! workspace walk uses.

use std::collections::BTreeSet;

use swamp_analyzer::allowlist;
use swamp_analyzer::manifest;
use swamp_analyzer::rules::{layering, Finding, RULE_NAMES};
use swamp_analyzer::source::TargetKind;
use swamp_analyzer::{analyze_files_with_cold, analyze_str, apply_allowlist};

fn lib(src: &str) -> Vec<Finding> {
    analyze_str("crates/x/src/lib.rs", "swamp-x", TargetKind::Lib, src)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_flags_wall_clock_and_entropy() {
    let bad = r#"
        pub fn now_ms() -> u128 {
            let t = std::time::Instant::now();
            t.elapsed().as_millis()
        }
        pub fn seed() -> u64 { rand::thread_rng().gen() }
    "#;
    let f = lib(bad);
    let det: Vec<_> = f.iter().filter(|f| f.rule == "determinism").collect();
    assert!(det.len() >= 2, "Instant and thread_rng both flag: {f:?}");
    assert!(det.iter().any(|f| f.message.contains("Instant")));
    assert!(det.iter().any(|f| f.message.contains("thread_rng")));
}

#[test]
fn determinism_ignores_tests_benches_and_criterion() {
    let in_test = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn timing() { let _t = std::time::Instant::now(); }
        }
    "#;
    assert!(lib(in_test).iter().all(|f| f.rule != "determinism"));
    // Bench targets are outside the rule's scope entirely.
    let f = analyze_str(
        "crates/x/benches/b.rs",
        "swamp-x",
        TargetKind::Bench,
        "fn main() { let t = std::time::Instant::now(); }",
    );
    assert!(f.is_empty(), "{f:?}");
    // The criterion shim is the sanctioned wall-clock site.
    let f = analyze_str(
        "crates/criterion-shim/src/lib.rs",
        "criterion",
        TargetKind::Lib,
        "pub fn timer() -> std::time::Instant { std::time::Instant::now() }",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn determinism_flags_hash_iteration_feeding_serialization() {
    let bad = r#"
        use std::collections::HashMap;
        pub fn to_json(counters: &HashMap<String, u64>) -> String {
            let mut out = String::new();
            for (k, v) in counters.iter() {
                out.push_str(&format!("{k}={v},"));
            }
            out
        }
    "#;
    let f = lib(bad);
    assert!(
        f.iter()
            .any(|f| f.rule == "determinism" && f.message.contains("hash-order")),
        "{f:?}"
    );
}

#[test]
fn determinism_allows_btree_iteration_in_serializers() {
    let good = r#"
        use std::collections::BTreeMap;
        pub fn to_json(counters: &BTreeMap<String, u64>) -> String {
            let mut out = String::new();
            for (k, v) in counters.iter() {
                out.push_str(&format!("{k}={v},"));
            }
            out
        }
    "#;
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

// -------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_flags_unwrap_expect_and_macros() {
    let bad = r#"
        pub fn f(v: Option<u32>) -> u32 { v.unwrap() }
        pub fn g(v: Option<u32>) -> u32 { v.expect("always set") }
        pub fn h(x: u32) -> u32 {
            match x { 0 => unreachable!("impossible"), n => n }
        }
    "#;
    let f = lib(bad);
    let pf: Vec<_> = f.iter().filter(|f| f.rule == "panic-freedom").collect();
    assert_eq!(pf.len(), 3, "{f:?}");
}

#[test]
fn panic_freedom_exempts_documented_panics_and_tests() {
    let good = r#"
        /// Returns the value.
        ///
        /// # Panics
        /// Panics if `v` is `None` — callers guarantee it is set.
        pub fn f(v: Option<u32>) -> u32 { v.expect("caller guarantees Some") }

        pub fn safe(v: Option<u32>) -> u32 { v.unwrap_or(0) }

        /// Asserting invariants stays legal.
        pub fn idx(xs: &[u32], i: usize) -> u32 {
            assert!(i < xs.len(), "bounds");
            xs[i]
        }

        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { Some(1u32).unwrap(); panic!("fine in tests"); }
        }
    "#;
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

#[test]
fn panic_freedom_exempts_own_expect_combinator() {
    let parser = r#"
        impl Parser {
            fn expect(&mut self, b: u8) -> Result<(), Error> { self.eat(b) }
            pub fn array(&mut self) -> Result<(), Error> {
                self.expect(b'[')
            }
        }
    "#;
    assert!(lib(parser).is_empty(), "{:?}", lib(parser));
    // But `Option::expect` through a non-self receiver still flags there.
    let mixed = r#"
        impl Parser {
            fn expect(&mut self, b: u8) -> Result<(), Error> { self.eat(b) }
            pub fn first(v: Option<u8>) -> u8 { v.expect("non-empty") }
        }
    "#;
    assert_eq!(rules_of(&lib(mixed)), vec!["panic-freedom"]);
}

// -------------------------------------------------------------- error-discard

#[test]
fn error_discard_flags_wildcard_let_and_statement_ok() {
    let bad = r#"
        pub fn f(r: Result<u32, ()>) {
            let _ = r;
        }
        pub fn g(m: &mut std::collections::BTreeMap<u32, u32>) {
            m.remove(&1).ok_or(()).ok();
        }
    "#;
    let f = lib(bad);
    let ed: Vec<_> = f.iter().filter(|f| f.rule == "error-discard").collect();
    assert_eq!(ed.len(), 2, "{f:?}");
}

#[test]
fn error_discard_allows_bindings_and_value_position_ok() {
    let good = r#"
        pub fn f(r: Result<u32, ()>) -> Option<u32> {
            let _kept = r;
            let v = Some(3u32);
            let as_opt = Err::<u32, ()>(()).ok();
            foo(v.ok_or(()).ok());
            return as_opt;
        }
        fn foo(_v: Option<u32>) {}
    "#;
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

#[test]
fn error_discard_only_applies_to_lib_targets() {
    let f = analyze_str(
        "crates/x/src/bin/tool.rs",
        "swamp-x",
        TargetKind::Bin,
        "fn main() { let _ = std::fs::remove_file(\"x\"); }",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ------------------------------------------------------------------- layering

#[test]
fn layering_flags_undeclared_edge_and_unknown_package() {
    let members: Vec<String> = layering::ALLOWED_DEPS
        .iter()
        .map(|(n, _)| (*n).to_owned())
        .collect();
    // swamp-net must not depend on swamp-core (inverted layer).
    let m = manifest::parse(
        "[package]\nname = \"swamp-net\"\n[dependencies]\nswamp-core = { path = \"../core\" }\n",
    );
    let mut out = Vec::new();
    layering::check(&m, "crates/net/Cargo.toml", &members, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("swamp-core"));

    // A package absent from the table is itself a finding.
    let m = manifest::parse("[package]\nname = \"swamp-rogue\"\n");
    let mut out = Vec::new();
    layering::check(&m, "crates/rogue/Cargo.toml", &members, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");

    // A declared edge passes.
    let m = manifest::parse(
        "[package]\nname = \"swamp-fog\"\n[dependencies]\nswamp-net = { path = \"../net\" }\n",
    );
    let mut out = Vec::new();
    layering::check(&m, "crates/fog/Cargo.toml", &members, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn layering_table_is_internally_consistent() {
    let mut out = Vec::new();
    layering::check_table(&mut out);
    assert!(out.is_empty(), "DAG table broken: {out:?}");
}

// ------------------------------------------------------------- deprecated-api

#[test]
fn deprecated_api_flags_removed_constructors_everywhere() {
    let bad = "pub fn make() -> Platform { Platform::new(DeploymentConfig::CloudOnly, 1) }";
    let f = analyze_str("crates/x/src/lib.rs", "swamp-x", TargetKind::Lib, bad);
    assert!(
        f.iter()
            .any(|f| f.rule == "deprecated-api" && f.message.contains("builder")),
        "{f:?}"
    );
    // Unlike most rules, deprecated-api also covers test targets: the
    // constructors are gone, so no test may call (or re-grow) them.
    let f = analyze_str(
        "crates/x/tests/t.rs",
        "swamp-x",
        TargetKind::Test,
        "fn t() { let _s = FogSync::new(\"fog\", \"cloud\", 8); }",
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // Since PR 7 even the former defining files' unit tests are covered:
    // there is no shim left to pin, so a revival there must fail too.
    let f = analyze_str(
        "crates/core/src/platform.rs",
        "swamp-core",
        TargetKind::Lib,
        r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn shim_revival() { let _p = Platform::new(Config::CloudOnly, 1); }
        }
        "#,
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
}

#[test]
fn deprecated_api_flags_removed_getters_on_any_receiver() {
    for bad in [
        "pub fn f(p: &Platform) -> SyncHealth { p.sync_health() }",
        "pub fn f(s: &CloudStore) -> u64 { s.acks_refused() }",
        "pub fn f(n: &Network) -> Metrics { n.metrics() }",
    ] {
        let f = lib(bad);
        assert!(
            f.iter()
                .any(|f| f.rule == "deprecated-api" && f.message.contains("removed method")),
            "expected a finding for {bad:?}: {f:?}"
        );
    }
    // Test code is covered too — the getters no longer exist anywhere.
    let f = analyze_str(
        "crates/x/tests/t.rs",
        "swamp-x",
        TargetKind::Test,
        "fn t(p: &Platform) { let _ = p.sync_health(); }",
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // Similar names stay legal: the snapshot-derived view constructor…
    assert!(lib("pub fn f(s: &ObsSnapshot) -> Metrics { s.to_metrics() }").is_empty());
    // …and a field access without a call.
    assert!(lib("pub fn f(r: &Report) -> &Metrics { &r.metrics }").is_empty());
}

#[test]
fn deprecated_api_ignores_other_types_new() {
    let good = "pub fn f() -> Network { Network::new(7) }";
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

#[test]
fn deprecated_api_flags_metrics_mutators_in_lib_code() {
    for bad in [
        "pub fn f(m: &mut Metrics) { m.incr(\"x\"); }",
        "pub fn f(m: &mut Metrics) { m.incr_by(\"x\", 3); }",
        "pub fn f(metrics: &mut Metrics) { metrics.observe(\"lat\", 1.0); }",
        "pub fn f(metrics: &mut Metrics) { metrics.set_gauge(\"depth\", 2.0); }",
    ] {
        let f = lib(bad);
        assert!(
            f.iter()
                .any(|f| f.rule == "deprecated-api" && f.message.contains("typed")),
            "expected a finding for {bad:?}: {f:?}"
        );
    }
}

#[test]
fn deprecated_api_metrics_mutators_cover_tests_and_spare_the_new_obs_api() {
    // Since PR 7 the mutators are removed, so test code is covered too —
    // a `#[cfg(test)]` revival must fail CI like any other.
    let f = analyze_str(
        "crates/x/src/lib.rs",
        "swamp-x",
        TargetKind::Lib,
        r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn shim_revival() { let mut m = Metrics::new(); m.incr("x"); }
        }
        "#,
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // …and so is the former defining file: nothing is exempt anymore.
    let f = analyze_str(
        "crates/sim/src/metrics.rs",
        "swamp-sim",
        TargetKind::Lib,
        "impl Metrics { pub fn incr(&mut self, name: &str) { self.incr_by(name, 1); } }",
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // `observe` on any other receiver is the *new* snapshot API, and the
    // explicit setters remain the sanctioned way to build compat views.
    for good in [
        "pub fn f(p: &Platform) -> ObsSnapshot { p.observe() }",
        "pub fn f(m: &mut Metrics) { m.set_counter(\"x\", 4); }",
        "pub fn f(m: &mut Metrics) { m.set_gauge(\"depth\", 2.0); }",
        "pub fn f(b: &mut DetectorBank, t: SimTime) { b.observe_value(t, \"d\", \"q\", 1.0); }",
    ] {
        assert!(lib(good).is_empty(), "{good:?}: {:?}", lib(good));
    }
}

#[test]
fn deprecated_api_flags_query_superseded_accessors_for_new_callers() {
    // `cloud_replica_mut` is unambiguous: banned on any receiver, tests
    // included.
    let f = lib("pub fn f(p: &mut Platform) { p.cloud_replica_mut().unwrap().apply(r); }");
    assert!(
        f.iter()
            .any(|f| f.rule == "deprecated-api" && f.message.contains("cloud_replica_mut")),
        "{f:?}"
    );
    let f = analyze_str(
        "crates/x/tests/t.rs",
        "swamp-x",
        TargetKind::Test,
        "fn t(sp: &mut ShardedPlatform) { let _ = sp.cloud_replica_mut(); }",
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // `context`/`history` are banned only on platform-named receivers…
    for bad in [
        "pub fn f(platform: &Platform) -> Option<&Entity> { platform.context(\"d\") }",
        "pub fn f(p: &Platform) -> &HistoryStore { p.history() }",
        "pub fn f(shard: &Platform) -> u64 { shard.history().len() }",
        "pub fn f(sp: &ShardedPlatform) -> u64 { sp.history().len() }",
    ] {
        let f = lib(bad);
        assert!(
            f.iter()
                .any(|f| f.rule == "deprecated-api" && f.message.contains("Drive::query")),
            "expected a finding for {bad:?}: {f:?}"
        );
    }
    // …because the same names belong to live APIs on other receivers:
    // `CloudStore::history`, field access, and the defining impl's
    // internal `self.` delegation all stay legal.
    for good in [
        "pub fn f(store: &CloudStore) -> &[UpdateRecord] { store.history() }",
        "pub fn f(replica: &CloudStore) -> usize { replica.history().len() }",
        "pub fn f(p: &Platform) -> u64 { p.history.len() }",
        "impl Platform { fn q(&mut self) -> &HistoryStore { self.history() } }",
    ] {
        assert!(lib(good).is_empty(), "{good:?}: {:?}", lib(good));
    }
}

// ------------------------------------------------------------------ allowlist

#[test]
fn allowlist_suppresses_matching_findings_only() {
    let findings = lib("pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\npub fn g() { let _ = std::fs::remove_file(\"x\"); }");
    assert_eq!(findings.len(), 2);
    let (entries, errors) = allowlist::parse(
        r#"
[[allow]]
rule = "panic-freedom"
path = "crates/x/"
justification = "fixture: harness code may abort loudly"
"#,
        RULE_NAMES,
    );
    assert!(errors.is_empty(), "{errors:?}");
    let (kept, allowed) = apply_allowlist(findings, &entries);
    assert_eq!(rules_of(&kept), vec!["error-discard"]);
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].justification.contains("abort loudly"));
}

// ------------------------------------------------------------- hot-path-alloc

#[test]
fn hot_path_alloc_flags_transitive_allocation_with_path() {
    let bad = r#"
        impl Platform {
            pub fn pump(&mut self) { self.step(); }
            fn step(&mut self) { let label = format!("tick"); push(label); }
        }
        fn push(_s: String) {}
    "#;
    let f = lib(bad);
    let hp: Vec<_> = f.iter().filter(|f| f.rule == "hot-path-alloc").collect();
    assert_eq!(hp.len(), 1, "{f:?}");
    assert_eq!(hp[0].symbol, "Platform::step");
    assert!(
        hp[0].message.contains("Platform::pump → Platform::step"),
        "finding must carry the reachability path: {}",
        hp[0].message
    );
}

#[test]
fn hot_path_alloc_stays_quiet_off_the_hot_path() {
    // The same allocation in a function *not* reachable from an entry.
    let good = r#"
        impl Platform {
            pub fn pump(&mut self) { self.count += 1; }
            pub fn describe(&self) -> String { format!("{} pumps", self.count) }
        }
    "#;
    assert!(lib(good).iter().all(|f| f.rule != "hot-path-alloc"));
}

#[test]
fn hot_path_alloc_cold_symbol_cuts_the_subtree_and_reports_use() {
    let src = r#"
        impl Platform {
            pub fn pump(&mut self) { self.setup(); }
            fn setup(&mut self) { self.name = String::new(); }
        }
    "#;
    let files = [("crates/x/src/lib.rs", "swamp-x", TargetKind::Lib, src)];
    let (f, used) = analyze_files_with_cold(&files, &BTreeSet::new());
    assert!(f.iter().any(|f| f.rule == "hot-path-alloc"), "{f:?}");
    assert!(used.is_empty());

    let cold: BTreeSet<String> = ["Platform::setup".to_owned()].into_iter().collect();
    let (f, used) = analyze_files_with_cold(&files, &cold);
    assert!(f.iter().all(|f| f.rule != "hot-path-alloc"), "{f:?}");
    assert!(
        used.contains("Platform::setup"),
        "a cut that fired must be reported so stale detection can spare it"
    );
}

// ---------------------------------------------------------------- cast-safety

#[test]
fn cast_safety_flags_numeric_casts_in_codec_files() {
    let bad = "pub fn write(n: f64, out: &mut String) { out.push_str(&fmt(n as i64)); }";
    let f = analyze_str(
        "crates/codec/src/fake.rs",
        "swamp-codec",
        TargetKind::Lib,
        bad,
    );
    assert!(
        f.iter()
            .any(|f| f.rule == "cast-safety" && f.message.contains("as i64")),
        "{f:?}"
    );
}

#[test]
fn cast_safety_covers_wire_fns_by_symbol_outside_codec_paths() {
    let bad = "fn encode_record(x: u32) -> u16 { x as u16 }";
    let f = lib(bad);
    let cs: Vec<_> = f.iter().filter(|f| f.rule == "cast-safety").collect();
    assert_eq!(cs.len(), 1, "{f:?}");
    assert_eq!(cs[0].symbol, "encode_record");
    // The same cast in an unscoped fn is out of the rule's reach.
    assert!(lib("fn helper(x: u32) -> u16 { x as u16 }")
        .iter()
        .all(|f| f.rule != "cast-safety"));
}

#[test]
fn cast_safety_wrapping_needs_a_same_line_comment() {
    let bare = "pub fn slot(x: u64) -> u64 { x.wrapping_add(1) }";
    let f = analyze_str(
        "crates/codec/src/fake.rs",
        "swamp-codec",
        TargetKind::Lib,
        bare,
    );
    assert!(
        f.iter()
            .any(|f| f.rule == "cast-safety" && f.message.contains("wrapping")),
        "{f:?}"
    );
    let justified =
        "pub fn slot(x: u64) -> u64 { x.wrapping_add(1) // wraps at the rotation boundary\n}";
    let f = analyze_str(
        "crates/codec/src/fake.rs",
        "swamp-codec",
        TargetKind::Lib,
        justified,
    );
    assert!(f.iter().all(|f| f.rule != "cast-safety"), "{f:?}");
}

// ----------------------------------------------------- concurrency-discipline

#[test]
fn concurrency_flags_mutable_statics_and_locks_in_scope() {
    let f = lib("static mut GLOBAL: u32 = 0;");
    assert!(
        f.iter()
            .any(|f| f.rule == "concurrency-discipline" && f.message.contains("static mut")),
        "{f:?}"
    );
    // The planted violation from the issue: a Mutex captured from outside
    // the scope, acquired inside the worker closure.
    let bad = r#"
        use std::sync::Mutex;
        pub fn run(xs: &mut [u32]) {
            let total = Mutex::new(0u32);
            std::thread::scope(|s| {
                for chunk in xs.chunks_mut(2) {
                    s.spawn(|| { let mut t = total.lock(); bump(&mut t, chunk); });
                }
            });
        }
        fn bump(_t: &mut u32, _c: &mut [u32]) {}
    "#;
    let f = lib(bad);
    assert!(
        f.iter()
            .any(|f| f.rule == "concurrency-discipline" && f.message.contains("lock acquisition")),
        "{f:?}"
    );
    // A lock *type* named directly inside the region is flagged too.
    let named = r#"
        pub fn run(xs: &mut [u32]) {
            std::thread::scope(|s| {
                let total = std::sync::Mutex::new(0u32);
                let (a, _b) = xs.split_at_mut(1);
                s.spawn(|| { a[0] += *total.lock().unwrap(); });
            });
        }
    "#;
    let f = lib(named);
    assert!(
        f.iter()
            .any(|f| f.rule == "concurrency-discipline" && f.message.contains("`Mutex`")),
        "{f:?}"
    );
}

#[test]
fn concurrency_flags_locks_reachable_from_worker_calls() {
    let bad = r#"
        pub fn run(xs: &mut [u32]) {
            std::thread::scope(|s| {
                let (a, b) = xs.split_at_mut(1);
                s.spawn(|| work(a));
                s.spawn(|| work(b));
            });
        }
        fn work(xs: &mut [u32]) { tally(xs); }
        fn tally(xs: &mut [u32]) {
            let _guard = GLOBAL_LOCK.lock();
            use std::sync::Mutex;
            xs[0] += 1;
        }
    "#;
    let f = lib(bad);
    assert!(
        f.iter().any(|f| f.rule == "concurrency-discipline"
            && f.message.contains("worker-reachable")
            && f.message.contains("tally")),
        "{f:?}"
    );
}

#[test]
fn concurrency_requires_the_disjoint_chunk_split() {
    let bad = r#"
        pub fn run(n: usize) {
            std::thread::scope(|s| {
                for _ in 0..n { s.spawn(|| step()); }
            });
        }
        fn step() {}
    "#;
    let f = lib(bad);
    assert!(
        f.iter()
            .any(|f| f.rule == "concurrency-discipline" && f.message.contains("disjoint-chunk")),
        "{f:?}"
    );
    // Disjoint chunks, no shared state: the sanctioned pattern is clean.
    let good = r#"
        pub fn run(xs: &mut [u32]) {
            std::thread::scope(|s| {
                let (a, b) = xs.split_at_mut(1);
                s.spawn(|| bump(a));
                s.spawn(|| bump(b));
            });
        }
        fn bump(xs: &mut [u32]) { xs[0] += 1; }
    "#;
    assert!(
        lib(good).iter().all(|f| f.rule != "concurrency-discipline"),
        "{:?}",
        lib(good)
    );
}

// -------------------------------------------------------------- obs-name-drift

#[test]
fn obs_name_drift_flags_unregistered_and_kind_mismatched_reads() {
    let src = r#"
        pub fn register(obs: &mut Obs) -> Instruments {
            Instruments {
                sent: obs.counter("net.sent"),
                depth: obs.gauge("net.depth"),
            }
        }
        pub fn report(snap: &ObsSnapshot) {
            let _ok = snap.gauge("net.depth");
            let _typo = snap.counter("net.snet");
            let _wrong_kind = snap.gauge("net.sent");
        }
    "#;
    let f = lib(src);
    let drift: Vec<_> = f.iter().filter(|f| f.rule == "obs-name-drift").collect();
    assert_eq!(drift.len(), 2, "{f:?}");
    assert!(drift
        .iter()
        .any(|f| f.message.contains("net.snet") && f.message.contains("does not resolve")));
    assert!(drift
        .iter()
        .any(|f| f.message.contains("net.sent") && f.message.contains("read as a `gauge`")));
}

#[test]
fn obs_name_drift_rejects_duplicate_registrations_and_skips_foreign_names() {
    let dup = r#"
        pub fn a(obs: &mut Obs) { obs.counter("net.dup"); }
        pub fn b(obs: &mut Obs) { obs.counter("net.dup"); }
    "#;
    let f = lib(dup);
    assert!(
        f.iter()
            .any(|f| f.rule == "obs-name-drift" && f.message.contains("more than once")),
        "{f:?}"
    );
    // Names outside the family prefixes are not under the contract.
    let scratch = r#"
        pub fn report(snap: &ObsSnapshot) { let _x = snap.counter("scratch.count"); }
    "#;
    assert!(lib(scratch).iter().all(|f| f.rule != "obs-name-drift"));
}

// -------------------------------------------- determinism (graph tightening)

#[test]
fn determinism_hash_iteration_outside_export_paths_is_clean() {
    // PR 3's file-marker heuristic would have flagged this whenever the
    // file also mentioned an export fn; the graph scope does not.
    let good = r#"
        use std::collections::HashMap;
        pub fn total(counters: &HashMap<String, u64>) -> u64 {
            let mut t = 0;
            for (_k, v) in counters.iter() {
                t += v;
            }
            t
        }
    "#;
    assert!(
        lib(good).iter().all(|f| f.rule != "determinism"),
        "{:?}",
        lib(good)
    );
}

#[test]
fn determinism_hash_iteration_flags_transitively_from_export_entries() {
    let bad = r#"
        use std::collections::HashMap;
        pub fn to_json(m: &HashMap<String, u64>) -> String { emit(m) }
        fn emit(m: &HashMap<String, u64>) -> String {
            let mut out = String::new();
            for (k, _v) in m.iter() {
                out.push_str(k);
            }
            out
        }
    "#;
    let f = lib(bad);
    assert!(
        f.iter().any(|f| f.rule == "determinism"
            && f.symbol == "emit"
            && f.message.contains("to_json → emit")),
        "{f:?}"
    );
}
