//! Fixture tests: for every rule, one snippet that must trip it and one
//! that must stay clean, exercised through the same `analyze_str` path the
//! workspace walk uses.

use swamp_analyzer::allowlist;
use swamp_analyzer::manifest;
use swamp_analyzer::rules::{layering, Finding, RULE_NAMES};
use swamp_analyzer::source::TargetKind;
use swamp_analyzer::{analyze_str, apply_allowlist};

fn lib(src: &str) -> Vec<Finding> {
    analyze_str("crates/x/src/lib.rs", "swamp-x", TargetKind::Lib, src)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_flags_wall_clock_and_entropy() {
    let bad = r#"
        pub fn now_ms() -> u128 {
            let t = std::time::Instant::now();
            t.elapsed().as_millis()
        }
        pub fn seed() -> u64 { rand::thread_rng().gen() }
    "#;
    let f = lib(bad);
    let det: Vec<_> = f.iter().filter(|f| f.rule == "determinism").collect();
    assert!(det.len() >= 2, "Instant and thread_rng both flag: {f:?}");
    assert!(det.iter().any(|f| f.message.contains("Instant")));
    assert!(det.iter().any(|f| f.message.contains("thread_rng")));
}

#[test]
fn determinism_ignores_tests_benches_and_criterion() {
    let in_test = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn timing() { let _t = std::time::Instant::now(); }
        }
    "#;
    assert!(lib(in_test).iter().all(|f| f.rule != "determinism"));
    // Bench targets are outside the rule's scope entirely.
    let f = analyze_str(
        "crates/x/benches/b.rs",
        "swamp-x",
        TargetKind::Bench,
        "fn main() { let t = std::time::Instant::now(); }",
    );
    assert!(f.is_empty(), "{f:?}");
    // The criterion shim is the sanctioned wall-clock site.
    let f = analyze_str(
        "crates/criterion-shim/src/lib.rs",
        "criterion",
        TargetKind::Lib,
        "pub fn timer() -> std::time::Instant { std::time::Instant::now() }",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn determinism_flags_hash_iteration_feeding_serialization() {
    let bad = r#"
        use std::collections::HashMap;
        pub fn to_json(counters: &HashMap<String, u64>) -> String {
            let mut out = String::new();
            for (k, v) in counters.iter() {
                out.push_str(&format!("{k}={v},"));
            }
            out
        }
    "#;
    let f = lib(bad);
    assert!(
        f.iter()
            .any(|f| f.rule == "determinism" && f.message.contains("hash-order")),
        "{f:?}"
    );
}

#[test]
fn determinism_allows_btree_iteration_in_serializers() {
    let good = r#"
        use std::collections::BTreeMap;
        pub fn to_json(counters: &BTreeMap<String, u64>) -> String {
            let mut out = String::new();
            for (k, v) in counters.iter() {
                out.push_str(&format!("{k}={v},"));
            }
            out
        }
    "#;
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

// -------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_flags_unwrap_expect_and_macros() {
    let bad = r#"
        pub fn f(v: Option<u32>) -> u32 { v.unwrap() }
        pub fn g(v: Option<u32>) -> u32 { v.expect("always set") }
        pub fn h(x: u32) -> u32 {
            match x { 0 => unreachable!("impossible"), n => n }
        }
    "#;
    let f = lib(bad);
    let pf: Vec<_> = f.iter().filter(|f| f.rule == "panic-freedom").collect();
    assert_eq!(pf.len(), 3, "{f:?}");
}

#[test]
fn panic_freedom_exempts_documented_panics_and_tests() {
    let good = r#"
        /// Returns the value.
        ///
        /// # Panics
        /// Panics if `v` is `None` — callers guarantee it is set.
        pub fn f(v: Option<u32>) -> u32 { v.expect("caller guarantees Some") }

        pub fn safe(v: Option<u32>) -> u32 { v.unwrap_or(0) }

        /// Asserting invariants stays legal.
        pub fn idx(xs: &[u32], i: usize) -> u32 {
            assert!(i < xs.len(), "bounds");
            xs[i]
        }

        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { Some(1u32).unwrap(); panic!("fine in tests"); }
        }
    "#;
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

#[test]
fn panic_freedom_exempts_own_expect_combinator() {
    let parser = r#"
        impl Parser {
            fn expect(&mut self, b: u8) -> Result<(), Error> { self.eat(b) }
            pub fn array(&mut self) -> Result<(), Error> {
                self.expect(b'[')
            }
        }
    "#;
    assert!(lib(parser).is_empty(), "{:?}", lib(parser));
    // But `Option::expect` through a non-self receiver still flags there.
    let mixed = r#"
        impl Parser {
            fn expect(&mut self, b: u8) -> Result<(), Error> { self.eat(b) }
            pub fn first(v: Option<u8>) -> u8 { v.expect("non-empty") }
        }
    "#;
    assert_eq!(rules_of(&lib(mixed)), vec!["panic-freedom"]);
}

// -------------------------------------------------------------- error-discard

#[test]
fn error_discard_flags_wildcard_let_and_statement_ok() {
    let bad = r#"
        pub fn f(r: Result<u32, ()>) {
            let _ = r;
        }
        pub fn g(m: &mut std::collections::BTreeMap<u32, u32>) {
            m.remove(&1).ok_or(()).ok();
        }
    "#;
    let f = lib(bad);
    let ed: Vec<_> = f.iter().filter(|f| f.rule == "error-discard").collect();
    assert_eq!(ed.len(), 2, "{f:?}");
}

#[test]
fn error_discard_allows_bindings_and_value_position_ok() {
    let good = r#"
        pub fn f(r: Result<u32, ()>) -> Option<u32> {
            let _kept = r;
            let v = Some(3u32);
            let as_opt = Err::<u32, ()>(()).ok();
            foo(v.ok_or(()).ok());
            return as_opt;
        }
        fn foo(_v: Option<u32>) {}
    "#;
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

#[test]
fn error_discard_only_applies_to_lib_targets() {
    let f = analyze_str(
        "crates/x/src/bin/tool.rs",
        "swamp-x",
        TargetKind::Bin,
        "fn main() { let _ = std::fs::remove_file(\"x\"); }",
    );
    assert!(f.is_empty(), "{f:?}");
}

// ------------------------------------------------------------------- layering

#[test]
fn layering_flags_undeclared_edge_and_unknown_package() {
    let members: Vec<String> = layering::ALLOWED_DEPS
        .iter()
        .map(|(n, _)| (*n).to_owned())
        .collect();
    // swamp-net must not depend on swamp-core (inverted layer).
    let m = manifest::parse(
        "[package]\nname = \"swamp-net\"\n[dependencies]\nswamp-core = { path = \"../core\" }\n",
    );
    let mut out = Vec::new();
    layering::check(&m, "crates/net/Cargo.toml", &members, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("swamp-core"));

    // A package absent from the table is itself a finding.
    let m = manifest::parse("[package]\nname = \"swamp-rogue\"\n");
    let mut out = Vec::new();
    layering::check(&m, "crates/rogue/Cargo.toml", &members, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");

    // A declared edge passes.
    let m = manifest::parse(
        "[package]\nname = \"swamp-fog\"\n[dependencies]\nswamp-net = { path = \"../net\" }\n",
    );
    let mut out = Vec::new();
    layering::check(&m, "crates/fog/Cargo.toml", &members, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn layering_table_is_internally_consistent() {
    let mut out = Vec::new();
    layering::check_table(&mut out);
    assert!(out.is_empty(), "DAG table broken: {out:?}");
}

// ------------------------------------------------------------- deprecated-api

#[test]
fn deprecated_api_flags_removed_constructors_everywhere() {
    let bad = "pub fn make() -> Platform { Platform::new(DeploymentConfig::CloudOnly, 1) }";
    let f = analyze_str("crates/x/src/lib.rs", "swamp-x", TargetKind::Lib, bad);
    assert!(
        f.iter()
            .any(|f| f.rule == "deprecated-api" && f.message.contains("builder")),
        "{f:?}"
    );
    // Unlike most rules, deprecated-api also covers test targets: the
    // constructors are gone, so no test may call (or re-grow) them.
    let f = analyze_str(
        "crates/x/tests/t.rs",
        "swamp-x",
        TargetKind::Test,
        "fn t() { let _s = FogSync::new(\"fog\", \"cloud\", 8); }",
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // Since PR 7 even the former defining files' unit tests are covered:
    // there is no shim left to pin, so a revival there must fail too.
    let f = analyze_str(
        "crates/core/src/platform.rs",
        "swamp-core",
        TargetKind::Lib,
        r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn shim_revival() { let _p = Platform::new(Config::CloudOnly, 1); }
        }
        "#,
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
}

#[test]
fn deprecated_api_flags_removed_getters_on_any_receiver() {
    for bad in [
        "pub fn f(p: &Platform) -> SyncHealth { p.sync_health() }",
        "pub fn f(s: &CloudStore) -> u64 { s.acks_refused() }",
        "pub fn f(n: &Network) -> Metrics { n.metrics() }",
    ] {
        let f = lib(bad);
        assert!(
            f.iter()
                .any(|f| f.rule == "deprecated-api" && f.message.contains("removed method")),
            "expected a finding for {bad:?}: {f:?}"
        );
    }
    // Test code is covered too — the getters no longer exist anywhere.
    let f = analyze_str(
        "crates/x/tests/t.rs",
        "swamp-x",
        TargetKind::Test,
        "fn t(p: &Platform) { let _ = p.sync_health(); }",
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // Similar names stay legal: the snapshot-derived view constructor…
    assert!(lib("pub fn f(s: &ObsSnapshot) -> Metrics { s.to_metrics() }").is_empty());
    // …and a field access without a call.
    assert!(lib("pub fn f(r: &Report) -> &Metrics { &r.metrics }").is_empty());
}

#[test]
fn deprecated_api_ignores_other_types_new() {
    let good = "pub fn f() -> Network { Network::new(7) }";
    assert!(lib(good).is_empty(), "{:?}", lib(good));
}

#[test]
fn deprecated_api_flags_metrics_mutators_in_lib_code() {
    for bad in [
        "pub fn f(m: &mut Metrics) { m.incr(\"x\"); }",
        "pub fn f(m: &mut Metrics) { m.incr_by(\"x\", 3); }",
        "pub fn f(metrics: &mut Metrics) { metrics.observe(\"lat\", 1.0); }",
        "pub fn f(metrics: &mut Metrics) { metrics.set_gauge(\"depth\", 2.0); }",
    ] {
        let f = lib(bad);
        assert!(
            f.iter()
                .any(|f| f.rule == "deprecated-api" && f.message.contains("typed")),
            "expected a finding for {bad:?}: {f:?}"
        );
    }
}

#[test]
fn deprecated_api_metrics_mutators_cover_tests_and_spare_the_new_obs_api() {
    // Since PR 7 the mutators are removed, so test code is covered too —
    // a `#[cfg(test)]` revival must fail CI like any other.
    let f = analyze_str(
        "crates/x/src/lib.rs",
        "swamp-x",
        TargetKind::Lib,
        r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn shim_revival() { let mut m = Metrics::new(); m.incr("x"); }
        }
        "#,
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // …and so is the former defining file: nothing is exempt anymore.
    let f = analyze_str(
        "crates/sim/src/metrics.rs",
        "swamp-sim",
        TargetKind::Lib,
        "impl Metrics { pub fn incr(&mut self, name: &str) { self.incr_by(name, 1); } }",
    );
    assert!(f.iter().any(|f| f.rule == "deprecated-api"), "{f:?}");
    // `observe` on any other receiver is the *new* snapshot API, and the
    // explicit setters remain the sanctioned way to build compat views.
    for good in [
        "pub fn f(p: &Platform) -> ObsSnapshot { p.observe() }",
        "pub fn f(m: &mut Metrics) { m.set_counter(\"x\", 4); }",
        "pub fn f(m: &mut Metrics) { m.set_gauge(\"depth\", 2.0); }",
        "pub fn f(b: &mut DetectorBank, t: SimTime) { b.observe_value(t, \"d\", \"q\", 1.0); }",
    ] {
        assert!(lib(good).is_empty(), "{good:?}: {:?}", lib(good));
    }
}

// ------------------------------------------------------------------ allowlist

#[test]
fn allowlist_suppresses_matching_findings_only() {
    let findings = lib("pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\npub fn g() { let _ = std::fs::remove_file(\"x\"); }");
    assert_eq!(findings.len(), 2);
    let (entries, errors) = allowlist::parse(
        r#"
[[allow]]
rule = "panic-freedom"
path = "crates/x/"
justification = "fixture: harness code may abort loudly"
"#,
        RULE_NAMES,
    );
    assert!(errors.is_empty(), "{errors:?}");
    let (kept, allowed) = apply_allowlist(findings, &entries);
    assert_eq!(rules_of(&kept), vec!["error-discard"]);
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].justification.contains("abort loudly"));
}
