//! # swamp-views — incremental materialized views over the cloud replica
//!
//! The paper's consumers — farmers, consortium operators, dashboards —
//! *read*: per-farm water rollups, the biggest consumers, the fields
//! currently below their moisture floor. Recomputing those from raw
//! history on every request is what "A Scalable and Dependable Data
//! Analytics Platform for Water Infrastructure Monitoring" (PAPERS.md)
//! warns against at scale; this crate keeps them **materialized and
//! incrementally maintained** instead, in the cometindex style: an
//! indexer owns a *cursor* over the cloud store's append-only run of
//! applied [`UpdateRecord`]s and folds only the records it has not seen
//! yet. Critically it **tails** [`CloudStore::history`] — it never calls
//! [`CloudStore::drain_new`], whose read position belongs to the
//! platform's cloud context mirror (the same discipline the scale-out
//! tier's `forwarded_upto` cursor follows).
//!
//! ## Determinism across shards
//!
//! State is kept **per entity** in a `BTreeMap`. Shard routing assigns
//! each entity to exactly one shard, and each shard's replica applies
//! that entity's updates in ingest order, so every per-entity
//! accumulator — including its order-sensitive `f64` consumption sum —
//! is identical whether the fleet ran on one shard or eight. A merged
//! view is the *disjoint union* of per-shard entity maps; the derived
//! views (farm rollups, top-K, alert digest) are folded from the merged
//! map in `BTreeMap` key order at snapshot time, so they are bit-stable
//! in the shard count. The sharded differential suite holds
//! `merge(shard views) == single-shard view` byte-for-byte.
//!
//! [`CloudStore::history`]: swamp_fog::sync::CloudStore::history
//! [`CloudStore::drain_new`]: swamp_fog::sync::CloudStore::drain_new

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use swamp_codec::json::Json;
use swamp_codec::ngsi::Entity;
use swamp_fog::sync::UpdateRecord;
use swamp_sim::SimTime;

/// What the indexer watches for. Defaults match the pilot fleet: water
/// consumption is the `water_flow` attribute (liters per report), the
/// alert floor is volumetric soil moisture below 10%.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewConfig {
    /// Numeric attribute summed into per-entity/farm consumption totals.
    pub consumption_attr: String,
    /// Numeric attribute checked against the alert floor.
    pub alert_attr: String,
    /// Alert when `alert_attr` falls strictly below this value.
    pub alert_below: f64,
    /// How many entries [`ViewSnapshot::top_consumers`] returns.
    pub top_k: usize,
}

impl Default for ViewConfig {
    fn default() -> Self {
        ViewConfig {
            consumption_attr: "water_flow".to_owned(),
            alert_attr: "moisture_vwc".to_owned(),
            alert_below: 0.10,
            top_k: 5,
        }
    }
}

/// Per-entity accumulator — the unit of cross-shard merging.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EntityAccum {
    /// Farm key derived from the entity id (see [`farm_of`]).
    pub farm: String,
    /// Updates applied for this entity.
    pub records: u64,
    /// Running sum of the consumption attribute, in per-entity apply
    /// order (deterministic: one entity lives on one shard).
    pub consumption: f64,
    /// Latest observed value of the alert attribute.
    pub last_alert_value: Option<f64>,
    /// Updates whose alert attribute was below the floor.
    pub low_events: u64,
    /// Sequence number of the last applied update.
    pub last_seq: u64,
    /// Creation time of the last applied update.
    pub last_at: SimTime,
}

/// The farm key of an entity id: the penultimate `:`-separated segment
/// (`urn:swamp:farm-3:probe-17` → `farm-3`), or `"unassigned"` when the
/// id has fewer than two segments. Pure in the id, so every shard derives
/// the same key without coordination.
pub fn farm_of(entity_id: &str) -> &str {
    let mut iter = entity_id.rsplit(':');
    let _leaf = iter.next();
    iter.next()
        .filter(|s| !s.is_empty())
        .unwrap_or("unassigned")
}

/// Cursor-driven incremental indexer; see the crate docs.
#[derive(Clone, Debug, Default)]
pub struct ViewIndexer {
    config: ViewConfig,
    cursor: usize,
    entities: BTreeMap<String, EntityAccum>,
    applied: u64,
    malformed: u64,
}

impl ViewIndexer {
    /// An indexer with the default [`ViewConfig`].
    pub fn new() -> Self {
        ViewIndexer::default()
    }

    /// An indexer with an explicit configuration.
    pub fn with_config(config: ViewConfig) -> Self {
        ViewIndexer {
            config,
            ..ViewIndexer::default()
        }
    }

    /// The read position: how many applied records have been folded in.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Total records applied (equals the cursor; kept as a `u64` counter
    /// for the `view.applied` instrument).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Records whose payload failed to parse as an NGSI entity. They still
    /// advance per-entity record counts (the update *was* applied by the
    /// store), but contribute no attribute state.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Folds every record past the cursor into the views and advances the
    /// cursor to `history.len()`. `history` must be the same append-only
    /// run on every call (`CloudStore::history` is); passing a *shorter*
    /// run than last time is a contract violation and applies nothing.
    /// Returns how many records were applied.
    pub fn catch_up(&mut self, history: &[UpdateRecord]) -> usize {
        let from = self.cursor.min(history.len());
        let fresh = &history[from..];
        for rec in fresh {
            self.apply(rec);
        }
        self.cursor = history.len();
        fresh.len()
    }

    fn apply(&mut self, rec: &UpdateRecord) {
        self.applied += 1;
        let acc = self
            .entities
            .entry(rec.key.clone())
            .or_insert_with(|| EntityAccum {
                farm: farm_of(&rec.key).to_owned(),
                ..EntityAccum::default()
            });
        acc.records += 1;
        acc.last_seq = rec.seq;
        acc.last_at = rec.created_at;
        let entity = std::str::from_utf8(&rec.payload)
            .ok()
            .and_then(|s| Json::parse(s).ok())
            .and_then(|j| Entity::from_json(&j).ok());
        match entity {
            Some(e) => {
                if let Some(v) = e.number(&self.config.consumption_attr) {
                    acc.consumption += v;
                }
                if let Some(v) = e.number(&self.config.alert_attr) {
                    acc.last_alert_value = Some(v);
                    if v < self.config.alert_below {
                        acc.low_events += 1;
                    }
                }
            }
            None => self.malformed += 1,
        }
    }

    /// Materializes the current view state for merging/serving.
    pub fn snapshot(&self) -> ViewSnapshot {
        ViewSnapshot {
            config: self.config.clone(),
            entities: self.entities.clone(),
            applied: self.applied,
            malformed: self.malformed,
        }
    }
}

/// A point-in-time copy of the indexer state: per-entity accumulators
/// plus the config that produced them. Snapshots from sibling shards
/// merge with [`ViewSnapshot::merge`]; derived views are computed on
/// demand and are bit-stable in the shard count (crate docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ViewSnapshot {
    /// The configuration the views were folded under.
    pub config: ViewConfig,
    /// Per-entity state, keyed by entity id.
    pub entities: BTreeMap<String, EntityAccum>,
    /// Records applied across all entities.
    pub applied: u64,
    /// Records whose payload failed to parse.
    pub malformed: u64,
}

impl ViewSnapshot {
    /// Merges a sibling shard's snapshot into this one. Entity key sets
    /// are disjoint under shard routing; if a key *does* collide (e.g.
    /// merging overlapping replicas), the accumulator with the higher
    /// `last_seq` wins and the counts sum — deterministic in merge order
    /// for the sharded case because disjoint unions commute.
    pub fn merge(&mut self, other: ViewSnapshot) {
        for (key, theirs) in other.entities {
            match self.entities.entry(key) {
                Entry::Vacant(slot) => {
                    slot.insert(theirs);
                }
                Entry::Occupied(mut slot) => {
                    let ours = slot.get_mut();
                    ours.records += theirs.records;
                    ours.consumption += theirs.consumption;
                    ours.low_events += theirs.low_events;
                    if theirs.last_seq >= ours.last_seq {
                        ours.last_seq = theirs.last_seq;
                        ours.last_at = theirs.last_at;
                        ours.last_alert_value = theirs.last_alert_value;
                    }
                }
            }
        }
        self.applied += other.applied;
        self.malformed += other.malformed;
    }

    /// Per-farm rollups, folded from the entity map in key order and
    /// returned sorted by farm key.
    pub fn farm_rollups(&self) -> Vec<FarmRollup> {
        let mut farms: BTreeMap<&str, FarmRollup> = BTreeMap::new();
        for acc in self.entities.values() {
            let farm = farms
                .entry(acc.farm.as_str())
                .or_insert_with(|| FarmRollup {
                    farm: acc.farm.clone(),
                    ..FarmRollup::default()
                });
            farm.devices += 1;
            farm.records += acc.records;
            farm.consumption += acc.consumption;
            farm.low_events += acc.low_events;
        }
        farms.into_values().collect()
    }

    /// The `top_k` heaviest water consumers: sorted by total descending,
    /// ties broken by entity id ascending (total ordering — stable across
    /// shard counts and merge orders).
    pub fn top_consumers(&self) -> Vec<TopConsumer> {
        let mut all: Vec<TopConsumer> = self
            .entities
            .iter()
            .map(|(id, acc)| TopConsumer {
                entity: id.clone(),
                farm: acc.farm.clone(),
                consumption: acc.consumption,
            })
            .collect();
        all.sort_by(|a, b| {
            b.consumption
                .total_cmp(&a.consumption)
                .then_with(|| a.entity.cmp(&b.entity))
        });
        all.truncate(self.config.top_k);
        all
    }

    /// The alert digest: entities whose *latest* alert-attribute reading
    /// is below the floor (key order), plus the total count of
    /// below-floor events ever applied.
    pub fn alert_digest(&self) -> AlertDigest {
        let mut low_now = Vec::new();
        let mut low_events = 0;
        for (id, acc) in &self.entities {
            low_events += acc.low_events;
            if acc
                .last_alert_value
                .is_some_and(|v| v < self.config.alert_below)
            {
                low_now.push(id.clone());
            }
        }
        AlertDigest {
            low_now,
            low_events,
        }
    }

    /// A deterministic JSON document of the derived views — what
    /// `Drive::query` returns for view reads and what the differential
    /// suites byte-compare. Keys are sorted (`Json::Object` is a
    /// `BTreeMap`) and every number is an exact `f64` the fold produced.
    pub fn to_json(&self) -> Json {
        let farms = Json::Array(
            self.farm_rollups()
                .into_iter()
                .map(|f| {
                    Json::object([
                        ("farm", Json::String(f.farm)),
                        ("devices", Json::Number(f.devices as f64)),
                        ("records", Json::Number(f.records as f64)),
                        ("consumption", Json::Number(f.consumption)),
                        ("low_events", Json::Number(f.low_events as f64)),
                    ])
                })
                .collect(),
        );
        let top = Json::Array(
            self.top_consumers()
                .into_iter()
                .map(|t| {
                    Json::object([
                        ("entity", Json::String(t.entity)),
                        ("farm", Json::String(t.farm)),
                        ("consumption", Json::Number(t.consumption)),
                    ])
                })
                .collect(),
        );
        let digest = self.alert_digest();
        let alerts = Json::object([
            (
                "low_now",
                Json::Array(digest.low_now.into_iter().map(Json::String).collect()),
            ),
            ("low_events", Json::Number(digest.low_events as f64)),
        ]);
        Json::object([
            ("applied", Json::Number(self.applied as f64)),
            ("malformed", Json::Number(self.malformed as f64)),
            ("entities", Json::Number(self.entities.len() as f64)),
            ("farms", farms),
            ("top_consumers", top),
            ("alerts", alerts),
        ])
    }
}

/// Rollup of one farm's fleet.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FarmRollup {
    /// Farm key (see [`farm_of`]).
    pub farm: String,
    /// Distinct devices seen.
    pub devices: u64,
    /// Updates applied across the farm.
    pub records: u64,
    /// Total consumption-attribute sum across the farm.
    pub consumption: f64,
    /// Below-floor alert events across the farm.
    pub low_events: u64,
}

/// One entry of the top-K consumers view.
#[derive(Clone, Debug, PartialEq)]
pub struct TopConsumer {
    /// Entity id.
    pub entity: String,
    /// Farm key.
    pub farm: String,
    /// Total consumption-attribute sum.
    pub consumption: f64,
}

/// The alert digest view.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlertDigest {
    /// Entities currently below the floor, in id order.
    pub low_now: Vec<String>,
    /// Total below-floor events ever applied.
    pub low_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_codec::ngsi::Attribute;

    fn rec(seq: u64, id: &str, attrs: &[(&str, f64)]) -> UpdateRecord {
        let mut e = Entity::new(id, "SoilProbe");
        for (name, v) in attrs {
            e.set_attribute(*name, Attribute::new(*v));
        }
        UpdateRecord {
            seq,
            key: id.to_owned(),
            payload: e.to_json().to_compact_string().into_bytes(),
            created_at: SimTime::from_secs(seq),
        }
    }

    #[test]
    fn farm_key_derivation() {
        assert_eq!(farm_of("urn:swamp:farm-3:probe-17"), "farm-3");
        assert_eq!(farm_of("urn:swamp:device:probe-1"), "device");
        assert_eq!(farm_of("loner"), "unassigned");
        assert_eq!(farm_of(""), "unassigned");
    }

    #[test]
    fn cursor_only_folds_fresh_records() {
        let mut idx = ViewIndexer::new();
        let history = vec![
            rec(1, "urn:s:f1:d1", &[("water_flow", 2.0)]),
            rec(2, "urn:s:f1:d2", &[("water_flow", 3.0)]),
        ];
        assert_eq!(idx.catch_up(&history), 2);
        assert_eq!(idx.cursor(), 2);
        // Re-presenting the same run applies nothing.
        assert_eq!(idx.catch_up(&history), 0);
        assert_eq!(idx.applied(), 2);
        let mut longer = history.clone();
        longer.push(rec(3, "urn:s:f1:d1", &[("water_flow", 5.0)]));
        assert_eq!(idx.catch_up(&longer), 1);
        let snap = idx.snapshot();
        assert_eq!(snap.entities["urn:s:f1:d1"].consumption, 7.0);
        assert_eq!(snap.entities["urn:s:f1:d1"].records, 2);
        assert_eq!(snap.entities["urn:s:f1:d1"].last_seq, 3);
    }

    #[test]
    fn alerts_track_latest_value_and_event_count() {
        let mut idx = ViewIndexer::new();
        idx.catch_up(&[
            rec(1, "urn:s:f1:d1", &[("moisture_vwc", 0.05)]), // low
            rec(2, "urn:s:f1:d1", &[("moisture_vwc", 0.20)]), // recovered
            rec(3, "urn:s:f1:d2", &[("moisture_vwc", 0.08)]), // low now
        ]);
        let digest = idx.snapshot().alert_digest();
        assert_eq!(digest.low_events, 2);
        assert_eq!(digest.low_now, vec!["urn:s:f1:d2".to_owned()]);
    }

    #[test]
    fn malformed_payloads_count_but_do_not_poison() {
        let mut idx = ViewIndexer::new();
        let mut bad = rec(1, "urn:s:f1:d1", &[]);
        bad.payload = b"not json".to_vec();
        idx.catch_up(&[bad, rec(2, "urn:s:f1:d1", &[("water_flow", 4.0)])]);
        let snap = idx.snapshot();
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.entities["urn:s:f1:d1"].records, 2);
        assert_eq!(snap.entities["urn:s:f1:d1"].consumption, 4.0);
    }

    #[test]
    fn sharded_merge_equals_single_indexer() {
        // Route records by device parity onto two "shards"; the merged
        // snapshot must equal the one-indexer run bit-for-bit, including
        // the serialized JSON.
        let all: Vec<UpdateRecord> = (0..40u64)
            .map(|i| {
                let dev = i % 7;
                let farm = dev % 2;
                rec(
                    i + 1,
                    &format!("urn:s:farm-{farm}:d{dev}"),
                    &[
                        ("water_flow", (i % 5) as f64 + 0.25),
                        ("moisture_vwc", if i % 11 == 0 { 0.05 } else { 0.2 }),
                    ],
                )
            })
            .collect();
        let mut single = ViewIndexer::new();
        single.catch_up(&all);
        let mut a = ViewIndexer::new();
        let mut b = ViewIndexer::new();
        let shard_a: Vec<UpdateRecord> = all
            .iter()
            .filter(|r| r.key.ends_with(['0', '2', '4', '6']))
            .cloned()
            .collect();
        let shard_b: Vec<UpdateRecord> = all
            .iter()
            .filter(|r| r.key.ends_with(['1', '3', '5']))
            .cloned()
            .collect();
        a.catch_up(&shard_a);
        b.catch_up(&shard_b);
        let mut merged = a.snapshot();
        merged.merge(b.snapshot());
        let solo = single.snapshot();
        assert_eq!(merged.entities, solo.entities);
        assert_eq!(merged.applied, solo.applied);
        assert_eq!(
            merged.to_json().to_compact_string(),
            solo.to_json().to_compact_string()
        );
        // And merge order does not matter.
        let mut merged_rev = b.snapshot();
        merged_rev.merge(a.snapshot());
        assert_eq!(
            merged_rev.to_json().to_compact_string(),
            solo.to_json().to_compact_string()
        );
    }

    #[test]
    fn top_consumers_orders_and_breaks_ties_deterministically() {
        let mut idx = ViewIndexer::with_config(ViewConfig {
            top_k: 3,
            ..ViewConfig::default()
        });
        idx.catch_up(&[
            rec(1, "urn:s:f:b", &[("water_flow", 5.0)]),
            rec(2, "urn:s:f:a", &[("water_flow", 5.0)]),
            rec(3, "urn:s:f:c", &[("water_flow", 9.0)]),
            rec(4, "urn:s:f:d", &[("water_flow", 1.0)]),
        ]);
        let top = idx.snapshot().top_consumers();
        let ids: Vec<&str> = top.iter().map(|t| t.entity.as_str()).collect();
        assert_eq!(ids, vec!["urn:s:f:c", "urn:s:f:a", "urn:s:f:b"]);
    }

    #[test]
    fn farm_rollups_fold_in_key_order() {
        let mut idx = ViewIndexer::new();
        idx.catch_up(&[
            rec(1, "urn:s:farm-b:d1", &[("water_flow", 1.0)]),
            rec(2, "urn:s:farm-a:d1", &[("water_flow", 2.0)]),
            rec(3, "urn:s:farm-a:d2", &[("water_flow", 3.0)]),
        ]);
        let farms = idx.snapshot().farm_rollups();
        assert_eq!(farms.len(), 2);
        assert_eq!(farms[0].farm, "farm-a");
        assert_eq!(farms[0].devices, 2);
        assert_eq!(farms[0].consumption, 5.0);
        assert_eq!(farms[1].farm, "farm-b");
        assert_eq!(farms[1].records, 1);
    }
}
