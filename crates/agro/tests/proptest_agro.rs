//! Property-based tests for the agronomic models.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_agro::crop::Crop;
use swamp_agro::et::{ea_from_rh_mean, hargreaves, penman_monteith, EtInputs};
use swamp_agro::weather::{ClimateProfile, WeatherGenerator};
use swamp_sim::SimRng;

fn crops() -> Vec<Crop> {
    vec![
        Crop::soybean(),
        Crop::wine_grape(),
        Crop::lettuce(),
        Crop::melon(),
        Crop::tomato(),
        Crop::maize(),
    ]
}

proptest! {
    /// ET₀ is finite and non-negative over the whole plausible input space,
    /// for both formulations.
    #[test]
    fn et0_finite_nonnegative(
        tmax in -5.0f64..48.0,
        range in 1.0f64..25.0,
        rh in 5.0f64..100.0,
        wind in 0.0f64..20.0,
        solar in 0.5f64..35.0,
        lat in -60.0f64..60.0,
        elev in 0.0f64..3000.0,
        doy in 1u32..=366,
    ) {
        let tmin = tmax - range;
        let inputs = EtInputs {
            tmax_c: tmax,
            tmin_c: tmin,
            ea_kpa: ea_from_rh_mean(rh, tmax, tmin),
            wind_2m: wind,
            solar_mj: solar,
            latitude_deg: lat,
            elevation_m: elev,
            day_of_year: doy,
        };
        let pm = penman_monteith(&inputs);
        prop_assert!(pm.is_finite() && pm >= 0.0, "PM {pm}");
        // The aerodynamic term legitimately reaches ~35 mm/day at the
        // unphysical corner of this input box (46 °C, 5% RH, 20 m/s wind);
        // the bound is a sanity rail, not a climatology.
        prop_assert!(pm < 40.0, "PM {pm} beyond the equation's plausible range");
        let hg = hargreaves(tmax, tmin, lat, doy);
        prop_assert!(hg.is_finite() && hg >= 0.0, "HG {hg}");
    }

    /// Kc curves are bounded by the stage coefficients and root depth is
    /// monotone non-decreasing, for every crop and any day.
    #[test]
    fn crop_curves_well_behaved(day in 0u32..400) {
        for crop in crops() {
            let kc = crop.kc(day);
            let lo = crop.kc_ini.min(crop.kc_mid).min(crop.kc_end) - 1e-9;
            let hi = crop.kc_ini.max(crop.kc_mid).max(crop.kc_end) + 1e-9;
            prop_assert!((lo..=hi).contains(&kc), "{}: Kc {kc} on day {day}", crop.name);
            if day > 0 {
                prop_assert!(
                    crop.root_depth(day) >= crop.root_depth(day - 1) - 1e-12,
                    "{}: roots shrank", crop.name
                );
            }
            prop_assert!(crop.root_depth(day) <= crop.root_depth_max_m + 1e-12);
        }
    }

    /// Relative yield is in [0,1], monotone in water supplied.
    #[test]
    fn yield_monotone_in_water(
        etc in 100.0f64..900.0,
        frac_a in 0.0f64..1.0,
        frac_b in 0.0f64..1.0,
    ) {
        for crop in crops() {
            let (lo, hi) = if frac_a <= frac_b { (frac_a, frac_b) } else { (frac_b, frac_a) };
            let y_lo = crop.relative_yield(etc * lo, etc);
            let y_hi = crop.relative_yield(etc * hi, etc);
            prop_assert!((0.0..=1.0).contains(&y_lo));
            prop_assert!((0.0..=1.0).contains(&y_hi));
            prop_assert!(y_hi >= y_lo - 1e-12, "{}: yield not monotone", crop.name);
        }
    }

    /// Weather generation never violates physical invariants, for any seed
    /// and any climate.
    #[test]
    fn weather_invariants_any_seed(seed in any::<u64>(), start in 1u32..365) {
        for climate in [
            ClimateProfile::bologna(),
            ClimateProfile::cartagena(),
            ClimateProfile::pinhal(),
            ClimateProfile::barreiras(),
        ] {
            let mut g = WeatherGenerator::new(climate, SimRng::seed_from(seed));
            for day in g.generate_run(start, 30) {
                prop_assert!(day.tmax_c > day.tmin_c);
                prop_assert!(day.rain_mm >= 0.0 && day.rain_mm < 500.0);
                prop_assert!((15.0..=100.0).contains(&day.rh_mean_pct));
                prop_assert!(day.wind_2m > 0.0);
                prop_assert!(day.solar_mj > 0.0 && day.solar_mj < 45.0);
            }
        }
    }
}
