//! Canopy growth, NDVI and quality models.
//!
//! NDVI matters to the paper twice: drones collect it for crop monitoring,
//! and a Sybil attacker "could send fake images … leading to incorrect
//! calculation of the NDVI". This module provides the *true* NDVI process
//! the attackers then distort, plus the Guaspari wine-quality response to
//! regulated deficit irrigation.

use crate::crop::{Crop, GrowthStage};

/// Tracks canopy development and cumulative water history for one zone.
#[derive(Clone, Debug)]
pub struct CropState {
    crop: Crop,
    das: u32,
    eta_total: f64,
    etc_total: f64,
    /// Cumulative stress (1−Ks) during the ripening (late-season) window,
    /// for quality models — the classic regulated-deficit-irrigation window
    /// is véraison to harvest.
    ripening_stress: f64,
    ripening_days: u32,
    /// Whole-season stress accumulation (drives the NDVI penalty).
    stress_sum: f64,
    stress_days: u32,
}

impl CropState {
    /// Starts a season at sowing.
    pub fn new(crop: Crop) -> Self {
        CropState {
            crop,
            das: 0,
            eta_total: 0.0,
            etc_total: 0.0,
            ripening_stress: 0.0,
            ripening_days: 0,
            stress_sum: 0.0,
            stress_days: 0,
        }
    }

    /// The crop being grown.
    pub fn crop(&self) -> &Crop {
        &self.crop
    }

    /// Days after sowing.
    pub fn das(&self) -> u32 {
        self.das
    }

    /// Current growth stage.
    pub fn stage(&self) -> GrowthStage {
        self.crop.stage(self.das)
    }

    /// Whether the season has completed.
    pub fn is_mature(&self) -> bool {
        self.das >= self.crop.season_days()
    }

    /// Records one day: crop demand `etc_mm`, actual uptake `eta_mm`,
    /// stress coefficient `ks`.
    pub fn advance_day(&mut self, etc_mm: f64, eta_mm: f64, ks: f64) {
        self.etc_total += etc_mm;
        self.eta_total += eta_mm;
        if matches!(self.stage(), GrowthStage::LateSeason) {
            self.ripening_stress += 1.0 - ks;
            self.ripening_days += 1;
        }
        self.stress_sum += 1.0 - ks;
        self.stress_days += 1;
        self.das += 1;
    }

    /// Cumulative actual / potential crop ET, mm.
    pub fn et_totals(&self) -> (f64, f64) {
        (self.eta_total, self.etc_total)
    }

    /// FAO-33 relative yield given the accumulated water history.
    pub fn relative_yield(&self) -> f64 {
        if self.etc_total <= 0.0 {
            return 1.0;
        }
        self.crop.relative_yield(self.eta_total, self.etc_total)
    }

    /// Canopy ground-cover fraction implied by the Kc curve, `[0,1]`.
    pub fn canopy_fraction(&self) -> f64 {
        let kc = self.crop.kc(self.das);
        ((kc - self.crop.kc_ini) / (self.crop.kc_mid - self.crop.kc_ini)).clamp(0.0, 1.0)
    }

    /// True NDVI of the zone: bare-soil baseline rising with canopy, pulled
    /// down by sustained water stress.
    pub fn ndvi(&self) -> f64 {
        const NDVI_SOIL: f64 = 0.15;
        const NDVI_FULL: f64 = 0.88;
        let stress_penalty = if self.stress_days > 0 {
            0.25 * (self.stress_sum / self.stress_days as f64)
        } else {
            0.0
        };
        (NDVI_SOIL + (NDVI_FULL - NDVI_SOIL) * self.canopy_fraction() - stress_penalty)
            .clamp(0.0, 1.0)
    }

    /// Mean ripening-period stress `(1 − Ks)`, `[0,1]`.
    pub fn mean_ripening_stress(&self) -> f64 {
        if self.ripening_days == 0 {
            0.0
        } else {
            self.ripening_stress / self.ripening_days as f64
        }
    }
}

/// Wine-quality response to regulated deficit irrigation (Guaspari pilot).
///
/// Viticulture's well-documented inverted-U: *moderate* ripening-period
/// water deficit concentrates berries and raises quality; none leaves
/// diluted fruit, and severe deficit damages the vintage. Returns a 0–100
/// quality score peaking at `optimal_stress`.
pub fn wine_quality_score(mean_ripening_stress: f64) -> f64 {
    const OPTIMAL_STRESS: f64 = 0.35;
    const WIDTH: f64 = 0.28;
    let d = (mean_ripening_stress - OPTIMAL_STRESS) / WIDTH;
    100.0 * (-0.5 * d * d).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crop::Crop;

    fn run_season(irrigate_fraction: f64) -> CropState {
        // Simple synthetic season: ETc follows the Kc curve against a flat
        // 5 mm/day ET0; the crop receives `irrigate_fraction` of demand.
        let mut state = CropState::new(Crop::soybean());
        while !state.is_mature() {
            let etc = 5.0 * state.crop().kc(state.das());
            let eta = etc * irrigate_fraction;
            let ks = irrigate_fraction;
            state.advance_day(etc, eta, ks);
        }
        state
    }

    #[test]
    fn full_water_full_yield_high_ndvi() {
        let s = run_season(1.0);
        assert!((s.relative_yield() - 1.0).abs() < 1e-9);
        assert!(s.mean_ripening_stress() < 1e-9);
        // Fully mature canopy has senesced, but mid-season NDVI was high:
        let mut mid = CropState::new(Crop::soybean());
        for _ in 0..60 {
            let etc = 5.0 * mid.crop().kc(mid.das());
            mid.advance_day(etc, etc, 1.0);
        }
        assert!(mid.ndvi() > 0.8, "mid-season NDVI {}", mid.ndvi());
    }

    #[test]
    fn deficit_lowers_yield_and_ndvi() {
        let full = run_season(1.0);
        let deficit = run_season(0.6);
        assert!(deficit.relative_yield() < full.relative_yield());
        assert!(deficit.mean_ripening_stress() > 0.3);

        // NDVI during stress is lower than unstressed at the same stage.
        let mut stressed = CropState::new(Crop::soybean());
        let mut unstressed = CropState::new(Crop::soybean());
        for _ in 0..80 {
            let etc_s = 5.0 * stressed.crop().kc(stressed.das());
            stressed.advance_day(etc_s, etc_s * 0.5, 0.5);
            let etc_u = 5.0 * unstressed.crop().kc(unstressed.das());
            unstressed.advance_day(etc_u, etc_u, 1.0);
        }
        assert!(stressed.ndvi() < unstressed.ndvi());
    }

    #[test]
    fn canopy_fraction_tracks_stages() {
        let mut s = CropState::new(Crop::maize());
        assert_eq!(s.canopy_fraction(), 0.0);
        for _ in 0..70 {
            s.advance_day(1.0, 1.0, 1.0);
        }
        assert!((s.canopy_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ndvi_bounded() {
        let mut s = CropState::new(Crop::lettuce());
        for _ in 0..200 {
            assert!((0.0..=1.0).contains(&s.ndvi()));
            s.advance_day(3.0, 0.0, 0.0); // worst-case stress
        }
    }

    #[test]
    fn wine_quality_inverted_u() {
        let none = wine_quality_score(0.0);
        let moderate = wine_quality_score(0.35);
        let severe = wine_quality_score(0.9);
        assert!(moderate > none, "moderate {moderate} > none {none}");
        assert!(moderate > severe, "moderate {moderate} > severe {severe}");
        assert!((moderate - 100.0).abs() < 1e-9);
        assert!((0.0..=100.0).contains(&none));
        assert!((0.0..=100.0).contains(&severe));
    }

    #[test]
    fn et_totals_accumulate() {
        let mut s = CropState::new(Crop::tomato());
        s.advance_day(5.0, 4.0, 0.8);
        s.advance_day(6.0, 6.0, 1.0);
        let (eta, etc) = s.et_totals();
        assert!((eta - 10.0).abs() < 1e-12);
        assert!((etc - 11.0).abs() < 1e-12);
        assert_eq!(s.das(), 2);
    }

    #[test]
    fn maturity_flag() {
        let mut s = CropState::new(Crop::lettuce());
        assert!(!s.is_mature());
        for _ in 0..s.crop().season_days() {
            s.advance_day(1.0, 1.0, 1.0);
        }
        assert!(s.is_mature());
    }
}
