//! Reference evapotranspiration (ET₀) via the FAO-56 Penman–Monteith
//! equation, plus the Hargreaves fallback for data-poor sites.
//!
//! ET₀ is the heart of every irrigation decision in SWAMP: crop water demand
//! is `ETc = Kc · ET₀`, and the smart scheduler irrigates to replace it.
//! The implementation follows Allen et al., *FAO Irrigation and Drainage
//! Paper 56* (1998), and is validated against the worked examples there.

use std::f64::consts::PI;

/// Solar constant, MJ m⁻² min⁻¹ (FAO-56 eq. 28).
const GSC: f64 = 0.0820;

/// Daily weather inputs for the Penman–Monteith calculation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EtInputs {
    /// Maximum air temperature, °C.
    pub tmax_c: f64,
    /// Minimum air temperature, °C.
    pub tmin_c: f64,
    /// Actual vapour pressure, kPa (see [`ea_from_rh_mean`]).
    pub ea_kpa: f64,
    /// Wind speed at 2 m height, m/s.
    pub wind_2m: f64,
    /// Measured incoming solar radiation, MJ m⁻² day⁻¹.
    pub solar_mj: f64,
    /// Site latitude, degrees (negative = southern hemisphere).
    pub latitude_deg: f64,
    /// Site elevation above sea level, m.
    pub elevation_m: f64,
    /// Day of year, 1–366.
    pub day_of_year: u32,
}

/// Saturation vapour pressure at temperature `t` °C, kPa (FAO-56 eq. 11).
pub fn svp(t: f64) -> f64 {
    0.6108 * ((17.27 * t) / (t + 237.3)).exp()
}

/// Actual vapour pressure from mean relative humidity and the daily
/// temperature extremes (FAO-56 eq. 19).
pub fn ea_from_rh_mean(rh_mean_pct: f64, tmax_c: f64, tmin_c: f64) -> f64 {
    let es = (svp(tmax_c) + svp(tmin_c)) / 2.0;
    (rh_mean_pct / 100.0).clamp(0.0, 1.0) * es
}

/// Slope of the saturation vapour pressure curve at `t` °C, kPa/°C
/// (FAO-56 eq. 13).
pub fn svp_slope(t: f64) -> f64 {
    4098.0 * svp(t) / (t + 237.3).powi(2)
}

/// Psychrometric constant for a site elevation, kPa/°C (FAO-56 eq. 7–8).
pub fn psychrometric_constant(elevation_m: f64) -> f64 {
    let pressure = 101.3 * ((293.0 - 0.0065 * elevation_m) / 293.0).powf(5.26);
    0.000665 * pressure
}

/// Extraterrestrial radiation Ra, MJ m⁻² day⁻¹ (FAO-56 eq. 21–24).
///
/// # Panics
/// Panics if `day_of_year` is outside 1..=366 or latitude is beyond ±66.5°
/// (polar day/night is outside the model's domain and the pilots' geography).
pub fn extraterrestrial_radiation(latitude_deg: f64, day_of_year: u32) -> f64 {
    assert!(
        (1..=366).contains(&day_of_year),
        "day_of_year {day_of_year} outside 1..=366"
    );
    assert!(
        latitude_deg.abs() <= 66.5,
        "latitude {latitude_deg} outside the FAO-56 domain"
    );
    let j = day_of_year as f64;
    let phi = latitude_deg.to_radians();
    let dr = 1.0 + 0.033 * (2.0 * PI / 365.0 * j).cos();
    let delta = 0.409 * (2.0 * PI / 365.0 * j - 1.39).sin();
    let ws = (-phi.tan() * delta.tan()).acos();
    24.0 * 60.0 / PI
        * GSC
        * dr
        * (ws * phi.sin() * delta.sin() + phi.cos() * delta.cos() * ws.sin())
}

/// Clear-sky radiation Rso, MJ m⁻² day⁻¹ (FAO-56 eq. 37).
pub fn clear_sky_radiation(ra: f64, elevation_m: f64) -> f64 {
    (0.75 + 2e-5 * elevation_m) * ra
}

/// Daily FAO-56 Penman–Monteith reference evapotranspiration, mm/day.
///
/// Soil heat flux G is taken as zero, appropriate for daily steps
/// (FAO-56 eq. 42). Returns at least 0 (nighttime-condensation cases clamp).
pub fn penman_monteith(inputs: &EtInputs) -> f64 {
    let tmean = (inputs.tmax_c + inputs.tmin_c) / 2.0;
    let delta = svp_slope(tmean);
    let gamma = psychrometric_constant(inputs.elevation_m);
    let es = (svp(inputs.tmax_c) + svp(inputs.tmin_c)) / 2.0;
    let ea = inputs.ea_kpa.min(es); // physical bound

    // Net shortwave (albedo 0.23, eq. 38).
    let rns = 0.77 * inputs.solar_mj;

    // Net longwave (eq. 39).
    let ra = extraterrestrial_radiation(inputs.latitude_deg, inputs.day_of_year);
    let rso = clear_sky_radiation(ra, inputs.elevation_m);
    let rel = if rso > 0.0 {
        (inputs.solar_mj / rso).clamp(0.25, 1.0)
    } else {
        0.5
    };
    let sigma_term =
        4.903e-9 * ((inputs.tmax_c + 273.16).powi(4) + (inputs.tmin_c + 273.16).powi(4)) / 2.0;
    let rnl = sigma_term * (0.34 - 0.14 * ea.sqrt()) * (1.35 * rel - 0.35);

    let rn = rns - rnl;

    let num = 0.408 * delta * rn + gamma * 900.0 / (tmean + 273.0) * inputs.wind_2m * (es - ea);
    let den = delta + gamma * (1.0 + 0.34 * inputs.wind_2m);
    (num / den).max(0.0)
}

/// Hargreaves-Samani ET₀ estimate, mm/day (FAO-56 eq. 52) — used when only
/// temperature data is available (degraded-sensor scenarios).
pub fn hargreaves(tmax_c: f64, tmin_c: f64, latitude_deg: f64, day_of_year: u32) -> f64 {
    let tmean = (tmax_c + tmin_c) / 2.0;
    let ra = extraterrestrial_radiation(latitude_deg, day_of_year);
    // 0.408 converts MJ m⁻² day⁻¹ to mm/day equivalent evaporation.
    (0.0023 * (tmean + 17.8) * (tmax_c - tmin_c).max(0.0).sqrt() * ra * 0.408).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FAO-56 Example 17 (Brussels/Uccle, 6 July): published ET₀ = 3.88 mm.
    #[test]
    fn fao56_example17_brussels() {
        let inputs = EtInputs {
            tmax_c: 21.5,
            tmin_c: 12.3,
            ea_kpa: 1.409,
            wind_2m: 2.78,
            solar_mj: 22.07,
            latitude_deg: 50.8,
            elevation_m: 100.0,
            day_of_year: 187,
        };
        let et0 = penman_monteith(&inputs);
        assert!((et0 - 3.88).abs() < 0.12, "ET0 {et0} vs published 3.88");
    }

    /// FAO-56 Example 8: Ra at 20°S on 3 September ≈ 32.2 MJ m⁻² day⁻¹.
    #[test]
    fn fao56_example8_ra() {
        let ra = extraterrestrial_radiation(-20.0, 246);
        assert!((ra - 32.2).abs() < 0.3, "Ra {ra} vs published 32.2");
    }

    /// FAO-56 Example 11: es at Tmax 24.5/Tmin 15 → es = 2.39 kPa.
    #[test]
    fn fao56_example11_es() {
        let es = (svp(24.5) + svp(15.0)) / 2.0;
        assert!((es - 2.39).abs() < 0.01, "es {es}");
    }

    /// FAO-56 Example 2: γ at 1800 m ≈ 0.054 kPa/°C.
    #[test]
    fn fao56_example2_gamma() {
        let g = psychrometric_constant(1800.0);
        assert!((g - 0.054).abs() < 0.001, "gamma {g}");
    }

    #[test]
    fn et0_positive_and_bounded() {
        // A hot dry windy day in Barreiras (MATOPIBA pilot geography).
        let inputs = EtInputs {
            tmax_c: 34.0,
            tmin_c: 20.0,
            ea_kpa: ea_from_rh_mean(45.0, 34.0, 20.0),
            wind_2m: 3.0,
            solar_mj: 24.0,
            latitude_deg: -12.15,
            elevation_m: 720.0,
            day_of_year: 200,
        };
        let et0 = penman_monteith(&inputs);
        assert!(et0 > 4.0 && et0 < 12.0, "tropical dry-season ET0 {et0}");
    }

    #[test]
    fn humid_cool_day_has_lower_et0() {
        let hot = EtInputs {
            tmax_c: 35.0,
            tmin_c: 22.0,
            ea_kpa: ea_from_rh_mean(30.0, 35.0, 22.0),
            wind_2m: 4.0,
            solar_mj: 26.0,
            latitude_deg: 37.6,
            elevation_m: 10.0,
            day_of_year: 190,
        };
        let cool = EtInputs {
            tmax_c: 18.0,
            tmin_c: 10.0,
            ea_kpa: ea_from_rh_mean(90.0, 18.0, 10.0),
            wind_2m: 1.0,
            solar_mj: 8.0,
            ..hot
        };
        assert!(penman_monteith(&hot) > 2.0 * penman_monteith(&cool));
    }

    #[test]
    fn ea_clamped_to_es() {
        // RH over 100% (faulty sensor) must not produce negative VPD.
        let inputs = EtInputs {
            tmax_c: 20.0,
            tmin_c: 10.0,
            ea_kpa: 5.0, // impossible, above saturation
            wind_2m: 2.0,
            solar_mj: 15.0,
            latitude_deg: 44.5,
            elevation_m: 30.0,
            day_of_year: 150,
        };
        let et0 = penman_monteith(&inputs);
        assert!(et0.is_finite() && et0 >= 0.0);
    }

    #[test]
    fn hargreaves_tracks_pm_roughly() {
        // Hargreaves should land within a factor ~1.6 of PM for a normal day.
        let inputs = EtInputs {
            tmax_c: 28.0,
            tmin_c: 16.0,
            ea_kpa: ea_from_rh_mean(60.0, 28.0, 16.0),
            wind_2m: 2.0,
            solar_mj: 20.0,
            latitude_deg: 40.0,
            elevation_m: 200.0,
            day_of_year: 180,
        };
        let pm = penman_monteith(&inputs);
        let hg = hargreaves(28.0, 16.0, 40.0, 180);
        assert!(hg > pm / 1.6 && hg < pm * 1.6, "PM {pm} vs HG {hg}");
    }

    #[test]
    fn ra_seasonality_flips_with_hemisphere() {
        // Northern midsummer vs midwinter.
        let north_summer = extraterrestrial_radiation(45.0, 172);
        let north_winter = extraterrestrial_radiation(45.0, 355);
        assert!(north_summer > 2.0 * north_winter);
        // Southern hemisphere mirrors it.
        let south_summer = extraterrestrial_radiation(-45.0, 355);
        let south_winter = extraterrestrial_radiation(-45.0, 172);
        assert!(south_summer > 2.0 * south_winter);
    }

    #[test]
    #[should_panic(expected = "day_of_year")]
    fn bad_doy_panics() {
        let _ = extraterrestrial_radiation(0.0, 0);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn polar_latitude_panics() {
        let _ = extraterrestrial_radiation(80.0, 100);
    }
}
