//! Soil water balance (FAO-56 chapter 8): the physical ground truth that the
//! simulated soil-moisture probes sample and that irrigation decisions act
//! on. The balance runs per management zone, so Variable Rate Irrigation can
//! be evaluated against spatially heterogeneous soils.

/// Hydraulic properties of a soil.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoilProperties {
    /// Volumetric water content at field capacity, m³/m³.
    pub field_capacity: f64,
    /// Volumetric water content at permanent wilting point, m³/m³.
    pub wilting_point: f64,
    /// Saturated water content, m³/m³ (above FC drains in a day).
    pub saturation: f64,
    /// Curve-number-style runoff fraction for intense rain, 0–1.
    pub runoff_fraction: f64,
}

impl SoilProperties {
    /// Validates and creates soil properties.
    ///
    /// # Panics
    /// Panics unless `0 < wilting_point < field_capacity < saturation < 1`.
    pub fn new(
        field_capacity: f64,
        wilting_point: f64,
        saturation: f64,
        runoff_fraction: f64,
    ) -> Self {
        assert!(
            0.0 < wilting_point
                && wilting_point < field_capacity
                && field_capacity < saturation
                && saturation < 1.0,
            "inconsistent soil: wp={wilting_point} fc={field_capacity} sat={saturation}"
        );
        assert!((0.0..=1.0).contains(&runoff_fraction));
        SoilProperties {
            field_capacity,
            wilting_point,
            saturation,
            runoff_fraction,
        }
    }

    /// A loam (CBEC/Guaspari-like).
    pub fn loam() -> Self {
        SoilProperties::new(0.27, 0.12, 0.45, 0.05)
    }

    /// A sandy soil (MATOPIBA cerrado oxisols are sandy-clay but drain fast).
    pub fn sandy() -> Self {
        SoilProperties::new(0.16, 0.06, 0.38, 0.02)
    }

    /// A clay soil (holds more, drains slowly).
    pub fn clay() -> Self {
        SoilProperties::new(0.36, 0.20, 0.50, 0.12)
    }

    /// Total available water for a root depth, mm (FAO-56 eq. 82).
    pub fn taw_mm(&self, root_depth_m: f64) -> f64 {
        (self.field_capacity - self.wilting_point) * root_depth_m * 1000.0
    }
}

/// Daily inputs to the water balance.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WaterFlux {
    /// Rainfall, mm.
    pub rain_mm: f64,
    /// Irrigation applied, mm.
    pub irrigation_mm: f64,
    /// Crop evapotranspiration demand `ETc = Kc·ET0`, mm.
    pub etc_mm: f64,
}

/// Outcome of one daily step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DailyOutcome {
    /// Actual evapotranspiration after water stress, mm.
    pub eta_mm: f64,
    /// Water-stress coefficient Ks in `[0,1]` (1 = unstressed).
    pub ks: f64,
    /// Deep percolation below the root zone, mm.
    pub drainage_mm: f64,
    /// Surface runoff, mm.
    pub runoff_mm: f64,
}

/// The root-zone water balance for one management zone.
///
/// State is the root-zone depletion `Dr` (mm below field capacity), per
/// FAO-56. Depletion 0 = field capacity; depletion TAW = wilting point.
///
/// # Example
/// ```
/// use swamp_agro::soil::{SoilProperties, SoilWaterBalance, WaterFlux};
/// let mut swb = SoilWaterBalance::new(SoilProperties::loam(), 0.5, 0.5);
/// let out = swb.step(WaterFlux { rain_mm: 0.0, irrigation_mm: 0.0, etc_mm: 5.0 });
/// assert!(out.eta_mm > 0.0);
/// assert!(swb.depletion_mm() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct SoilWaterBalance {
    soil: SoilProperties,
    root_depth_m: f64,
    /// Depletion fraction p: the share of TAW extractable without stress.
    depletion_fraction: f64,
    depletion_mm: f64,
}

impl SoilWaterBalance {
    /// Creates a balance starting at field capacity.
    ///
    /// # Panics
    /// Panics if `root_depth_m <= 0` or `depletion_fraction` outside (0,1).
    pub fn new(soil: SoilProperties, root_depth_m: f64, depletion_fraction: f64) -> Self {
        assert!(root_depth_m > 0.0, "root depth must be positive");
        assert!(
            (0.0..1.0).contains(&depletion_fraction) && depletion_fraction > 0.0,
            "depletion fraction {depletion_fraction} outside (0,1)"
        );
        SoilWaterBalance {
            soil,
            root_depth_m,
            depletion_fraction,
            depletion_mm: 0.0,
        }
    }

    /// The soil properties.
    pub fn soil(&self) -> &SoilProperties {
        &self.soil
    }

    /// Total available water, mm.
    pub fn taw_mm(&self) -> f64 {
        self.soil.taw_mm(self.root_depth_m)
    }

    /// Readily available water, mm (`p · TAW`).
    pub fn raw_mm(&self) -> f64 {
        self.depletion_fraction * self.taw_mm()
    }

    /// Current root-zone depletion, mm (0 = field capacity).
    pub fn depletion_mm(&self) -> f64 {
        self.depletion_mm
    }

    /// Volumetric water content implied by the current depletion, m³/m³ —
    /// this is what a perfect soil-moisture probe would read.
    pub fn volumetric_content(&self) -> f64 {
        let depth_mm = self.root_depth_m * 1000.0;
        self.soil.field_capacity - self.depletion_mm / depth_mm
    }

    /// Fraction of available water remaining, `[0,1]`.
    pub fn available_fraction(&self) -> f64 {
        (1.0 - self.depletion_mm / self.taw_mm()).clamp(0.0, 1.0)
    }

    /// Updates the root depth (crop growth). Depletion is preserved in mm.
    ///
    /// # Panics
    /// Panics if `root_depth_m <= 0`.
    pub fn set_root_depth(&mut self, root_depth_m: f64) {
        assert!(root_depth_m > 0.0);
        self.root_depth_m = root_depth_m;
        self.depletion_mm = self.depletion_mm.min(self.taw_mm());
    }

    /// Sets depletion directly (for initializing dry scenarios).
    ///
    /// # Panics
    /// Panics if negative or beyond TAW.
    pub fn set_depletion_mm(&mut self, depletion: f64) {
        assert!(
            (0.0..=self.taw_mm()).contains(&depletion),
            "depletion {depletion} outside [0, TAW={}]",
            self.taw_mm()
        );
        self.depletion_mm = depletion;
    }

    /// Advances one day.
    ///
    /// Order of operations (FAO-56): infiltration (rain minus runoff, plus
    /// irrigation) reduces depletion; excess beyond field capacity drains;
    /// then ET extracts water, scaled by the stress coefficient
    /// `Ks = (TAW − Dr) / (TAW − RAW)` once depletion exceeds RAW.
    pub fn step(&mut self, flux: WaterFlux) -> DailyOutcome {
        let taw = self.taw_mm();
        let raw = self.raw_mm();

        // Runoff on intense rain only (>10 mm/day here).
        let runoff_mm = if flux.rain_mm > 10.0 {
            (flux.rain_mm - 10.0) * self.soil.runoff_fraction
        } else {
            0.0
        };
        let infiltration = (flux.rain_mm - runoff_mm) + flux.irrigation_mm;

        self.depletion_mm -= infiltration;
        let drainage_mm = if self.depletion_mm < 0.0 {
            let d = -self.depletion_mm;
            self.depletion_mm = 0.0;
            d
        } else {
            0.0
        };

        let ks = if self.depletion_mm <= raw {
            1.0
        } else {
            ((taw - self.depletion_mm) / (taw - raw)).clamp(0.0, 1.0)
        };
        let eta_mm = (flux.etc_mm * ks).min(taw - self.depletion_mm).max(0.0);
        self.depletion_mm = (self.depletion_mm + eta_mm).min(taw);

        DailyOutcome {
            eta_mm,
            ks,
            drainage_mm,
            runoff_mm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swb() -> SoilWaterBalance {
        SoilWaterBalance::new(SoilProperties::loam(), 0.6, 0.5)
    }

    #[test]
    fn taw_and_raw() {
        let b = swb();
        // (0.27-0.12)*0.6*1000 = 90 mm.
        assert!((b.taw_mm() - 90.0).abs() < 1e-9);
        assert!((b.raw_mm() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn starts_at_field_capacity() {
        let b = swb();
        assert_eq!(b.depletion_mm(), 0.0);
        assert!((b.volumetric_content() - 0.27).abs() < 1e-12);
        assert_eq!(b.available_fraction(), 1.0);
    }

    #[test]
    fn unstressed_et_extracts_fully() {
        let mut b = swb();
        let out = b.step(WaterFlux {
            etc_mm: 5.0,
            ..WaterFlux::default()
        });
        assert_eq!(out.ks, 1.0);
        assert!((out.eta_mm - 5.0).abs() < 1e-9);
        assert!((b.depletion_mm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stress_begins_past_raw() {
        let mut b = swb();
        b.set_depletion_mm(50.0); // RAW = 45 < 50
        let out = b.step(WaterFlux {
            etc_mm: 5.0,
            ..WaterFlux::default()
        });
        assert!(out.ks < 1.0, "Ks {}", out.ks);
        assert!(out.eta_mm < 5.0);
    }

    #[test]
    fn ks_linear_between_raw_and_taw() {
        let mut b = swb();
        b.set_depletion_mm(67.5); // midway between RAW(45) and TAW(90)
        let out = b.step(WaterFlux {
            etc_mm: 1.0,
            ..WaterFlux::default()
        });
        assert!((out.ks - 0.5).abs() < 0.02, "Ks {}", out.ks);
    }

    #[test]
    fn et_stops_at_wilting_point() {
        let mut b = swb();
        b.set_depletion_mm(90.0); // at TAW
        let out = b.step(WaterFlux {
            etc_mm: 5.0,
            ..WaterFlux::default()
        });
        assert!(out.ks < 1e-12, "Ks {}", out.ks);
        assert!(out.eta_mm < 1e-12, "ETa {}", out.eta_mm);
        assert!((b.volumetric_content() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn irrigation_refills_and_excess_drains() {
        let mut b = swb();
        b.set_depletion_mm(20.0);
        let out = b.step(WaterFlux {
            irrigation_mm: 30.0,
            ..WaterFlux::default()
        });
        assert!((out.drainage_mm - 10.0).abs() < 1e-9);
        assert_eq!(b.depletion_mm(), 0.0);
    }

    #[test]
    fn intense_rain_generates_runoff() {
        let mut b = swb();
        b.set_depletion_mm(80.0);
        let out = b.step(WaterFlux {
            rain_mm: 50.0,
            ..WaterFlux::default()
        });
        assert!(out.runoff_mm > 0.0);
        // Light rain does not.
        let mut b2 = swb();
        b2.set_depletion_mm(80.0);
        let out2 = b2.step(WaterFlux {
            rain_mm: 8.0,
            ..WaterFlux::default()
        });
        assert_eq!(out2.runoff_mm, 0.0);
    }

    #[test]
    fn drydown_is_monotone() {
        let mut b = swb();
        let mut last = b.available_fraction();
        for _ in 0..40 {
            b.step(WaterFlux {
                etc_mm: 6.0,
                ..WaterFlux::default()
            });
            let now = b.available_fraction();
            assert!(now <= last);
            last = now;
        }
        // 40 days at 6 mm unirrigated nearly exhausts a 90 mm store (the
        // stress coefficient makes the approach to wilting asymptotic).
        assert!(b.available_fraction() < 0.02, "{}", b.available_fraction());
    }

    #[test]
    fn root_growth_preserves_depletion() {
        let mut b = swb();
        b.set_depletion_mm(30.0);
        b.set_root_depth(1.0);
        assert_eq!(b.depletion_mm(), 30.0);
        assert!((b.taw_mm() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn mass_balance_closes() {
        // Sum of inputs = sum of outputs + storage change over a wet run.
        let mut b = swb();
        b.set_depletion_mm(40.0);
        let d0 = b.depletion_mm();
        let mut in_sum = 0.0;
        let mut out_sum = 0.0;
        let fluxes = [
            WaterFlux {
                rain_mm: 20.0,
                irrigation_mm: 0.0,
                etc_mm: 4.0,
            },
            WaterFlux {
                rain_mm: 0.0,
                irrigation_mm: 25.0,
                etc_mm: 6.0,
            },
            WaterFlux {
                rain_mm: 35.0,
                irrigation_mm: 0.0,
                etc_mm: 3.0,
            },
            WaterFlux {
                rain_mm: 0.0,
                irrigation_mm: 0.0,
                etc_mm: 7.0,
            },
        ];
        for f in fluxes {
            let out = b.step(f);
            in_sum += f.rain_mm + f.irrigation_mm;
            out_sum += out.eta_mm + out.drainage_mm + out.runoff_mm;
        }
        let storage_change = d0 - b.depletion_mm(); // water gained by soil
        assert!(
            (in_sum - out_sum - storage_change).abs() < 1e-9,
            "in={in_sum} out={out_sum} Δstore={storage_change}"
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent soil")]
    fn bad_soil_rejected() {
        let _ = SoilProperties::new(0.1, 0.2, 0.4, 0.0);
    }

    #[test]
    #[should_panic(expected = "depletion")]
    fn bad_depletion_rejected() {
        swb().set_depletion_mm(1000.0);
    }
}
