//! Stochastic daily weather generation for the four SWAMP pilot climates.
//!
//! The paper's pilots span Emilia-Romagna (IT), Murcia (ES) and two Brazilian
//! sites. We replace the unavailable field meteorology with a seasonal
//! sinusoidal climate normal plus day-to-day stochastic variation and a
//! two-state Markov rain process — the standard WGEN-style structure. The
//! climates are parameterized so that *relative* behavior (dry Cartagena
//! summer, wet Bologna spring, MATOPIBA dry season) is right, which is what
//! the irrigation and security experiments consume.

use swamp_sim::SimRng;

use crate::et::{ea_from_rh_mean, penman_monteith, EtInputs};

/// One generated day of weather.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeatherDay {
    /// Day of year, 1–366.
    pub day_of_year: u32,
    /// Maximum temperature, °C.
    pub tmax_c: f64,
    /// Minimum temperature, °C.
    pub tmin_c: f64,
    /// Mean relative humidity, %.
    pub rh_mean_pct: f64,
    /// Wind speed at 2 m, m/s.
    pub wind_2m: f64,
    /// Incoming solar radiation, MJ m⁻² day⁻¹.
    pub solar_mj: f64,
    /// Rainfall, mm.
    pub rain_mm: f64,
}

impl WeatherDay {
    /// FAO-56 Penman–Monteith ET₀ for this day at the given site.
    pub fn et0(&self, latitude_deg: f64, elevation_m: f64) -> f64 {
        penman_monteith(&EtInputs {
            tmax_c: self.tmax_c,
            tmin_c: self.tmin_c,
            ea_kpa: ea_from_rh_mean(self.rh_mean_pct, self.tmax_c, self.tmin_c),
            wind_2m: self.wind_2m,
            solar_mj: self.solar_mj,
            latitude_deg,
            elevation_m,
            day_of_year: self.day_of_year,
        })
    }
}

/// Climate normals for a site, from which days are sampled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClimateProfile {
    /// Site latitude, degrees.
    pub latitude_deg: f64,
    /// Site elevation, m.
    pub elevation_m: f64,
    /// Annual-mean daily maximum temperature, °C.
    pub tmax_mean: f64,
    /// Seasonal half-amplitude of tmax, °C (peaks at `warmest_doy`).
    pub tmax_amplitude: f64,
    /// Day of year of the warmest day.
    pub warmest_doy: u32,
    /// Mean diurnal range (tmax − tmin), °C.
    pub diurnal_range: f64,
    /// Day-to-day temperature standard deviation, °C.
    pub temp_sd: f64,
    /// Annual-mean relative humidity, %.
    pub rh_mean: f64,
    /// Mean wind speed at 2 m, m/s.
    pub wind_mean: f64,
    /// Probability a dry day is followed by a wet day.
    pub p_wet_after_dry: f64,
    /// Probability a wet day is followed by a wet day.
    pub p_wet_after_wet: f64,
    /// Mean rainfall on a wet day, mm (exponentially distributed).
    pub wet_day_rain_mean: f64,
    /// Seasonal rain multiplier half-amplitude (1 = uniform year-round);
    /// positive values peak at `wettest_doy`.
    pub rain_seasonality: f64,
    /// Day of year of the rainiest season's peak.
    pub wettest_doy: u32,
}

impl ClimateProfile {
    /// Consorzio di Bonifica Emilia Centrale — Bologna, Italy (CBEC pilot).
    pub fn bologna() -> Self {
        ClimateProfile {
            latitude_deg: 44.5,
            elevation_m: 54.0,
            tmax_mean: 18.5,
            tmax_amplitude: 11.5,
            warmest_doy: 200,
            diurnal_range: 9.0,
            temp_sd: 2.5,
            rh_mean: 72.0,
            wind_mean: 2.2,
            p_wet_after_dry: 0.22,
            p_wet_after_wet: 0.45,
            wet_day_rain_mean: 7.0,
            rain_seasonality: 0.3,
            wettest_doy: 300,
        }
    }

    /// Intercrop Iberica — Cartagena, Spain: semi-arid, desalinated supply.
    pub fn cartagena() -> Self {
        ClimateProfile {
            latitude_deg: 37.6,
            elevation_m: 10.0,
            tmax_mean: 22.5,
            tmax_amplitude: 8.0,
            warmest_doy: 210,
            diurnal_range: 8.0,
            temp_sd: 2.0,
            rh_mean: 65.0,
            wind_mean: 3.0,
            p_wet_after_dry: 0.06,
            p_wet_after_wet: 0.30,
            wet_day_rain_mean: 8.0,
            rain_seasonality: 0.5,
            wettest_doy: 285,
        }
    }

    /// Guaspari Winery — Espírito Santo do Pinhal, Brazil (winter harvest).
    pub fn pinhal() -> Self {
        ClimateProfile {
            latitude_deg: -22.2,
            elevation_m: 870.0,
            tmax_mean: 26.0,
            tmax_amplitude: 4.0,
            warmest_doy: 35,
            diurnal_range: 11.0,
            temp_sd: 2.2,
            rh_mean: 70.0,
            wind_mean: 1.8,
            p_wet_after_dry: 0.25,
            p_wet_after_wet: 0.55,
            wet_day_rain_mean: 10.0,
            rain_seasonality: 0.8,
            wettest_doy: 15,
        }
    }

    /// Rio das Pedras Farm — Barreiras, MATOPIBA region, Brazil.
    pub fn barreiras() -> Self {
        ClimateProfile {
            latitude_deg: -12.15,
            elevation_m: 720.0,
            tmax_mean: 31.0,
            tmax_amplitude: 2.5,
            warmest_doy: 270,
            diurnal_range: 12.0,
            temp_sd: 1.8,
            rh_mean: 55.0,
            wind_mean: 2.5,
            p_wet_after_dry: 0.18,
            p_wet_after_wet: 0.60,
            wet_day_rain_mean: 12.0,
            rain_seasonality: 0.95,
            wettest_doy: 5,
        }
    }

    fn seasonal(&self, doy: u32, peak_doy: u32, mean: f64, amplitude: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (doy as f64 - peak_doy as f64) / 365.0;
        mean + amplitude * phase.cos()
    }
}

/// A deterministic per-site weather generator.
///
/// # Example
/// ```
/// use swamp_agro::weather::{ClimateProfile, WeatherGenerator};
/// use swamp_sim::SimRng;
/// let mut gen = WeatherGenerator::new(ClimateProfile::barreiras(),
///                                     SimRng::seed_from(1));
/// let day = gen.next_day(1);
/// assert!(day.tmax_c > day.tmin_c);
/// ```
#[derive(Clone, Debug)]
pub struct WeatherGenerator {
    profile: ClimateProfile,
    rng: SimRng,
    yesterday_wet: bool,
}

impl WeatherGenerator {
    /// Creates a generator for a climate with its own RNG stream.
    pub fn new(profile: ClimateProfile, rng: SimRng) -> Self {
        WeatherGenerator {
            profile,
            rng,
            yesterday_wet: false,
        }
    }

    /// The climate being generated.
    pub fn profile(&self) -> &ClimateProfile {
        &self.profile
    }

    /// Generates the weather for a given day of year (advances the
    /// stochastic state; call with consecutive days for realistic runs).
    ///
    /// # Panics
    /// Panics if `day_of_year` is outside 1..=366.
    pub fn next_day(&mut self, day_of_year: u32) -> WeatherDay {
        assert!(
            (1..=366).contains(&day_of_year),
            "day_of_year {day_of_year} outside 1..=366"
        );
        let p = &self.profile;

        // Rain first: wet days are cooler, dimmer and more humid.
        let p_wet = if self.yesterday_wet {
            p.p_wet_after_wet
        } else {
            p.p_wet_after_dry
        };
        let season_rain = (1.0
            + p.rain_seasonality
                * (2.0 * std::f64::consts::PI * (day_of_year as f64 - p.wettest_doy as f64)
                    / 365.0)
                    .cos())
        .max(0.0);
        let wet = self.rng.chance((p_wet * season_rain).clamp(0.0, 0.95));
        let rain_mm = if wet {
            self.rng.exponential(1.0 / p.wet_day_rain_mean) * season_rain.max(0.2)
        } else {
            0.0
        };
        self.yesterday_wet = wet;

        let tmax_clim = p.seasonal(day_of_year, p.warmest_doy, p.tmax_mean, p.tmax_amplitude);
        let wet_cooling = if wet { 2.0 } else { 0.0 };
        let tmax_c = self.rng.normal_with(tmax_clim - wet_cooling, p.temp_sd);
        let range = self
            .rng
            .normal_with(p.diurnal_range * if wet { 0.6 } else { 1.0 }, 1.0)
            .max(2.0);
        let tmin_c = tmax_c - range;

        let rh_mean_pct = (self
            .rng
            .normal_with(p.rh_mean + if wet { 15.0 } else { 0.0 }, 5.0))
        .clamp(15.0, 100.0);
        let wind_2m = self.rng.exponential(1.0 / p.wind_mean).clamp(0.2, 15.0);

        // Solar: clear-sky fraction lower on wet days.
        let ra = crate::et::extraterrestrial_radiation(p.latitude_deg, day_of_year);
        let rso = crate::et::clear_sky_radiation(ra, p.elevation_m);
        let frac = if wet {
            self.rng.uniform_range(0.25, 0.55)
        } else {
            self.rng.uniform_range(0.6, 0.95)
        };
        let solar_mj = rso * frac;

        WeatherDay {
            day_of_year,
            tmax_c,
            tmin_c,
            rh_mean_pct,
            wind_2m,
            solar_mj,
            rain_mm,
        }
    }

    /// Generates a run of consecutive days starting at `start_doy`
    /// (wrapping around the year).
    pub fn generate_run(&mut self, start_doy: u32, days: usize) -> Vec<WeatherDay> {
        (0..days)
            .map(|i| {
                let doy = (start_doy as usize + i - 1) % 365 + 1;
                self.next_day(doy as u32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(profile: ClimateProfile, seed: u64) -> WeatherGenerator {
        WeatherGenerator::new(profile, SimRng::seed_from(seed))
    }

    #[test]
    fn physical_invariants_hold_for_a_year() {
        for (name, profile) in [
            ("bologna", ClimateProfile::bologna()),
            ("cartagena", ClimateProfile::cartagena()),
            ("pinhal", ClimateProfile::pinhal()),
            ("barreiras", ClimateProfile::barreiras()),
        ] {
            let mut g = gen(profile, 42);
            for day in g.generate_run(1, 365) {
                assert!(day.tmax_c > day.tmin_c, "{name}: tmax>tmin");
                assert!(day.rain_mm >= 0.0, "{name}: rain>=0");
                assert!(
                    (15.0..=100.0).contains(&day.rh_mean_pct),
                    "{name}: rh {}",
                    day.rh_mean_pct
                );
                assert!(day.wind_2m > 0.0, "{name}: wind");
                assert!(day.solar_mj > 0.0, "{name}: solar");
                let et0 = day.et0(profile.latitude_deg, profile.elevation_m);
                assert!((0.0..15.0).contains(&et0), "{name}: ET0 {et0} out of range");
            }
        }
    }

    #[test]
    fn cartagena_is_drier_than_bologna() {
        let rain = |profile| {
            let mut g = gen(profile, 7);
            g.generate_run(1, 365)
                .iter()
                .map(|d| d.rain_mm)
                .sum::<f64>()
        };
        let cart = rain(ClimateProfile::cartagena());
        let bolo = rain(ClimateProfile::bologna());
        assert!(
            cart < 0.6 * bolo,
            "Cartagena {cart:.0}mm should be much drier than Bologna {bolo:.0}mm"
        );
    }

    #[test]
    fn barreiras_dry_season_is_dry() {
        // MATOPIBA winter (May–Sep, doy 121–273) is the dry season — that is
        // why the pilot irrigates soybean there.
        let mut g = gen(ClimateProfile::barreiras(), 11);
        let year = g.generate_run(1, 365);
        let dry_season: f64 = year[120..273].iter().map(|d| d.rain_mm).sum();
        let wet_season: f64 = year[..120]
            .iter()
            .chain(&year[273..])
            .map(|d| d.rain_mm)
            .sum();
        assert!(
            dry_season < 0.35 * wet_season,
            "dry {dry_season:.0}mm vs wet {wet_season:.0}mm"
        );
    }

    #[test]
    fn bologna_summer_warmer_than_winter() {
        let mut g = gen(ClimateProfile::bologna(), 5);
        let year = g.generate_run(1, 365);
        let july: f64 = year[181..212].iter().map(|d| d.tmax_c).sum::<f64>() / 31.0;
        let january: f64 = year[..31].iter().map(|d| d.tmax_c).sum::<f64>() / 31.0;
        assert!(july > january + 12.0, "july {july:.1} jan {january:.1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = gen(ClimateProfile::pinhal(), 9);
        let mut b = gen(ClimateProfile::pinhal(), 9);
        assert_eq!(a.generate_run(100, 30), b.generate_run(100, 30));
        let mut c = gen(ClimateProfile::pinhal(), 10);
        assert_ne!(a.generate_run(100, 30), c.generate_run(100, 30));
    }

    #[test]
    fn run_wraps_year_boundary() {
        let mut g = gen(ClimateProfile::bologna(), 3);
        let run = g.generate_run(364, 4);
        let doys: Vec<u32> = run.iter().map(|d| d.day_of_year).collect();
        assert_eq!(doys, vec![364, 365, 1, 2]);
    }

    #[test]
    fn rain_autocorrelation_present() {
        // Wet-after-wet must exceed the unconditional wet fraction.
        let mut g = gen(ClimateProfile::bologna(), 21);
        let days = g.generate_run(1, 365 * 4 - 1);
        let wet: Vec<bool> = days.iter().map(|d| d.rain_mm > 0.0).collect();
        let p_wet = wet.iter().filter(|&&w| w).count() as f64 / wet.len() as f64;
        let mut after_wet = 0;
        let mut wet_after_wet = 0;
        for w in wet.windows(2) {
            if w[0] {
                after_wet += 1;
                if w[1] {
                    wet_after_wet += 1;
                }
            }
        }
        let p_ww = wet_after_wet as f64 / after_wet as f64;
        assert!(p_ww > p_wet, "P(wet|wet)={p_ww:.2} vs P(wet)={p_wet:.2}");
    }

    #[test]
    #[should_panic(expected = "day_of_year")]
    fn bad_doy_panics() {
        gen(ClimateProfile::bologna(), 1).next_day(400);
    }
}
