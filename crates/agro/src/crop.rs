//! Crop models: FAO-56 crop coefficients (Kc) over growth stages, rooting
//! development, and the FAO-33 yield-response factor Ky.
//!
//! Presets cover the four pilots' crops: soybean (MATOPIBA), wine grape
//! (Guaspari), lettuce and melon (Intercrop's vegetable rotation), and
//! processing tomato / maize (typical CBEC consortium crops).

/// Phenological stages per FAO-56.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthStage {
    /// Establishment: Kc ≈ Kc_ini.
    Initial,
    /// Canopy development: Kc ramps Kc_ini → Kc_mid.
    Development,
    /// Full canopy: Kc = Kc_mid.
    MidSeason,
    /// Ripening/senescence: Kc ramps Kc_mid → Kc_end.
    LateSeason,
    /// Past harvest.
    Mature,
}

/// A crop's water-relevant parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Crop {
    /// Human-readable name.
    pub name: &'static str,
    /// Kc during the initial stage.
    pub kc_ini: f64,
    /// Kc at full canopy.
    pub kc_mid: f64,
    /// Kc at harvest.
    pub kc_end: f64,
    /// Stage lengths in days: initial, development, mid, late.
    pub stage_days: [u32; 4],
    /// Rooting depth at emergence, m.
    pub root_depth_ini_m: f64,
    /// Maximum rooting depth, m.
    pub root_depth_max_m: f64,
    /// Soil-water depletion fraction p (FAO-56 table 22).
    pub depletion_fraction: f64,
    /// Seasonal yield-response factor Ky (FAO-33).
    pub ky: f64,
}

impl Crop {
    /// Soybean — the MATOPIBA pilot's crop (FAO-56 table 12/22 values).
    pub fn soybean() -> Self {
        Crop {
            name: "soybean",
            kc_ini: 0.40,
            kc_mid: 1.15,
            kc_end: 0.50,
            stage_days: [20, 30, 60, 25],
            root_depth_ini_m: 0.15,
            root_depth_max_m: 1.0,
            depletion_fraction: 0.50,
            ky: 0.85,
        }
    }

    /// Wine grape — the Guaspari pilot's crop.
    pub fn wine_grape() -> Self {
        Crop {
            name: "wine_grape",
            kc_ini: 0.30,
            kc_mid: 0.70,
            kc_end: 0.45,
            stage_days: [30, 60, 40, 60],
            root_depth_ini_m: 0.60,
            root_depth_max_m: 1.2,
            depletion_fraction: 0.45,
            ky: 0.85,
        }
    }

    /// Lettuce — Intercrop's leafy vegetable.
    pub fn lettuce() -> Self {
        Crop {
            name: "lettuce",
            kc_ini: 0.70,
            kc_mid: 1.00,
            kc_end: 0.95,
            stage_days: [25, 35, 30, 10],
            root_depth_ini_m: 0.10,
            root_depth_max_m: 0.45,
            depletion_fraction: 0.30,
            ky: 1.00,
        }
    }

    /// Melon — Intercrop's fruiting vegetable.
    pub fn melon() -> Self {
        Crop {
            name: "melon",
            kc_ini: 0.50,
            kc_mid: 1.05,
            kc_end: 0.75,
            stage_days: [25, 35, 40, 20],
            root_depth_ini_m: 0.20,
            root_depth_max_m: 1.0,
            depletion_fraction: 0.40,
            ky: 1.10,
        }
    }

    /// Processing tomato — a CBEC consortium staple.
    pub fn tomato() -> Self {
        Crop {
            name: "tomato",
            kc_ini: 0.60,
            kc_mid: 1.15,
            kc_end: 0.80,
            stage_days: [30, 40, 45, 30],
            root_depth_ini_m: 0.25,
            root_depth_max_m: 1.0,
            depletion_fraction: 0.40,
            ky: 1.05,
        }
    }

    /// Grain maize — a CBEC consortium staple.
    pub fn maize() -> Self {
        Crop {
            name: "maize",
            kc_ini: 0.30,
            kc_mid: 1.20,
            kc_end: 0.45,
            stage_days: [25, 40, 45, 30],
            root_depth_ini_m: 0.20,
            root_depth_max_m: 1.2,
            depletion_fraction: 0.55,
            ky: 1.25,
        }
    }

    /// Season length, days.
    pub fn season_days(&self) -> u32 {
        self.stage_days.iter().sum()
    }

    /// Growth stage on day-after-sowing `das` (0-based).
    pub fn stage(&self, das: u32) -> GrowthStage {
        let [ini, dev, mid, late] = self.stage_days;
        if das < ini {
            GrowthStage::Initial
        } else if das < ini + dev {
            GrowthStage::Development
        } else if das < ini + dev + mid {
            GrowthStage::MidSeason
        } else if das < ini + dev + mid + late {
            GrowthStage::LateSeason
        } else {
            GrowthStage::Mature
        }
    }

    /// Crop coefficient Kc on day-after-sowing `das` (FAO-56 fig. 25
    /// piecewise-linear curve).
    pub fn kc(&self, das: u32) -> f64 {
        let [ini, dev, mid, _late] = self.stage_days;
        match self.stage(das) {
            GrowthStage::Initial => self.kc_ini,
            GrowthStage::Development => {
                let f = (das - ini) as f64 / dev as f64;
                self.kc_ini + f * (self.kc_mid - self.kc_ini)
            }
            GrowthStage::MidSeason => self.kc_mid,
            GrowthStage::LateSeason => {
                let late_start = ini + dev + mid;
                let f = (das - late_start) as f64 / self.stage_days[3] as f64;
                self.kc_mid + f * (self.kc_end - self.kc_mid)
            }
            GrowthStage::Mature => self.kc_end,
        }
    }

    /// Rooting depth on day `das`, growing linearly from initial to max by
    /// the start of mid-season.
    pub fn root_depth(&self, das: u32) -> f64 {
        let full_by = (self.stage_days[0] + self.stage_days[1]) as f64;
        let f = (das as f64 / full_by).min(1.0);
        self.root_depth_ini_m + f * (self.root_depth_max_m - self.root_depth_ini_m)
    }

    /// FAO-33 relative yield: `1 − Ya/Ym = Ky (1 − ETa/ETc)`.
    ///
    /// # Panics
    /// Panics if `etc_total <= 0`.
    pub fn relative_yield(&self, eta_total: f64, etc_total: f64) -> f64 {
        assert!(etc_total > 0.0, "ETc must be positive");
        let ratio = (eta_total / etc_total).clamp(0.0, 1.0);
        (1.0 - self.ky * (1.0 - ratio)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kc_curve_shape_soybean() {
        let c = Crop::soybean();
        assert_eq!(c.kc(0), 0.40);
        assert_eq!(c.kc(19), 0.40);
        // Midpoint of development ramps halfway.
        let mid_dev = c.kc(20 + 15);
        assert!((mid_dev - (0.40 + 1.15) / 2.0).abs() < 0.03);
        assert_eq!(c.kc(55), 1.15);
        assert_eq!(c.kc(109), 1.15);
        // Late season ramps down.
        assert!(c.kc(122) < 1.15);
        assert!(c.kc(200) - 0.50 < 1e-9);
    }

    #[test]
    fn stages_partition_season() {
        let c = Crop::maize();
        assert_eq!(c.season_days(), 140);
        assert_eq!(c.stage(0), GrowthStage::Initial);
        assert_eq!(c.stage(24), GrowthStage::Initial);
        assert_eq!(c.stage(25), GrowthStage::Development);
        assert_eq!(c.stage(64), GrowthStage::Development);
        assert_eq!(c.stage(65), GrowthStage::MidSeason);
        assert_eq!(c.stage(109), GrowthStage::MidSeason);
        assert_eq!(c.stage(110), GrowthStage::LateSeason);
        assert_eq!(c.stage(139), GrowthStage::LateSeason);
        assert_eq!(c.stage(140), GrowthStage::Mature);
    }

    #[test]
    fn kc_is_continuous() {
        // No jumps bigger than the development-ramp slope anywhere.
        for crop in [
            Crop::soybean(),
            Crop::wine_grape(),
            Crop::lettuce(),
            Crop::melon(),
            Crop::tomato(),
            Crop::maize(),
        ] {
            let mut last = crop.kc(0);
            for das in 1..crop.season_days() + 10 {
                let now = crop.kc(das);
                assert!(
                    (now - last).abs() < 0.1,
                    "{}: Kc jump at day {das}: {last} -> {now}",
                    crop.name
                );
                last = now;
            }
        }
    }

    #[test]
    fn roots_grow_to_max() {
        let c = Crop::soybean();
        assert_eq!(c.root_depth(0), 0.15);
        assert!((c.root_depth(50) - 1.0).abs() < 1e-9);
        assert!((c.root_depth(140) - 1.0).abs() < 1e-9);
        assert!(c.root_depth(25) > 0.15);
        assert!(c.root_depth(25) < 1.0);
    }

    #[test]
    fn full_water_full_yield() {
        let c = Crop::soybean();
        assert!((c.relative_yield(450.0, 450.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deficit_reduces_yield_by_ky() {
        let c = Crop::maize(); // Ky = 1.25: sensitive
                               // 20% ET deficit → 25% yield loss.
        let y = c.relative_yield(400.0, 500.0);
        assert!((y - 0.75).abs() < 1e-9, "yield {y}");
        // Soybean (Ky=0.85) tolerates the same deficit better.
        let ys = Crop::soybean().relative_yield(400.0, 500.0);
        assert!(ys > y);
    }

    #[test]
    fn yield_clamped_at_zero() {
        let c = Crop::maize();
        assert_eq!(c.relative_yield(0.0, 500.0), 0.0);
    }

    #[test]
    fn excess_eta_does_not_exceed_full_yield() {
        let c = Crop::soybean();
        assert!((c.relative_yield(600.0, 500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ETc")]
    fn zero_etc_panics() {
        Crop::soybean().relative_yield(1.0, 0.0);
    }
}
