//! # swamp-agro — agronomic substrate for the SWAMP platform
//!
//! The SWAMP pilots' physics: what the simulated sensors measure and what
//! irrigation decisions change. Field instrumentation is unavailable to a
//! reproduction, so this crate supplies physically grounded models in its
//! place (see DESIGN.md for the substitution argument):
//!
//! - [`et`] — FAO-56 Penman–Monteith reference evapotranspiration, validated
//!   against the FAO worked examples; Hargreaves fallback.
//! - [`weather`] — WGEN-style stochastic daily weather for the four pilot
//!   climates (Bologna, Cartagena, Pinhal, Barreiras).
//! - [`soil`] — root-zone water balance with stress coefficient Ks
//!   (FAO-56 ch. 8), the ground truth soil probes sample.
//! - [`crop`] — Kc curves, root growth and FAO-33 yield response for the
//!   pilots' crops (soybean, wine grape, lettuce, melon, tomato, maize).
//! - [`growth`] — canopy/NDVI dynamics and the wine-quality response to
//!   regulated deficit irrigation (Guaspari pilot).
//!
//! ## Example: a day of crop water accounting
//!
//! ```
//! use swamp_agro::crop::Crop;
//! use swamp_agro::soil::{SoilProperties, SoilWaterBalance, WaterFlux};
//! use swamp_agro::weather::{ClimateProfile, WeatherGenerator};
//! use swamp_sim::SimRng;
//!
//! let climate = ClimateProfile::barreiras();
//! let mut weather = WeatherGenerator::new(climate, SimRng::seed_from(1));
//! let crop = Crop::soybean();
//! let mut soil = SoilWaterBalance::new(
//!     SoilProperties::sandy(), crop.root_depth_ini_m, crop.depletion_fraction);
//!
//! let day = weather.next_day(150);
//! let et0 = day.et0(climate.latitude_deg, climate.elevation_m);
//! let etc = et0 * crop.kc(10);
//! let outcome = soil.step(WaterFlux { rain_mm: day.rain_mm, irrigation_mm: 0.0, etc_mm: etc });
//! assert!(outcome.eta_mm >= 0.0);
//! ```

pub mod crop;
pub mod et;
pub mod growth;
pub mod soil;
pub mod weather;

pub use crop::{Crop, GrowthStage};
pub use growth::CropState;
pub use soil::{SoilProperties, SoilWaterBalance, WaterFlux};
pub use weather::{ClimateProfile, WeatherDay, WeatherGenerator};
