//! Offline stand-in for the [criterion](https://docs.rs/criterion) benchmark
//! harness, implementing the subset of its API the SWAMP benches use.
//!
//! The measurement model is deliberately simple and dependency-free: each
//! benchmark runs a warmup phase, then `sample_size` timed samples, each
//! sample timing a batch of iterations sized so one batch takes roughly
//! `measurement_time / sample_size`. Reported numbers are the median, min
//! and max per-iteration times, plus throughput when configured. There is
//! no outlier analysis or regression tracking — swap the workspace
//! dependency back to crates.io criterion for that.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Throughput configuration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness entry point (shim).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Accepts command-line configuration; the shim recognises none and
    /// ignores benchmark-name filters (all benches run).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        }
    }

    /// Prints the final summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: Mode::Warmup {
                until: self.warm_up_time,
            },
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_budget: self.measurement_time / self.sample_size as u32,
            samples_wanted: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id, self.throughput);
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

enum Mode {
    Warmup { until: Duration },
    Measure,
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: Duration,
    samples_wanted: usize,
}

impl Bencher {
    /// Times `routine`, first calibrating batch size during warmup so each
    /// timed sample runs long enough to be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find how many iterations fit the budget.
        if let Mode::Warmup { until } = self.mode {
            let warm_start = Instant::now();
            let mut iters: u64 = 1;
            loop {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = t0.elapsed();
                if warm_start.elapsed() >= until {
                    let per_iter = elapsed.as_secs_f64() / iters as f64;
                    let budget = self.sample_budget.as_secs_f64();
                    self.iters_per_sample =
                        ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
                    break;
                }
                iters = (iters * 2).min(1 << 24);
            }
            self.mode = Mode::Measure;
        }
        // Timed samples.
        while self.samples.len() < self.samples_wanted {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / median)
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}: median {} (min {}, max {}, {} samples x {} iters){rate}",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut c = Criterion {
            sample_size: 5,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(64)).sample_size(5);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
