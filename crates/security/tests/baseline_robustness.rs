//! Fuzz-style robustness suite for the behavioral baseline (ISSUE 10
//! satellite): the `BehaviorBank` is fed reordered, duplicated and
//! gap-ridden delivery schedules — both hand-rolled and produced by
//! the PR-2 `FaultPlan` fault injector — and must
//!
//! 1. never panic,
//! 2. never double-alert on a replayed/deduped record (the
//!    `security.baseline.flagged` counter always equals the flag-map
//!    size, and replaying a stream verbatim changes nothing),
//! 3. degrade gracefully: honest false-flag fractions stay inside
//!    asserted bounds as loss rises, and a planted post-calibration
//!    tamper ramp is still caught through a moderately lossy path.
//!
//! The honest signal mimics the workload generator's diurnal soil
//! trace (sinusoid + bounded noise at a 30-minute cadence) without
//! depending on `swamp-workload` — the security crate sits below it in
//! the layering DAG.

use swamp_net::fault::FaultOutcome;
use swamp_net::{FaultPlan, FaultSpec, NodeId};
use swamp_obs::ObsSnapshot;
use swamp_security::baseline::{BaselineConfig, BehaviorBank};
use swamp_sim::{SimDuration, SimRng, SimTime};

const DEVICES: usize = 48;
const ROUNDS: usize = 240; // 5 simulated days at 30-minute cadence
const STEP: SimDuration = SimDuration::from_mins(30);

/// E16-shaped phase split: train the first half, calibrate the next
/// quarter, detect the rest.
fn phased_config() -> BaselineConfig {
    let start = SimTime::from_secs(60);
    BaselineConfig::phased(
        start + STEP * (ROUNDS as u64 / 2),
        start + STEP * (ROUNDS as u64 * 3 / 4),
    )
    .with_coverage(0.6, 0.004)
}

/// One honest observation stream per device: diurnal sinusoid plus
/// sub-quantum noise, deterministic per (seed, device).
fn honest_streams(seed: u64) -> Vec<(String, Vec<(SimTime, f64)>)> {
    let start = SimTime::from_secs(60);
    (0..DEVICES)
        .map(|d| {
            let device = format!("urn:swamp:device:fuzz-{d:04}");
            let mut rng = SimRng::seed_from(seed).split(&device);
            let base = 0.22 + 0.06 * rng.uniform_f64();
            let amp = 0.04 + 0.02 * rng.uniform_f64();
            let stream = (0..ROUNDS)
                .map(|r| {
                    let at = start + STEP * r as u64;
                    let phase = at.day_fraction() * std::f64::consts::TAU;
                    let noise = (rng.uniform_f64() - 0.5) * 0.004;
                    (at, base + amp * phase.sin() + noise)
                })
                .collect();
            (device, stream)
        })
        .collect()
}

/// Routes every stream through a `FaultPlan` link and returns the
/// delivery schedule sorted by arrival time: gaps (drops), duplicates
/// and reordering all come from the plan, exactly as the fog uplink
/// would inflict them. Each delivered copy keeps its *sampled*
/// timestamp — arrival order is what the faults scramble.
fn faulted_schedule(
    streams: &[(String, Vec<(SimTime, f64)>)],
    plan: &mut FaultPlan,
) -> Vec<(SimTime, String, SimTime, f64)> {
    let fog = NodeId::from("fog-0");
    let mut deliveries: Vec<(SimTime, String, SimTime, f64)> = Vec::new();
    for (device, stream) in streams {
        let src = NodeId::from(device.as_str());
        for &(at, value) in stream {
            match plan.sample(at, &src, &fog) {
                FaultOutcome::Deliver(delays) => {
                    for delay in delays {
                        deliveries.push((at + delay, device.clone(), at, value));
                    }
                }
                FaultOutcome::Dropped | FaultOutcome::Partitioned => {}
            }
        }
    }
    deliveries.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));
    deliveries
}

/// Flag-map size must always equal the `flagged` counter: one alert
/// per device, ever.
fn assert_no_double_alert(bank: &BehaviorBank, snap: &ObsSnapshot) {
    assert_eq!(
        snap.counter("security.baseline.flagged").unwrap_or(0),
        bank.flags().len() as u64,
        "flagged counter diverged from the flag map — a device alerted twice"
    );
}

#[test]
fn clean_streams_raise_at_most_a_stray_flag() {
    // Control arm: the false-flag bounds below are meaningful only if
    // the clean run is quiet.
    let mut bank = BehaviorBank::new(phased_config());
    for (device, stream) in &honest_streams(11) {
        for &(at, value) in stream {
            bank.ingest(at, device, value);
        }
    }
    assert!(
        bank.flags().len() <= 1,
        "clean honest run flagged {} of {DEVICES} devices",
        bank.flags().len()
    );
    let snap = bank.observe();
    assert_no_double_alert(&bank, &snap);
}

#[test]
fn faultplan_scrambled_streams_degrade_gracefully() {
    // Degraded-WAN sweeps at rising severity: loss + duplication +
    // reordering straight from the PR-2 fault injector. The detector
    // must stay calm — bounded honest false flags — and must never
    // double-alert no matter how mangled the arrival order is.
    for (severity, max_false_frac) in [(0.05, 0.10), (0.15, 0.15), (0.30, 0.25)] {
        let streams = honest_streams(23);
        let mut plan = FaultPlan::new(77);
        plan.set_default_faults(FaultSpec::degraded(severity))
            .expect("valid spec");
        let schedule = faulted_schedule(&streams, &mut plan);
        let offered = DEVICES * ROUNDS;
        assert!(
            schedule.len() != offered,
            "severity {severity}: the plan injected nothing"
        );

        let mut bank = BehaviorBank::new(phased_config());
        for (_arrival, device, sampled_at, value) in &schedule {
            bank.ingest(*sampled_at, device, *value);
        }
        let snap = bank.observe();
        assert_no_double_alert(&bank, &snap);
        // Duplicates and overtaken copies are skipped, not scored.
        let out_of_order = snap.counter("security.baseline.out_of_order").unwrap_or(0);
        assert!(
            out_of_order > 0,
            "severity {severity}: faults never produced a skipped arrival"
        );
        let false_frac = bank.flags().len() as f64 / DEVICES as f64;
        assert!(
            false_frac <= max_false_frac,
            "severity {severity}: honest false-flag fraction {false_frac:.2} \
             above the {max_false_frac} bound"
        );
    }
}

#[test]
fn verbatim_replay_changes_nothing() {
    // A deduped record that slips through twice must be absorbed: same
    // timestamp ⇒ out-of-order skip ⇒ no new training, scoring or
    // flags.
    let streams = honest_streams(31);
    let mut bank = BehaviorBank::new(phased_config());
    for (device, stream) in &streams {
        for &(at, value) in stream {
            bank.ingest(at, device, value);
        }
    }
    let flags_before = bank.flags().clone();
    let scored_before = bank.observe().counter("security.baseline.scored").unwrap();

    for (device, stream) in &streams {
        for &(at, value) in stream {
            bank.ingest(at, device, value);
        }
    }
    let snap = bank.observe();
    assert_eq!(bank.flags(), &flags_before, "replay altered the flag set");
    assert_eq!(
        snap.counter("security.baseline.scored").unwrap(),
        scored_before,
        "replayed records were scored"
    );
    assert_eq!(
        snap.counter("security.baseline.out_of_order").unwrap(),
        (DEVICES * ROUNDS) as u64,
        "every replayed record must be skipped"
    );
    assert_no_double_alert(&bank, &snap);
}

#[test]
fn tamper_ramp_is_still_caught_through_a_lossy_path() {
    // Graceful degradation, recall side: a post-calibration tamper
    // drift on 4 victims must survive a 10%-loss uplink. The ramp
    // mirrors the E16 overlay (0.012 VWC per round, capped).
    let mut streams = honest_streams(47);
    let detect_from = SimTime::from_secs(60) + STEP * (ROUNDS as u64 * 3 / 4);
    let victims: Vec<String> = streams.iter().take(4).map(|(d, _)| d.clone()).collect();
    for (_, stream) in streams.iter_mut().take(4) {
        let mut drift = 0.0;
        for (at, value) in stream.iter_mut() {
            if *at >= detect_from + STEP * 2 {
                drift = f64::min(drift + 0.012, 0.35);
                *value += drift;
            }
        }
    }

    let mut plan = FaultPlan::new(99);
    plan.set_default_faults(FaultSpec::lossy(0.10))
        .expect("valid spec");
    let schedule = faulted_schedule(&streams, &mut plan);

    let mut bank = BehaviorBank::new(phased_config());
    for (_arrival, device, sampled_at, value) in &schedule {
        bank.ingest(*sampled_at, device, *value);
    }
    let snap = bank.observe();
    assert_no_double_alert(&bank, &snap);
    let caught = victims
        .iter()
        .filter(|v| bank.flags().contains_key(v.as_str()))
        .count();
    assert!(
        caught >= 3,
        "only {caught}/4 tampered devices flagged through the lossy path"
    );
    let honest_false = bank.flags().keys().filter(|d| !victims.contains(d)).count();
    assert!(
        honest_false as f64 / DEVICES as f64 <= 0.10,
        "{honest_false} honest devices flagged alongside the tamper victims"
    );
}

// Proptest twin (registry-dependent; see the workspace Cargo.toml note
// on restoring the proptest dependency).
#[cfg(feature = "proptest-tests")]
mod proptest_twin {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_schedules_never_panic_or_double_alert(
            seed in 0u64..1_000_000,
            severity in 0.0f64..0.5,
        ) {
            let streams = honest_streams(seed);
            let mut plan = FaultPlan::new(seed ^ 0xfa57);
            plan.set_default_faults(FaultSpec::degraded(severity)).unwrap();
            let schedule = faulted_schedule(&streams, &mut plan);
            let mut bank = BehaviorBank::new(phased_config());
            for (_arrival, device, sampled_at, value) in &schedule {
                bank.ingest(*sampled_at, device, *value);
            }
            let snap = bank.observe();
            prop_assert_eq!(
                snap.counter("security.baseline.flagged").unwrap_or(0),
                bank.flags().len() as u64
            );
        }
    }
}
