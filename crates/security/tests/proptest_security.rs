//! Property-based tests for the security layer.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_security::anonymize::{k_anonymize, Pseudonymizer, YieldRecord};
use swamp_security::behavior::MarkovBaseline;
use swamp_security::identity::IdentityProvider;
use swamp_security::ledger::{Ledger, LifecycleEvent, LifecycleKind};
use swamp_sim::{SimDuration, SimTime};

fn arb_lifecycle_kind() -> impl Strategy<Value = LifecycleKind> {
    prop_oneof![
        "[a-z0-9]{1,6}".prop_map(|hw_rev| LifecycleKind::Manufactured { hw_rev }),
        "[a-z:]{1,12}".prop_map(|owner| LifecycleKind::Provisioned { owner }),
        "[a-z:]{1,12}".prop_map(|new_owner| LifecycleKind::Transferred { new_owner }),
        "[0-9.]{1,8}".prop_map(|version| LifecycleKind::FirmwareUpdated { version }),
        (0u32..100).prop_map(|epoch| LifecycleKind::KeyRotated { epoch }),
        "[a-z ]{1,16}".prop_map(|reason| LifecycleKind::Revoked { reason }),
        Just(LifecycleKind::Decommissioned),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any ledger built through the API verifies; tampering with any event
    /// breaks verification.
    #[test]
    fn ledger_verifies_and_tamper_is_detected(
        blocks in prop::collection::vec(
            prop::collection::vec(
                ("[a-z0-9-]{1,10}", arb_lifecycle_kind()),
                1..5,
            ),
            1..6,
        ),
    ) {
        let mut ledger = Ledger::new();
        ledger.register_authority("auth", b"key");
        for (i, block) in blocks.iter().enumerate() {
            let events = block
                .iter()
                .map(|(device, kind)| LifecycleEvent {
                    device_id: device.clone(),
                    kind: kind.clone(),
                    at: SimTime::from_secs(i as u64),
                })
                .collect();
            ledger.append("auth", SimTime::from_secs(i as u64), events).unwrap();
        }
        prop_assert!(ledger.verify().is_ok());

        // Tamper with the first block's first event.
        let mut tampered = Ledger::new();
        tampered.register_authority("auth", b"key");
        for (i, block) in blocks.iter().enumerate() {
            let events = block
                .iter()
                .map(|(device, kind)| LifecycleEvent {
                    device_id: device.clone(),
                    kind: kind.clone(),
                    at: SimTime::from_secs(i as u64),
                })
                .collect();
            tampered.append("auth", SimTime::from_secs(i as u64), events).unwrap();
        }
        tampered.tamper_event_for_tests(1, "mallory-device-xyz");
        // Either the device differs from every original (tamper real) and
        // verification fails, or it collided with the original name.
        if blocks[0][0].0 != "mallory-device-xyz" {
            prop_assert!(tampered.verify().is_err());
        }
    }

    /// k-anonymity always delivers min class size ≥ k when enough records
    /// exist, and every original value stays inside its published interval.
    #[test]
    fn k_anonymity_guarantee(
        values in prop::collection::vec((1.0f64..500.0, 0.5f64..12.0), 5..60),
        k in 1usize..8,
    ) {
        prop_assume!(values.len() >= k);
        let records: Vec<YieldRecord> = values
            .iter()
            .enumerate()
            .map(|(i, (area, y))| YieldRecord {
                farm_id: format!("farm-{i}"),
                area_ha: *area,
                yield_t_ha: *y,
            })
            .collect();
        let report = k_anonymize(&records, k, &Pseudonymizer::new(b"k")).unwrap();
        prop_assert!(report.min_class_size >= k);
        prop_assert!(report.reidentification_risk <= 1.0 / k as f64 + 1e-12);
        prop_assert!((0.0..=1.0).contains(&report.information_loss));
        for (orig, anon) in records.iter().zip(&report.records) {
            prop_assert!(anon.area_range.0 <= orig.area_ha + 1e-9);
            prop_assert!(orig.area_ha <= anon.area_range.1 + 1e-9);
            prop_assert!(anon.yield_range.0 <= orig.yield_t_ha + 1e-9);
            prop_assert!(orig.yield_t_ha <= anon.yield_range.1 + 1e-9);
            prop_assert!(!anon.pseudonym.contains("farm-"));
        }
    }

    /// Markov scores are always finite, and training on a sequence never
    /// lowers that sequence's own score.
    #[test]
    fn markov_scores_finite_and_training_helps(
        seq in prop::collection::vec("[a-e]", 2..12),
        noise in prop::collection::vec("[a-e]", 2..12),
    ) {
        let mut b = MarkovBaseline::new(0.5);
        b.train(&noise);
        let before = b.score_window(&seq);
        prop_assert!(before.is_finite());
        for _ in 0..5 {
            b.train(&seq);
        }
        let after = b.score_window(&seq);
        prop_assert!(after.is_finite());
        prop_assert!(after >= before - 1e-9, "training on seq lowered its score");
    }

    /// Issued tokens always validate until expiry and never after; forged
    /// token strings never validate.
    #[test]
    fn token_lifecycle_properties(
        ttl_secs in 60u64..100_000,
        check_offset in 0u64..200_000,
        forged in "[a-f0-9.]{8,64}",
    ) {
        let mut idm = IdentityProvider::new(b"k", SimDuration::from_secs(ttl_secs));
        idm.register_client("c", "s", &[]);
        let token = idm
            .client_credentials_grant(SimTime::ZERO, "c", "s", &[])
            .unwrap();
        let at = SimTime::from_secs(check_offset);
        let result = idm.validate(at, &token);
        if check_offset < ttl_secs {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
        let forged_token =
            swamp_security::identity::Token::from_raw_for_tests(&forged);
        prop_assert!(idm.validate(SimTime::ZERO, &forged_token).is_err());
    }
}
