//! Partial observability: the crop-profile problem.
//!
//! The paper: "Regardless of the data acquisition rate, or the number of
//! installed sensors, the system will probably have a partial view of the
//! environment. As a consequence, applications may create a partial profile
//! of the crop … which does not necessarily correspond to that crop …
//! security mechanisms should take this into account when producing their
//! results."
//!
//! [`CropProfiler`] estimates per-zone field state from however many sensors
//! exist, quantifies its own uncertainty, and exposes
//! [`CropProfiler::detection_margin`] — the extra slack a detector must add
//! to its thresholds at a given sensor density so that profile error is not
//! mistaken for an attack (experiment E6).

/// The platform's reconstructed view of a field of `zones` management zones.
#[derive(Clone, Debug)]
pub struct CropProfile {
    /// Estimated value per zone (e.g. soil moisture), `None` where no
    /// information exists at all.
    pub estimates: Vec<Option<f64>>,
    /// Whether each zone was directly observed (vs interpolated).
    pub observed: Vec<bool>,
}

impl CropProfile {
    /// Fraction of zones with a direct observation.
    pub fn coverage(&self) -> f64 {
        if self.observed.is_empty() {
            return 0.0;
        }
        self.observed.iter().filter(|&&o| o).count() as f64 / self.observed.len() as f64
    }

    /// Mean absolute error against the true per-zone values (for
    /// experiments that hold ground truth).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn mean_abs_error(&self, truth: &[f64]) -> f64 {
        assert_eq!(truth.len(), self.estimates.len(), "zone count mismatch");
        let mut sum = 0.0;
        let mut n = 0;
        for (est, t) in self.estimates.iter().zip(truth) {
            if let Some(e) = est {
                sum += (e - t).abs();
                n += 1;
            }
        }
        if n == 0 {
            f64::INFINITY
        } else {
            sum / n as f64
        }
    }
}

/// Builds crop profiles from sparse per-zone sensor readings.
#[derive(Clone, Debug)]
pub struct CropProfiler {
    zones: usize,
}

impl CropProfiler {
    /// Creates a profiler for a field of `zones` zones.
    ///
    /// # Panics
    /// Panics if `zones == 0`.
    pub fn new(zones: usize) -> Self {
        assert!(zones > 0, "need at least one zone");
        CropProfiler { zones }
    }

    /// Number of zones.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Builds a profile from `(zone, value)` readings. Unobserved zones are
    /// filled by nearest-observed-neighbor interpolation (1-D zone line,
    /// ties averaged); with no readings at all, estimates are `None`.
    pub fn build(&self, readings: &[(usize, f64)]) -> CropProfile {
        let mut sums = vec![0.0; self.zones];
        let mut counts = vec![0usize; self.zones];
        for &(zone, value) in readings {
            if zone < self.zones {
                sums[zone] += value;
                counts[zone] += 1;
            }
        }
        let observed: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
        let direct: Vec<Option<f64>> = (0..self.zones)
            .map(|z| {
                if counts[z] > 0 {
                    Some(sums[z] / counts[z] as f64)
                } else {
                    None
                }
            })
            .collect();

        let estimates: Vec<Option<f64>> = (0..self.zones)
            .map(|z| {
                if let Some(v) = direct[z] {
                    return Some(v);
                }
                // Nearest observed neighbors left and right.
                // Carry the observed values with the indices so nothing
                // needs a second (panicking) lookup.
                let left = (0..z).rev().find_map(|i| direct[i].map(|v| (i, v)));
                let right = (z + 1..self.zones).find_map(|i| direct[i].map(|v| (i, v)));
                match (left, right) {
                    (Some((l, vl)), Some((r, vr))) => {
                        let dl = (z - l) as f64;
                        let dr = (r - z) as f64;
                        // Inverse-distance weighting.
                        Some((vl / dl + vr / dr) / (1.0 / dl + 1.0 / dr))
                    }
                    (Some((_, v)), None) | (None, Some((_, v))) => Some(v),
                    (None, None) => None,
                }
            })
            .collect();

        CropProfile {
            estimates,
            observed,
        }
    }

    /// The detection-threshold margin a security mechanism should add when
    /// only `coverage` (0–1] of zones are sensed and the field's spatial
    /// variability has standard deviation `field_sd`.
    ///
    /// With full coverage the margin is ~0; as coverage drops, interpolated
    /// zones can legitimately differ from reality by O(field variability),
    /// and an alarm threshold tighter than that misfires on honest data.
    pub fn detection_margin(coverage: f64, field_sd: f64) -> f64 {
        let c = coverage.clamp(0.0, 1.0);
        field_sd * (1.0 - c).sqrt() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::SimRng;

    /// A synthetic spatially correlated field.
    fn field(zones: usize, rng: &mut SimRng) -> Vec<f64> {
        let mut v = Vec::with_capacity(zones);
        let mut x = 0.25;
        for _ in 0..zones {
            x += rng.normal_with(0.0, 0.01);
            x = x.clamp(0.05, 0.45);
            v.push(x);
        }
        v
    }

    #[test]
    fn full_coverage_is_exact_up_to_noise() {
        let mut rng = SimRng::seed_from(1);
        let truth = field(16, &mut rng);
        let profiler = CropProfiler::new(16);
        let readings: Vec<(usize, f64)> = truth.iter().enumerate().map(|(z, &v)| (z, v)).collect();
        let profile = profiler.build(&readings);
        assert_eq!(profile.coverage(), 1.0);
        assert!(profile.mean_abs_error(&truth) < 1e-12);
    }

    #[test]
    fn error_grows_as_coverage_shrinks() {
        let mut rng = SimRng::seed_from(2);
        let zones = 32;
        let profiler = CropProfiler::new(zones);
        let mut last_err = 0.0;
        let mut errs = Vec::new();
        for density in [32usize, 16, 8, 4, 2] {
            // Average over many random fields for stability.
            let mut total = 0.0;
            for _ in 0..50 {
                let truth = field(zones, &mut rng);
                let step = zones / density;
                let readings: Vec<(usize, f64)> = (0..density)
                    .map(|i| {
                        let z = i * step;
                        (z, truth[z])
                    })
                    .collect();
                total += profiler.build(&readings).mean_abs_error(&truth);
            }
            errs.push(total / 50.0);
        }
        for (i, &e) in errs.iter().enumerate() {
            assert!(
                e >= last_err - 1e-4,
                "error should not shrink with coverage: {errs:?} at {i}"
            );
            last_err = e;
        }
        assert!(errs[0] < 1e-9, "full coverage is exact");
        assert!(errs[4] > errs[0], "sparse must be worse than dense");
    }

    #[test]
    fn interpolation_between_neighbors() {
        let profiler = CropProfiler::new(5);
        // Observed at zones 0 (0.2) and 4 (0.4); zone 2 is equidistant.
        let profile = profiler.build(&[(0, 0.2), (4, 0.4)]);
        let z2 = profile.estimates[2].unwrap();
        assert!((z2 - 0.3).abs() < 1e-9, "midpoint interpolation, got {z2}");
        // Nearer to zone 0 leans toward 0.2.
        let z1 = profile.estimates[1].unwrap();
        assert!(z1 < z2);
        assert_eq!(profile.coverage(), 0.4);
        assert!(profile.observed[0] && !profile.observed[1]);
    }

    #[test]
    fn edge_extrapolation_uses_nearest() {
        let profiler = CropProfiler::new(4);
        let profile = profiler.build(&[(2, 0.3)]);
        assert_eq!(profile.estimates[0], Some(0.3));
        assert_eq!(profile.estimates[3], Some(0.3));
    }

    #[test]
    fn duplicate_readings_averaged() {
        let profiler = CropProfiler::new(2);
        let profile = profiler.build(&[(0, 0.2), (0, 0.4), (1, 0.3)]);
        assert!((profile.estimates[0].unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn no_readings_no_estimates() {
        let profiler = CropProfiler::new(3);
        let profile = profiler.build(&[]);
        assert!(profile.estimates.iter().all(Option::is_none));
        assert_eq!(profile.coverage(), 0.0);
        assert_eq!(profile.mean_abs_error(&[0.1, 0.2, 0.3]), f64::INFINITY);
    }

    #[test]
    fn out_of_range_zone_ignored() {
        let profiler = CropProfiler::new(2);
        let profile = profiler.build(&[(7, 0.9), (0, 0.2)]);
        assert_eq!(profile.estimates[0], Some(0.2));
    }

    #[test]
    fn margin_shrinks_with_coverage() {
        let m_full = CropProfiler::detection_margin(1.0, 0.05);
        let m_half = CropProfiler::detection_margin(0.5, 0.05);
        let m_sparse = CropProfiler::detection_margin(0.1, 0.05);
        assert!(m_full < 1e-9);
        assert!(m_half > m_full);
        assert!(m_sparse > m_half);
        // Margin scales with field variability.
        assert!(
            CropProfiler::detection_margin(0.5, 0.10) > CropProfiler::detection_margin(0.5, 0.05)
        );
    }

    #[test]
    #[should_panic(expected = "zone")]
    fn zero_zones_rejected() {
        let _ = CropProfiler::new(0);
    }
}
