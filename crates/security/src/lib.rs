//! # swamp-security — the security layer of the SWAMP platform
//!
//! Implements every mechanism §III of the paper calls for, and every attack
//! it warns about, so the two can be run against each other:
//!
//! | Paper requirement | Module |
//! |---|---|
//! | OAuth 2.0 authentication via FIWARE security GEs | [`identity`] |
//! | "each owner controls their data" access control | [`access`] |
//! | Data anonymization for governance | [`anonymize`] |
//! | Blockchain device lifecycle + smart contracts | [`ledger`] |
//! | DoS, tampering, Sybil, eavesdropping, replay, rogue nodes | [`attacks`] |
//! | Anomaly detection / avoid fake data | [`detect`], [`pipeline`] |
//! | "expected sequence of events" behavioral baseline | [`behavior`] (windowed), [`baseline`] (streaming) |
//! | Partial crop profiles and detector margins | [`profile`] |
//!
//! Confidentiality primitives (the "state of the practice cryptography")
//! live in `swamp-crypto`; the SDN centralized view lives in
//! `swamp-net::sdn`; fog-based availability lives in `swamp-fog`.
//!
//! ## Example: token → policy decision
//!
//! ```
//! use swamp_security::access::{Action, Pdp, Resource};
//! use swamp_security::identity::IdentityProvider;
//! use swamp_sim::{SimDuration, SimTime};
//!
//! let mut idm = IdentityProvider::new(b"signing-key", SimDuration::from_hours(1));
//! idm.register_user("maria", "pw", &["owner:guaspari"]);
//! let (token, _refresh) = idm.password_grant(SimTime::ZERO, "maria", "pw").unwrap();
//! let info = idm.validate(SimTime::ZERO, &token).unwrap();
//!
//! let mut pdp = Pdp::new();
//! let probe = Resource::new("urn:swamp:guaspari:probe:1", "owner:guaspari");
//! assert!(pdp.decide(&info, &probe, Action::Read).is_permit());
//! ```

pub mod access;
pub mod anonymize;
pub mod attacks;
pub mod baseline;
pub mod behavior;
pub mod detect;
pub mod identity;
pub mod ledger;
pub mod pipeline;
pub mod profile;

pub use access::{Action, Decision, Pdp, Policy, Resource};
pub use baseline::{BaselineConfig, BaselineFlag, BaselineVerdict, BehaviorBank, FlagKind};
pub use behavior::{BehaviorDetector, MarkovBaseline};
pub use detect::{CusumDetector, RangeValidator, RateGuard, SeqMonitor, Verdict, ZScoreDetector};
pub use identity::{AuthError, IdentityProvider, Token, TokenInfo};
pub use ledger::{DeviceContract, Ledger, LifecycleEvent, LifecycleKind};
pub use pipeline::{Alert, DetectorBank, Recommendation};
pub use profile::{CropProfile, CropProfiler};
