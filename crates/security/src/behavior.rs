//! Behavioral event-sequence baselining — the paper's "most relevant
//! challenge": "to understand and correlate the expected sequence of events
//! and behavior of agriculture applications … a baseline must be created to
//! promote security effectiveness."
//!
//! The application's life is rendered as a stream of symbolic events
//! (`cmd:open_valve`, `flow:start`, `soil:rising`, …). A first-order Markov
//! model is trained on known-good operation; at detection time, windows of
//! events are scored by average log-likelihood under the baseline. An
//! attacker driving an actuator without the usual causal prelude (flow
//! without a command, irrigation at an unusual phase) produces transitions
//! the baseline has never seen, and the window's likelihood collapses.

use std::collections::BTreeMap;

/// A symbolic application event (interned as a string).
pub type EventSymbol = String;

/// A first-order Markov baseline over event symbols with Laplace smoothing.
///
/// # Example
/// ```
/// use swamp_security::behavior::MarkovBaseline;
/// let mut b = MarkovBaseline::new(1.0);
/// b.train(&["cmd", "open", "flow", "close"].map(String::from));
/// b.train(&["cmd", "open", "flow", "close"].map(String::from));
/// let normal = b.score_window(&["cmd", "open"].map(String::from));
/// let weird = b.score_window(&["flow", "cmd"].map(String::from));
/// assert!(normal > weird);
/// ```
#[derive(Clone, Debug)]
pub struct MarkovBaseline {
    /// transition counts: from → (to → count)
    transitions: BTreeMap<EventSymbol, BTreeMap<EventSymbol, u64>>,
    /// Vocabulary of all symbols ever seen in training.
    vocab: std::collections::BTreeSet<EventSymbol>,
    /// Laplace smoothing pseudo-count.
    alpha: f64,
    trained_transitions: u64,
}

impl MarkovBaseline {
    /// Creates an empty baseline with smoothing pseudo-count `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha <= 0` (zero smoothing makes unseen transitions
    /// −∞ and NaN-prone).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        MarkovBaseline {
            transitions: BTreeMap::new(),
            vocab: std::collections::BTreeSet::new(),
            alpha,
            trained_transitions: 0,
        }
    }

    /// The window-start anchor symbol. Training counts `START → first`
    /// transitions, so a window that *begins* mid-protocol (actuation with
    /// no schedule/auth prelude) is penalized even when its internal
    /// transitions are individually normal.
    pub const START: &'static str = "^start";
    /// The window-end anchor symbol.
    pub const END: &'static str = "$end";

    /// Trains on one known-good event sequence (anchored at both ends).
    pub fn train(&mut self, sequence: &[EventSymbol]) {
        if sequence.is_empty() {
            return;
        }
        for s in sequence {
            self.vocab.insert(s.clone());
        }
        let mut push = |from: &str, to: &str| {
            *self
                .transitions
                .entry(from.to_owned())
                .or_default()
                .entry(to.to_owned())
                .or_insert(0) += 1;
            self.trained_transitions += 1;
        };
        push(Self::START, &sequence[0]);
        for w in sequence.windows(2) {
            push(&w[0], &w[1]);
        }
        if let Some(last) = sequence.last() {
            push(last, Self::END);
        }
    }

    /// Transitions observed during training.
    pub fn trained_transitions(&self) -> u64 {
        self.trained_transitions
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Log-probability of the transition `from → to` under the smoothed
    /// baseline. Unknown symbols are treated as out-of-vocabulary mass.
    pub fn transition_log_prob(&self, from: &str, to: &str) -> f64 {
        let v = (self.vocab.len() + 1) as f64; // +1 for OOV
        let row = self.transitions.get(from);
        let row_total: u64 = row.map(|r| r.values().sum()).unwrap_or(0);
        let count = row.and_then(|r| r.get(to)).copied().unwrap_or(0);
        ((count as f64 + self.alpha) / (row_total as f64 + self.alpha * v)).ln()
    }

    /// Scores a window of events: mean transition log-likelihood including
    /// the `START → first` and `last → END` anchor transitions. Higher is
    /// more normal. Empty windows score 0 (no evidence).
    pub fn score_window(&self, window: &[EventSymbol]) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        let mut sum = self.transition_log_prob(Self::START, &window[0]);
        for w in window.windows(2) {
            sum += self.transition_log_prob(&w[0], &w[1]);
        }
        if let Some(last) = window.last() {
            sum += self.transition_log_prob(last, Self::END);
        }
        sum / (window.len() + 1) as f64
    }
}

/// A trained baseline plus a decision threshold.
#[derive(Clone, Debug)]
pub struct BehaviorDetector {
    baseline: MarkovBaseline,
    threshold: f64,
}

impl BehaviorDetector {
    /// Calibrates the threshold from held-out normal windows: flags windows
    /// scoring below `(min held-out score) − margin`.
    ///
    /// # Panics
    /// Panics if `holdout` is empty.
    pub fn calibrate(baseline: MarkovBaseline, holdout: &[Vec<EventSymbol>], margin: f64) -> Self {
        assert!(!holdout.is_empty(), "need held-out windows to calibrate");
        let min_normal = holdout
            .iter()
            .map(|w| baseline.score_window(w))
            .fold(f64::INFINITY, f64::min);
        BehaviorDetector {
            baseline,
            threshold: min_normal - margin,
        }
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether a window is anomalous (scores below threshold).
    pub fn is_anomalous(&self, window: &[EventSymbol]) -> bool {
        self.baseline.score_window(window) < self.threshold
    }

    /// The window's raw score.
    pub fn score(&self, window: &[EventSymbol]) -> f64 {
        self.baseline.score_window(window)
    }
}

/// Builds the canonical irrigation-cycle event sequence used by pilots to
/// train baselines: the causal chain of one healthy irrigation event.
pub fn normal_irrigation_cycle() -> Vec<EventSymbol> {
    [
        "schedule:due",
        "auth:granted",
        "cmd:pump_on",
        "flow:start",
        "cmd:valve_open",
        "soil:rising",
        "soil:target",
        "cmd:valve_close",
        "flow:stop",
        "cmd:pump_off",
        "report:complete",
    ]
    .map(String::from)
    .to_vec()
}

/// An attack sequence: actuation without schedule/auth prelude (an attacker
/// who seized the actuator, per the paper's takeover scenario).
pub fn actuator_takeover_sequence() -> Vec<EventSymbol> {
    [
        "cmd:valve_open",
        "flow:start",
        "cmd:valve_open",
        "flow:start",
        "cmd:pump_on",
    ]
    .map(String::from)
    .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::SimRng;

    fn symbols(v: &[&str]) -> Vec<EventSymbol> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    /// Generates a noisy-but-normal cycle (occasional retries, skipped
    /// optional events) as real operation would produce.
    fn noisy_cycle(rng: &mut SimRng) -> Vec<EventSymbol> {
        let mut seq = vec!["schedule:due".to_owned(), "auth:granted".to_owned()];
        if rng.chance(0.2) {
            seq.push("auth:granted".to_owned()); // token refresh retry
        }
        seq.extend(symbols(&["cmd:pump_on", "flow:start", "cmd:valve_open"]));
        for _ in 0..rng.int_range(1, 4) {
            seq.push("soil:rising".to_owned());
        }
        seq.extend(symbols(&[
            "soil:target",
            "cmd:valve_close",
            "flow:stop",
            "cmd:pump_off",
            "report:complete",
        ]));
        seq
    }

    fn trained_detector(seed: u64) -> BehaviorDetector {
        let mut rng = SimRng::seed_from(seed);
        let mut baseline = MarkovBaseline::new(0.1);
        for _ in 0..200 {
            let c = noisy_cycle(&mut rng);
            baseline.train(&c);
        }
        let holdout: Vec<Vec<EventSymbol>> = (0..50).map(|_| noisy_cycle(&mut rng)).collect();
        BehaviorDetector::calibrate(baseline, &holdout, 0.5)
    }

    #[test]
    fn normal_windows_pass() {
        let det = trained_detector(1);
        let mut rng = SimRng::seed_from(99);
        let mut false_alarms = 0;
        for _ in 0..100 {
            if det.is_anomalous(&noisy_cycle(&mut rng)) {
                false_alarms += 1;
            }
        }
        assert!(false_alarms <= 3, "false alarms {false_alarms}");
    }

    #[test]
    fn takeover_sequence_flagged() {
        let det = trained_detector(2);
        assert!(det.is_anomalous(&actuator_takeover_sequence()));
    }

    #[test]
    fn missing_auth_prelude_flagged() {
        let det = trained_detector(3);
        // Pump starts without schedule/auth — the paper's seized actuator.
        let seq = symbols(&["cmd:pump_on", "flow:start", "cmd:valve_open", "soil:rising"]);
        let normal = det.score(&normal_irrigation_cycle());
        let attack = det.score(&seq);
        assert!(attack < normal, "attack {attack} vs normal {normal}");
        assert!(det.is_anomalous(&seq));
    }

    #[test]
    fn reversed_causality_scores_lower() {
        let b = {
            let mut b = MarkovBaseline::new(0.5);
            for _ in 0..50 {
                b.train(&normal_irrigation_cycle());
            }
            b
        };
        let forward = b.score_window(&normal_irrigation_cycle());
        let mut reversed = normal_irrigation_cycle();
        reversed.reverse();
        assert!(b.score_window(&reversed) < forward);
    }

    #[test]
    fn unseen_symbols_penalized() {
        let mut b = MarkovBaseline::new(0.5);
        b.train(&normal_irrigation_cycle());
        let known = b.transition_log_prob("cmd:pump_on", "flow:start");
        let unknown = b.transition_log_prob("cmd:pump_on", "exfiltrate:data");
        assert!(known > unknown);
    }

    #[test]
    fn empty_window_scores_zero() {
        let b = MarkovBaseline::new(1.0);
        assert_eq!(b.score_window(&[]), 0.0);
        // A lone known-start symbol scores better than a lone mid-protocol one.
        let mut trained = MarkovBaseline::new(0.5);
        trained.train(&normal_irrigation_cycle());
        let start = trained.score_window(&symbols(&["schedule:due"]));
        let mid = trained.score_window(&symbols(&["cmd:valve_open"]));
        assert!(start > mid);
    }

    #[test]
    fn training_counts() {
        let mut b = MarkovBaseline::new(1.0);
        b.train(&normal_irrigation_cycle());
        // 10 internal transitions plus the two anchor transitions.
        assert_eq!(b.trained_transitions(), 12);
        assert_eq!(b.vocab_size(), 11);
    }

    #[test]
    fn smoothing_keeps_probs_finite() {
        let b = MarkovBaseline::new(1.0);
        let lp = b.transition_log_prob("never", "seen");
        assert!(lp.is_finite());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = MarkovBaseline::new(0.0);
    }

    #[test]
    #[should_panic(expected = "held-out")]
    fn empty_holdout_rejected() {
        let _ = BehaviorDetector::calibrate(MarkovBaseline::new(1.0), &[], 0.1);
    }
}
