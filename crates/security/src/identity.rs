//! OAuth 2.0-style identity management.
//!
//! The paper: "The access to the platform must be allowed only for
//! identified and authorized users, using FIWARE security generic enablers
//! and the OAuth 2.0 protocol." This module is the Keyrock-analogue:
//! registered clients and users, client-credentials / password / refresh
//! grants, HMAC-signed bearer tokens with scopes and expiry, and
//! revocation. Token verification is constant-time.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use swamp_crypto::hmac::{constant_time_eq, hmac_sha256};
use swamp_crypto::sha256::{to_hex, Sha256};
use swamp_sim::{SimDuration, SimTime};

/// A scope string (e.g. `"context:read"`, `"actuator:command"`).
pub type Scope = String;

/// An issued bearer token (opaque to clients).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(String);

impl Token {
    /// The wire form of the token.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Constructs a token from a raw string — only for tests exercising the
    /// forged/invalid-token paths.
    #[doc(hidden)]
    pub fn from_raw_for_tests(raw: &str) -> Token {
        Token(raw.to_owned())
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print full tokens into logs.
        write!(f, "Token({}…)", &self.0[..8.min(self.0.len())])
    }
}

/// Errors from the identity provider.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// Unknown client id or wrong secret.
    InvalidClient,
    /// Unknown user or wrong password.
    InvalidCredentials,
    /// The client asked for a scope it is not registered for.
    ScopeNotAllowed(Scope),
    /// Token malformed, forged, or of unknown format.
    InvalidToken,
    /// Token expired at the contained time.
    Expired,
    /// Token was revoked.
    Revoked,
    /// Refresh token unknown or already rotated.
    InvalidRefreshToken,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::InvalidClient => f.write_str("invalid client credentials"),
            AuthError::InvalidCredentials => f.write_str("invalid user credentials"),
            AuthError::ScopeNotAllowed(s) => write!(f, "scope {s:?} not allowed"),
            AuthError::InvalidToken => f.write_str("invalid token"),
            AuthError::Expired => f.write_str("token expired"),
            AuthError::Revoked => f.write_str("token revoked"),
            AuthError::InvalidRefreshToken => f.write_str("invalid refresh token"),
        }
    }
}
impl std::error::Error for AuthError {}

/// Who a validated token belongs to and what it may do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenInfo {
    /// Subject: `user:<name>` or `client:<id>`.
    pub subject: String,
    /// Granted scopes.
    pub scopes: BTreeSet<Scope>,
    /// Expiry instant.
    pub expires_at: SimTime,
}

impl TokenInfo {
    /// Whether the token carries a scope.
    pub fn has_scope(&self, scope: &str) -> bool {
        self.scopes.contains(scope)
    }
}

#[derive(Clone, Debug)]
struct ClientRecord {
    secret_hash: [u8; 32],
    allowed_scopes: BTreeSet<Scope>,
}

#[derive(Clone, Debug)]
struct UserRecord {
    password_hash: [u8; 32],
    roles: BTreeSet<String>,
}

#[derive(Clone, Debug)]
struct IssuedToken {
    info: TokenInfo,
    revoked: bool,
}

/// The identity provider (FIWARE Keyrock analogue).
///
/// # Example
/// ```
/// use swamp_security::identity::IdentityProvider;
/// use swamp_sim::{SimDuration, SimTime};
///
/// let mut idm = IdentityProvider::new(b"idm-signing-key", SimDuration::from_hours(1));
/// idm.register_client("scheduler", "s3cret", &["context:read", "actuator:command"]);
/// let token = idm
///     .client_credentials_grant(SimTime::ZERO, "scheduler", "s3cret",
///                               &["actuator:command"])
///     .unwrap();
/// let info = idm.validate(SimTime::ZERO, &token).unwrap();
/// assert!(info.has_scope("actuator:command"));
/// ```
pub struct IdentityProvider {
    signing_key: Vec<u8>,
    token_ttl: SimDuration,
    clients: BTreeMap<String, ClientRecord>,
    users: BTreeMap<String, UserRecord>,
    issued: BTreeMap<String, IssuedToken>,
    refresh: BTreeMap<String, (String, BTreeSet<Scope>)>,
    counter: u64,
}

impl fmt::Debug for IdentityProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdentityProvider")
            .field("clients", &self.clients.len())
            .field("users", &self.users.len())
            .field("issued", &self.issued.len())
            .finish()
    }
}

fn hash_secret(secret: &str) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"swamp-idm-secret-v1:");
    h.update(secret.as_bytes());
    h.finalize()
}

impl IdentityProvider {
    /// Creates a provider with a token signing key and a token lifetime.
    pub fn new(signing_key: &[u8], token_ttl: SimDuration) -> Self {
        IdentityProvider {
            signing_key: signing_key.to_vec(),
            token_ttl,
            clients: BTreeMap::new(),
            users: BTreeMap::new(),
            issued: BTreeMap::new(),
            refresh: BTreeMap::new(),
            counter: 0,
        }
    }

    /// Registers an OAuth client with its allowed scopes.
    pub fn register_client(&mut self, id: &str, secret: &str, scopes: &[&str]) {
        self.clients.insert(
            id.to_owned(),
            ClientRecord {
                secret_hash: hash_secret(secret),
                allowed_scopes: scopes.iter().map(|s| (*s).to_owned()).collect(),
            },
        );
    }

    /// Registers a user with roles (roles become `role:<r>` scopes).
    pub fn register_user(&mut self, username: &str, password: &str, roles: &[&str]) {
        self.users.insert(
            username.to_owned(),
            UserRecord {
                password_hash: hash_secret(password),
                roles: roles.iter().map(|s| (*s).to_owned()).collect(),
            },
        );
    }

    fn mint(&mut self, subject: String, scopes: BTreeSet<Scope>, now: SimTime) -> Token {
        self.counter += 1;
        let body = format!("{}|{}|{}", subject, self.counter, now.as_millis());
        let tag = hmac_sha256(&self.signing_key, body.as_bytes());
        let token_str = format!(
            "{}.{}",
            to_hex(&Sha256::digest(body.as_bytes())),
            to_hex(&tag[..16])
        );
        self.issued.insert(
            token_str.clone(),
            IssuedToken {
                info: TokenInfo {
                    subject,
                    scopes,
                    expires_at: now + self.token_ttl,
                },
                revoked: false,
            },
        );
        Token(token_str)
    }

    /// OAuth client-credentials grant: machine-to-machine tokens.
    ///
    /// # Errors
    /// [`AuthError::InvalidClient`] on bad credentials,
    /// [`AuthError::ScopeNotAllowed`] if a requested scope is not registered.
    pub fn client_credentials_grant(
        &mut self,
        now: SimTime,
        client_id: &str,
        client_secret: &str,
        scopes: &[&str],
    ) -> Result<Token, AuthError> {
        let client = self
            .clients
            .get(client_id)
            .ok_or(AuthError::InvalidClient)?;
        if !constant_time_eq(&client.secret_hash, &hash_secret(client_secret)) {
            return Err(AuthError::InvalidClient);
        }
        let mut granted = BTreeSet::new();
        for s in scopes {
            if !client.allowed_scopes.contains(*s) {
                return Err(AuthError::ScopeNotAllowed((*s).to_owned()));
            }
            granted.insert((*s).to_owned());
        }
        Ok(self.mint(format!("client:{client_id}"), granted, now))
    }

    /// OAuth resource-owner-password grant (with refresh token).
    ///
    /// The granted scopes are the user's roles as `role:<r>` scopes.
    ///
    /// # Errors
    /// [`AuthError::InvalidCredentials`] on bad username/password.
    pub fn password_grant(
        &mut self,
        now: SimTime,
        username: &str,
        password: &str,
    ) -> Result<(Token, Token), AuthError> {
        let user = self
            .users
            .get(username)
            .ok_or(AuthError::InvalidCredentials)?;
        if !constant_time_eq(&user.password_hash, &hash_secret(password)) {
            return Err(AuthError::InvalidCredentials);
        }
        let scopes: BTreeSet<Scope> = user.roles.iter().map(|r| format!("role:{r}")).collect();
        let subject = format!("user:{username}");
        let access = self.mint(subject.clone(), scopes.clone(), now);
        self.counter += 1;
        let refresh_str = to_hex(&hmac_sha256(
            &self.signing_key,
            format!("refresh|{subject}|{}", self.counter).as_bytes(),
        ));
        self.refresh.insert(refresh_str.clone(), (subject, scopes));
        Ok((access, Token(refresh_str)))
    }

    /// Refresh grant: exchanges a refresh token for a new access token.
    /// The refresh token is rotated (single use).
    ///
    /// # Errors
    /// [`AuthError::InvalidRefreshToken`] if unknown or already used.
    pub fn refresh_grant(
        &mut self,
        now: SimTime,
        refresh_token: &Token,
    ) -> Result<(Token, Token), AuthError> {
        let (subject, scopes) = self
            .refresh
            .remove(refresh_token.as_str())
            .ok_or(AuthError::InvalidRefreshToken)?;
        let access = self.mint(subject.clone(), scopes.clone(), now);
        self.counter += 1;
        let new_refresh = to_hex(&hmac_sha256(
            &self.signing_key,
            format!("refresh|{subject}|{}", self.counter).as_bytes(),
        ));
        self.refresh.insert(new_refresh.clone(), (subject, scopes));
        Ok((access, Token(new_refresh)))
    }

    /// Validates a bearer token (the PEP's introspection call).
    ///
    /// # Errors
    /// [`AuthError::InvalidToken`] for unknown/forged tokens,
    /// [`AuthError::Expired`] / [`AuthError::Revoked`] accordingly.
    pub fn validate(&self, now: SimTime, token: &Token) -> Result<TokenInfo, AuthError> {
        let issued = self
            .issued
            .get(token.as_str())
            .ok_or(AuthError::InvalidToken)?;
        if issued.revoked {
            return Err(AuthError::Revoked);
        }
        if now >= issued.info.expires_at {
            return Err(AuthError::Expired);
        }
        Ok(issued.info.clone())
    }

    /// Revokes a token immediately.
    pub fn revoke(&mut self, token: &Token) {
        if let Some(t) = self.issued.get_mut(token.as_str()) {
            t.revoked = true;
        }
    }

    /// Revokes every token of a subject (compromised account response).
    pub fn revoke_subject(&mut self, subject: &str) {
        for t in self.issued.values_mut() {
            if t.info.subject == subject {
                t.revoked = true;
            }
        }
        self.refresh.retain(|_, (s, _)| s != subject);
    }

    /// Number of currently valid (unexpired, unrevoked) tokens at `now`.
    pub fn active_tokens(&self, now: SimTime) -> usize {
        self.issued
            .values()
            .filter(|t| !t.revoked && now < t.info.expires_at)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idm() -> IdentityProvider {
        let mut idm = IdentityProvider::new(b"key", SimDuration::from_hours(1));
        idm.register_client("gw", "gw-secret", &["context:write", "context:read"]);
        idm.register_user("maria", "grape$", &["farmer", "owner:guaspari"]);
        idm
    }

    #[test]
    fn client_grant_and_validate() {
        let mut i = idm();
        let t = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &["context:write"])
            .unwrap();
        let info = i.validate(SimTime::ZERO, &t).unwrap();
        assert_eq!(info.subject, "client:gw");
        assert!(info.has_scope("context:write"));
        assert!(!info.has_scope("context:read")); // not requested
    }

    #[test]
    fn wrong_secret_rejected() {
        let mut i = idm();
        assert_eq!(
            i.client_credentials_grant(SimTime::ZERO, "gw", "wrong", &[]),
            Err(AuthError::InvalidClient)
        );
        assert_eq!(
            i.client_credentials_grant(SimTime::ZERO, "ghost", "x", &[]),
            Err(AuthError::InvalidClient)
        );
    }

    #[test]
    fn scope_escalation_rejected() {
        let mut i = idm();
        assert_eq!(
            i.client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &["actuator:command"]),
            Err(AuthError::ScopeNotAllowed("actuator:command".into()))
        );
    }

    #[test]
    fn password_grant_carries_roles() {
        let mut i = idm();
        let (access, _refresh) = i.password_grant(SimTime::ZERO, "maria", "grape$").unwrap();
        let info = i.validate(SimTime::ZERO, &access).unwrap();
        assert_eq!(info.subject, "user:maria");
        assert!(info.has_scope("role:farmer"));
        assert!(info.has_scope("role:owner:guaspari"));
    }

    #[test]
    fn wrong_password_rejected() {
        let mut i = idm();
        assert_eq!(
            i.password_grant(SimTime::ZERO, "maria", "wrong"),
            Err(AuthError::InvalidCredentials)
        );
    }

    #[test]
    fn tokens_expire() {
        let mut i = idm();
        let t = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &[])
            .unwrap();
        assert!(i.validate(SimTime::from_secs(3599), &t).is_ok());
        assert_eq!(
            i.validate(SimTime::from_hours(1), &t),
            Err(AuthError::Expired)
        );
    }

    #[test]
    fn revocation_immediate() {
        let mut i = idm();
        let t = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &[])
            .unwrap();
        i.revoke(&t);
        assert_eq!(i.validate(SimTime::ZERO, &t), Err(AuthError::Revoked));
    }

    #[test]
    fn revoke_subject_kills_all_tokens() {
        let mut i = idm();
        let t1 = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &[])
            .unwrap();
        let t2 = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &[])
            .unwrap();
        assert_eq!(i.active_tokens(SimTime::ZERO), 2);
        i.revoke_subject("client:gw");
        assert_eq!(i.validate(SimTime::ZERO, &t1), Err(AuthError::Revoked));
        assert_eq!(i.validate(SimTime::ZERO, &t2), Err(AuthError::Revoked));
        assert_eq!(i.active_tokens(SimTime::ZERO), 0);
    }

    #[test]
    fn forged_token_rejected() {
        let i = idm();
        let forged = Token("deadbeef.cafebabe".to_owned());
        assert_eq!(
            i.validate(SimTime::ZERO, &forged),
            Err(AuthError::InvalidToken)
        );
    }

    #[test]
    fn refresh_rotates() {
        let mut i = idm();
        let (_, refresh) = i.password_grant(SimTime::ZERO, "maria", "grape$").unwrap();
        let (access2, refresh2) = i.refresh_grant(SimTime::from_secs(10), &refresh).unwrap();
        assert!(i.validate(SimTime::from_secs(10), &access2).is_ok());
        // Old refresh token is single-use.
        assert_eq!(
            i.refresh_grant(SimTime::from_secs(20), &refresh),
            Err(AuthError::InvalidRefreshToken)
        );
        // New one works.
        assert!(i.refresh_grant(SimTime::from_secs(20), &refresh2).is_ok());
    }

    #[test]
    fn tokens_are_unique() {
        let mut i = idm();
        let a = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &[])
            .unwrap();
        let b = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &[])
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_token() {
        let mut i = idm();
        let t = i
            .client_credentials_grant(SimTime::ZERO, "gw", "gw-secret", &[])
            .unwrap();
        let dbg = format!("{t:?}");
        assert!(dbg.len() < t.as_str().len());
        assert!(dbg.contains('…'));
    }
}
