//! Blockchain device-lifecycle ledger and smart-contract authorization.
//!
//! The paper: "A disruptive technology in security is blockchain … One
//! possible application is in the supply chain and lifecycle of an IoT
//! device … it is possible to track all the attributes, relationships and
//! events related to a device. The use of smart contracts is also a
//! promising mechanism … for authentication, authorization, and privacy of
//! IoT devices."
//!
//! This is a permissioned (proof-of-authority) hash chain: consortium
//! authorities sign blocks of [`LifecycleEvent`]s with HMAC; anyone holding
//! the chain can verify integrity and replay a device's full history. A
//! [`DeviceContract`] evaluates authorization predicates (provisioned?
//! owner matches? not revoked? firmware fresh?) against the replayed state.

use std::collections::BTreeMap;
use std::fmt;

use swamp_codec::json::Json;
use swamp_crypto::hmac::{constant_time_eq, hmac_sha256};
use swamp_crypto::sha256::{to_hex, Sha256};
use swamp_sim::SimTime;

/// A device lifecycle event kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LifecycleKind {
    /// Manufactured with a given hardware revision.
    Manufactured {
        /// Hardware revision string.
        hw_rev: String,
    },
    /// Provisioned into a pilot under an owner.
    Provisioned {
        /// Owning principal (e.g. `"owner:matopiba"`).
        owner: String,
    },
    /// Ownership transferred.
    Transferred {
        /// New owning principal.
        new_owner: String,
    },
    /// Firmware updated to a version.
    FirmwareUpdated {
        /// New firmware version string.
        version: String,
    },
    /// Link key rotated to an epoch.
    KeyRotated {
        /// New key epoch.
        epoch: u32,
    },
    /// Revoked (compromise/recall).
    Revoked {
        /// Human-readable reason.
        reason: String,
    },
    /// End of life.
    Decommissioned,
}

/// One ledger event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Device the event concerns.
    pub device_id: String,
    /// What happened.
    pub kind: LifecycleKind,
    /// Virtual time of the event.
    pub at: SimTime,
}

impl LifecycleEvent {
    fn to_json(&self) -> Json {
        let (kind, detail) = match &self.kind {
            LifecycleKind::Manufactured { hw_rev } => ("manufactured", hw_rev.clone()),
            LifecycleKind::Provisioned { owner } => ("provisioned", owner.clone()),
            LifecycleKind::Transferred { new_owner } => ("transferred", new_owner.clone()),
            LifecycleKind::FirmwareUpdated { version } => ("firmware", version.clone()),
            LifecycleKind::KeyRotated { epoch } => ("key_rotated", epoch.to_string()),
            LifecycleKind::Revoked { reason } => ("revoked", reason.clone()),
            LifecycleKind::Decommissioned => ("decommissioned", String::new()),
        };
        Json::object([
            ("device", Json::from(self.device_id.as_str())),
            ("kind", Json::from(kind)),
            ("detail", Json::from(detail)),
            ("at_ms", Json::from(self.at.as_millis() as f64)),
        ])
    }
}

/// A signed block of events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Height in the chain (genesis = 0).
    pub index: u64,
    /// Hex hash of the previous block.
    pub prev_hash: String,
    /// Events committed by this block.
    pub events: Vec<LifecycleEvent>,
    /// Sealing authority id.
    pub authority: String,
    /// Virtual time the block was sealed.
    pub sealed_at: SimTime,
    /// Hex hash of this block's contents.
    pub hash: String,
    /// PoA signature (HMAC by the authority's key) over the hash.
    pub signature: Vec<u8>,
}

fn block_hash(
    index: u64,
    prev_hash: &str,
    events: &[LifecycleEvent],
    authority: &str,
    sealed_at: SimTime,
) -> String {
    let events_json = Json::Array(events.iter().map(LifecycleEvent::to_json).collect());
    let body = Json::object([
        ("index", Json::from(index as f64)),
        ("prev", Json::from(prev_hash)),
        ("events", events_json),
        ("authority", Json::from(authority)),
        ("sealed_ms", Json::from(sealed_at.as_millis() as f64)),
    ]);
    to_hex(&Sha256::digest(body.to_compact_string().as_bytes()))
}

/// Errors from ledger operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// The sealing authority is not registered.
    UnknownAuthority(String),
    /// Chain verification failed at the given height.
    BrokenChain {
        /// Height of the offending block.
        height: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::UnknownAuthority(a) => write!(f, "unknown authority {a:?}"),
            LedgerError::BrokenChain { height, reason } => {
                write!(f, "chain broken at block {height}: {reason}")
            }
        }
    }
}
impl std::error::Error for LedgerError {}

/// Current state of a device as replayed from the ledger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviceState {
    /// Present owner, if provisioned.
    pub owner: Option<String>,
    /// Latest firmware version recorded.
    pub firmware: Option<String>,
    /// Latest key epoch recorded.
    pub key_epoch: Option<u32>,
    /// Whether the device was revoked.
    pub revoked: bool,
    /// Whether the device was decommissioned.
    pub decommissioned: bool,
    /// Total events recorded for the device.
    pub event_count: usize,
}

/// The proof-of-authority hash-chained ledger.
///
/// # Example
/// ```
/// use swamp_security::ledger::*;
/// use swamp_sim::SimTime;
///
/// let mut ledger = Ledger::new();
/// ledger.register_authority("consortium", b"authority-key");
/// ledger.append(
///     "consortium",
///     SimTime::ZERO,
///     vec![LifecycleEvent {
///         device_id: "probe-1".into(),
///         kind: LifecycleKind::Provisioned { owner: "owner:cbec".into() },
///         at: SimTime::ZERO,
///     }],
/// ).unwrap();
/// assert!(ledger.verify().is_ok());
/// assert_eq!(ledger.device_state("probe-1").owner.as_deref(), Some("owner:cbec"));
/// ```
pub struct Ledger {
    blocks: Vec<Block>,
    authorities: BTreeMap<String, Vec<u8>>,
}

impl fmt::Debug for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ledger")
            .field("height", &self.blocks.len())
            .field("authorities", &self.authorities.len())
            .finish()
    }
}

impl Default for Ledger {
    fn default() -> Self {
        Self::new()
    }
}

impl Ledger {
    /// Creates a ledger with only the genesis block.
    pub fn new() -> Self {
        let genesis = Block {
            index: 0,
            prev_hash: String::new(),
            events: Vec::new(),
            authority: "genesis".to_owned(),
            sealed_at: SimTime::ZERO,
            hash: block_hash(0, "", &[], "genesis", SimTime::ZERO),
            signature: Vec::new(),
        };
        Ledger {
            blocks: vec![genesis],
            authorities: BTreeMap::new(),
        }
    }

    /// Registers a sealing authority and its signing key.
    pub fn register_authority(&mut self, id: &str, key: &[u8]) {
        self.authorities.insert(id.to_owned(), key.to_vec());
    }

    /// Chain height (blocks including genesis).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Seals a new block of events.
    ///
    /// # Errors
    /// [`LedgerError::UnknownAuthority`] if the authority is unregistered.
    ///
    /// # Panics
    /// Never in practice: the genesis block is created in [`Ledger::default`]
    /// and blocks are never removed, so the chain tail is always present.
    pub fn append(
        &mut self,
        authority: &str,
        now: SimTime,
        events: Vec<LifecycleEvent>,
    ) -> Result<&Block, LedgerError> {
        let key = self
            .authorities
            .get(authority)
            .ok_or_else(|| LedgerError::UnknownAuthority(authority.to_owned()))?;
        let prev = self.blocks.last().expect("genesis always present");
        let index = prev.index + 1;
        let hash = block_hash(index, &prev.hash, &events, authority, now);
        let signature = hmac_sha256(key, hash.as_bytes()).to_vec();
        self.blocks.push(Block {
            index,
            prev_hash: prev.hash.clone(),
            events,
            authority: authority.to_owned(),
            sealed_at: now,
            hash,
            signature,
        });
        Ok(self.blocks.last().expect("just pushed"))
    }

    /// Verifies the whole chain: hash links, content hashes and signatures.
    ///
    /// # Errors
    /// [`LedgerError::BrokenChain`] at the first inconsistent block.
    pub fn verify(&self) -> Result<(), LedgerError> {
        for (i, block) in self.blocks.iter().enumerate() {
            let expected = block_hash(
                block.index,
                &block.prev_hash,
                &block.events,
                &block.authority,
                block.sealed_at,
            );
            if expected != block.hash {
                return Err(LedgerError::BrokenChain {
                    height: block.index,
                    reason: "content hash mismatch".into(),
                });
            }
            if i > 0 {
                let prev = &self.blocks[i - 1];
                if block.prev_hash != prev.hash {
                    return Err(LedgerError::BrokenChain {
                        height: block.index,
                        reason: "previous-hash link broken".into(),
                    });
                }
                let key = self.authorities.get(&block.authority).ok_or_else(|| {
                    LedgerError::BrokenChain {
                        height: block.index,
                        reason: format!("sealed by unknown authority {:?}", block.authority),
                    }
                })?;
                let expected_sig = hmac_sha256(key, block.hash.as_bytes());
                if !constant_time_eq(&expected_sig, &block.signature) {
                    return Err(LedgerError::BrokenChain {
                        height: block.index,
                        reason: "invalid authority signature".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Replays the full event history of one device.
    pub fn device_history(&self, device_id: &str) -> Vec<&LifecycleEvent> {
        self.blocks
            .iter()
            .flat_map(|b| b.events.iter())
            .filter(|e| e.device_id == device_id)
            .collect()
    }

    /// Replays the current state of a device from its history.
    pub fn device_state(&self, device_id: &str) -> DeviceState {
        let mut state = DeviceState::default();
        for event in self.device_history(device_id) {
            state.event_count += 1;
            match &event.kind {
                LifecycleKind::Manufactured { .. } => {}
                LifecycleKind::Provisioned { owner } => state.owner = Some(owner.clone()),
                LifecycleKind::Transferred { new_owner } => state.owner = Some(new_owner.clone()),
                LifecycleKind::FirmwareUpdated { version } => {
                    state.firmware = Some(version.clone())
                }
                LifecycleKind::KeyRotated { epoch } => state.key_epoch = Some(*epoch),
                LifecycleKind::Revoked { .. } => state.revoked = true,
                LifecycleKind::Decommissioned => state.decommissioned = true,
            }
        }
        state
    }

    /// Test hook: tampers with a recorded event (simulating an attacker
    /// rewriting history) so verification failure paths can be exercised.
    #[doc(hidden)]
    pub fn tamper_event_for_tests(&mut self, height: usize, new_device: &str) {
        if let Some(e) = self.blocks[height].events.first_mut() {
            e.device_id = new_device.to_owned();
        }
    }
}

/// A smart contract gating an operation on ledger-recorded device state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceContract {
    /// Owner the device must currently belong to (None = any owner).
    pub required_owner: Option<String>,
    /// Minimum key epoch (stale keys rejected).
    pub min_key_epoch: Option<u32>,
    /// Require a recorded firmware version in this allowlist (empty = any).
    pub allowed_firmware: Vec<String>,
}

/// Contract evaluation outcome with the failed clause for audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContractOutcome {
    /// All clauses satisfied.
    Authorized,
    /// A clause failed.
    Rejected(String),
}

impl ContractOutcome {
    /// Whether the operation may proceed.
    pub fn is_authorized(&self) -> bool {
        matches!(self, ContractOutcome::Authorized)
    }
}

impl DeviceContract {
    /// A contract requiring only a live provisioned device.
    pub fn provisioned_only() -> Self {
        DeviceContract {
            required_owner: None,
            min_key_epoch: None,
            allowed_firmware: Vec::new(),
        }
    }

    /// Evaluates the contract against a device's ledger state.
    pub fn evaluate(&self, state: &DeviceState) -> ContractOutcome {
        if state.owner.is_none() {
            return ContractOutcome::Rejected("device never provisioned".into());
        }
        if state.revoked {
            return ContractOutcome::Rejected("device revoked".into());
        }
        if state.decommissioned {
            return ContractOutcome::Rejected("device decommissioned".into());
        }
        if let Some(required) = &self.required_owner {
            if state.owner.as_deref() != Some(required.as_str()) {
                return ContractOutcome::Rejected(format!(
                    "owner {:?} does not match required {:?}",
                    state.owner, required
                ));
            }
        }
        if let Some(min) = self.min_key_epoch {
            if state.key_epoch.unwrap_or(0) < min {
                return ContractOutcome::Rejected(format!(
                    "key epoch {:?} below required {min}",
                    state.key_epoch
                ));
            }
        }
        if !self.allowed_firmware.is_empty() {
            match &state.firmware {
                Some(fw) if self.allowed_firmware.contains(fw) => {}
                other => {
                    return ContractOutcome::Rejected(format!(
                        "firmware {other:?} not in allowlist"
                    ))
                }
            }
        }
        ContractOutcome::Authorized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(device: &str, kind: LifecycleKind, secs: u64) -> LifecycleEvent {
        LifecycleEvent {
            device_id: device.to_owned(),
            kind,
            at: SimTime::from_secs(secs),
        }
    }

    fn ledger_with_history() -> Ledger {
        let mut l = Ledger::new();
        l.register_authority("cbec", b"cbec-key");
        l.append(
            "cbec",
            SimTime::from_secs(1),
            vec![
                event(
                    "probe-1",
                    LifecycleKind::Manufactured {
                        hw_rev: "A2".into(),
                    },
                    0,
                ),
                event(
                    "probe-1",
                    LifecycleKind::Provisioned {
                        owner: "owner:cbec".into(),
                    },
                    1,
                ),
            ],
        )
        .unwrap();
        l.append(
            "cbec",
            SimTime::from_secs(2),
            vec![
                event(
                    "probe-1",
                    LifecycleKind::FirmwareUpdated {
                        version: "1.2.0".into(),
                    },
                    2,
                ),
                event("probe-1", LifecycleKind::KeyRotated { epoch: 3 }, 2),
            ],
        )
        .unwrap();
        l
    }

    #[test]
    fn chain_verifies() {
        let l = ledger_with_history();
        assert_eq!(l.height(), 3);
        assert!(l.verify().is_ok());
    }

    #[test]
    fn state_replay() {
        let l = ledger_with_history();
        let s = l.device_state("probe-1");
        assert_eq!(s.owner.as_deref(), Some("owner:cbec"));
        assert_eq!(s.firmware.as_deref(), Some("1.2.0"));
        assert_eq!(s.key_epoch, Some(3));
        assert!(!s.revoked);
        assert_eq!(s.event_count, 4);
        assert_eq!(l.device_history("probe-1").len(), 4);
        assert_eq!(l.device_history("ghost").len(), 0);
    }

    #[test]
    fn tampering_detected() {
        let mut l = ledger_with_history();
        l.tamper_event_for_tests(1, "attacker-device");
        let err = l.verify().unwrap_err();
        assert!(matches!(err, LedgerError::BrokenChain { height: 1, .. }));
    }

    #[test]
    fn unknown_authority_rejected() {
        let mut l = Ledger::new();
        assert_eq!(
            l.append("mallory", SimTime::ZERO, vec![]).unwrap_err(),
            LedgerError::UnknownAuthority("mallory".into())
        );
    }

    #[test]
    fn forged_signature_detected() {
        let mut l = ledger_with_history();
        // Attacker rewrites a block and recomputes the hash chain but cannot
        // produce valid signatures without the authority key.
        let events = vec![event(
            "probe-1",
            LifecycleKind::Transferred {
                new_owner: "owner:mallory".into(),
            },
            5,
        )];
        let prev_hash = l.blocks[2].hash.clone();
        let hash = block_hash(3, &prev_hash, &events, "cbec", SimTime::from_secs(5));
        l.blocks.push(Block {
            index: 3,
            prev_hash,
            events,
            authority: "cbec".into(),
            sealed_at: SimTime::from_secs(5),
            hash,
            signature: vec![0u8; 32], // forged
        });
        let err = l.verify().unwrap_err();
        assert!(matches!(err, LedgerError::BrokenChain { height: 3, .. }));
    }

    #[test]
    fn transfer_and_revoke_flow() {
        let mut l = ledger_with_history();
        l.append(
            "cbec",
            SimTime::from_secs(10),
            vec![event(
                "probe-1",
                LifecycleKind::Transferred {
                    new_owner: "owner:guaspari".into(),
                },
                10,
            )],
        )
        .unwrap();
        assert_eq!(
            l.device_state("probe-1").owner.as_deref(),
            Some("owner:guaspari")
        );
        l.append(
            "cbec",
            SimTime::from_secs(11),
            vec![event(
                "probe-1",
                LifecycleKind::Revoked {
                    reason: "compromised".into(),
                },
                11,
            )],
        )
        .unwrap();
        assert!(l.device_state("probe-1").revoked);
        assert!(l.verify().is_ok());
    }

    #[test]
    fn contract_authorizes_healthy_device() {
        let l = ledger_with_history();
        let contract = DeviceContract {
            required_owner: Some("owner:cbec".into()),
            min_key_epoch: Some(2),
            allowed_firmware: vec!["1.2.0".into()],
        };
        assert!(contract
            .evaluate(&l.device_state("probe-1"))
            .is_authorized());
    }

    #[test]
    fn contract_rejects_each_clause() {
        let l = ledger_with_history();
        let state = l.device_state("probe-1");

        let wrong_owner = DeviceContract {
            required_owner: Some("owner:matopiba".into()),
            ..DeviceContract::provisioned_only()
        };
        assert!(!wrong_owner.evaluate(&state).is_authorized());

        let stale_key = DeviceContract {
            min_key_epoch: Some(10),
            ..DeviceContract::provisioned_only()
        };
        assert!(!stale_key.evaluate(&state).is_authorized());

        let bad_fw = DeviceContract {
            allowed_firmware: vec!["9.9.9".into()],
            ..DeviceContract::provisioned_only()
        };
        assert!(!bad_fw.evaluate(&state).is_authorized());

        // Unprovisioned device.
        assert_eq!(
            DeviceContract::provisioned_only().evaluate(&l.device_state("ghost")),
            ContractOutcome::Rejected("device never provisioned".into())
        );
    }

    #[test]
    fn contract_rejects_revoked_and_decommissioned() {
        let mut l = ledger_with_history();
        l.append(
            "cbec",
            SimTime::from_secs(20),
            vec![event(
                "probe-1",
                LifecycleKind::Revoked {
                    reason: "stolen".into(),
                },
                20,
            )],
        )
        .unwrap();
        let c = DeviceContract::provisioned_only();
        assert!(!c.evaluate(&l.device_state("probe-1")).is_authorized());

        l.append(
            "cbec",
            SimTime::from_secs(21),
            vec![event(
                "probe-2",
                LifecycleKind::Provisioned { owner: "o".into() },
                21,
            )],
        )
        .unwrap();
        l.append(
            "cbec",
            SimTime::from_secs(22),
            vec![event("probe-2", LifecycleKind::Decommissioned, 22)],
        )
        .unwrap();
        assert!(!c.evaluate(&l.device_state("probe-2")).is_authorized());
    }

    #[test]
    fn multiple_authorities() {
        let mut l = Ledger::new();
        l.register_authority("a1", b"k1");
        l.register_authority("a2", b"k2");
        l.append("a1", SimTime::from_secs(1), vec![]).unwrap();
        l.append("a2", SimTime::from_secs(2), vec![]).unwrap();
        assert!(l.verify().is_ok());
    }
}
