//! The detection pipeline: per-device detector banks, alert aggregation and
//! quarantine recommendations.
//!
//! The paper's security architecture needs more than isolated detectors —
//! "mechanisms to avoid fake data" must combine evidence (a value can be in
//! range yet spatially inconsistent; a rate can be normal while the
//! sequence is impossible) and decide *what to do*: log, alert the
//! operator, or quarantine the device. [`DetectorBank`] wires the point
//! detectors from [`crate::detect`] per quantity, per device, aggregates
//! their findings into [`Alert`]s with per-device severity scoring, and
//! turns the score into a [`Recommendation`].

use std::collections::BTreeMap;

use swamp_obs::{Counter, Level, Obs, ObsSnapshot};
use swamp_sim::SimTime;

use crate::detect::{
    CusumDetector, RangeValidator, SeqEvent, SeqMonitor, Severity, Verdict, ZScoreDetector,
};

/// Evidence type an alert is based on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Evidence {
    /// Physically impossible value.
    OutOfRange,
    /// Statistically abnormal jump (z-score).
    PointAnomaly,
    /// Accumulated drift (CUSUM).
    Drift,
    /// Replayed or duplicated frame.
    Replay,
    /// Large sequence gap (message loss or reset).
    SequenceGap,
}

/// One alert raised by the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// Device the alert concerns.
    pub device: String,
    /// Measured quantity ("moisture_vwc"…), empty for frame-level evidence.
    pub quantity: String,
    /// Evidence class.
    pub evidence: Evidence,
    /// Severity at raise time.
    pub severity: Severity,
    /// The offending value, if any.
    pub value: Option<f64>,
    /// When it was raised.
    pub at: SimTime,
}

/// What the pipeline recommends for a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recommendation {
    /// Nothing concerning.
    Trust,
    /// Keep ingesting but flag to the operator.
    Watch,
    /// Stop trusting this device's data; hold irrigation decisions that
    /// depend on it until a human or cross-check clears it.
    Quarantine,
}

/// Detector bundle for one (device, quantity) stream.
#[derive(Clone, Debug)]
struct StreamDetectors {
    zscore: ZScoreDetector,
    cusum: CusumDetector,
}

/// Per-device, per-quantity detection with aggregated alerting.
///
/// # Example
/// ```
/// use swamp_security::pipeline::{DetectorBank, Recommendation};
/// use swamp_security::detect::RangeValidator;
/// use swamp_sim::SimTime;
///
/// let mut bank = DetectorBank::new();
/// bank.configure_quantity("moisture_vwc", RangeValidator::soil_moisture());
/// // An impossible value is flagged immediately.
/// bank.observe_value(SimTime::ZERO, "probe-1", "moisture_vwc", 0.95);
/// assert_eq!(bank.recommendation("probe-1"), Recommendation::Quarantine);
/// ```
#[derive(Clone, Debug)]
pub struct DetectorBank {
    /// Physical ranges per quantity name.
    ranges: BTreeMap<String, RangeValidator>,
    streams: BTreeMap<(String, String), StreamDetectors>,
    seq: SeqMonitor,
    alerts: Vec<Alert>,
    /// Rolling per-device alert weights (warning = 1, alert = 3).
    device_score: BTreeMap<String, u32>,
    obs: Obs,
    ins: BankInstruments,
}

/// Typed handles for the bank's instruments (`security.*`).
#[derive(Clone, Debug)]
struct BankInstruments {
    alerts_raised: Counter,
    out_of_range: Counter,
    point_anomaly: Counter,
    drift: Counter,
    replay: Counter,
    sequence_gap: Counter,
}

impl BankInstruments {
    fn register(obs: &mut Obs) -> BankInstruments {
        BankInstruments {
            alerts_raised: obs.counter("security.alerts_raised"),
            out_of_range: obs.counter("security.out_of_range"),
            point_anomaly: obs.counter("security.point_anomaly"),
            drift: obs.counter("security.drift"),
            replay: obs.counter("security.replay"),
            sequence_gap: obs.counter("security.sequence_gap"),
        }
    }
}

impl Default for DetectorBank {
    fn default() -> Self {
        DetectorBank::new()
    }
}

impl DetectorBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        let mut obs = Obs::new();
        let ins = BankInstruments::register(&mut obs);
        DetectorBank {
            ranges: BTreeMap::new(),
            streams: BTreeMap::new(),
            seq: SeqMonitor::new(),
            alerts: Vec::new(),
            device_score: BTreeMap::new(),
            obs,
            ins,
        }
    }

    /// Typed snapshot of the bank's instruments: the per-evidence
    /// `security.*` counters plus `security.alert` /
    /// `security.quarantine_recommended` events.
    pub fn observe(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Enables or disables instrumentation (for uninstrumented baselines).
    pub fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }

    /// Registers the physical range for a quantity (applies to all devices).
    pub fn configure_quantity(&mut self, quantity: &str, range: RangeValidator) {
        self.ranges.insert(quantity.to_owned(), range);
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Drains the alert log (for forwarding to an operator console).
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts)
    }

    /// Current recommendation for a device.
    pub fn recommendation(&self, device: &str) -> Recommendation {
        match self.device_score.get(device).copied().unwrap_or(0) {
            0 => Recommendation::Trust,
            1..=2 => Recommendation::Watch,
            _ => Recommendation::Quarantine,
        }
    }

    /// Devices currently recommended for quarantine.
    pub fn quarantined(&self) -> Vec<&str> {
        self.device_score
            .iter()
            .filter(|(_, &s)| s >= 3)
            .map(|(d, _)| d.as_str())
            .collect()
    }

    /// Clears a device's score after manual review.
    pub fn clear_device(&mut self, device: &str) {
        self.device_score.remove(device);
    }

    fn raise(
        &mut self,
        at: SimTime,
        device: &str,
        quantity: &str,
        evidence: Evidence,
        severity: Severity,
        value: Option<f64>,
    ) {
        let score = self.device_score.entry(device.to_owned()).or_insert(0);
        let before = *score;
        *score += match severity {
            Severity::Warning => 1,
            Severity::Alert => 3,
        };
        let crossed_quarantine = before < 3 && *score >= 3;

        self.obs.inc(self.ins.alerts_raised);
        let evidence_counter = match evidence {
            Evidence::OutOfRange => self.ins.out_of_range,
            Evidence::PointAnomaly => self.ins.point_anomaly,
            Evidence::Drift => self.ins.drift,
            Evidence::Replay => self.ins.replay,
            Evidence::SequenceGap => self.ins.sequence_gap,
        };
        self.obs.inc(evidence_counter);
        let level = match severity {
            Severity::Warning => Level::Warn,
            Severity::Alert => Level::Error,
        };
        self.obs.event(
            level,
            "security.alert",
            &format!("{device} {quantity} {evidence:?}"),
        );
        if crossed_quarantine {
            self.obs
                .event(Level::Error, "security.quarantine_recommended", device);
        }

        self.alerts.push(Alert {
            device: device.to_owned(),
            quantity: quantity.to_owned(),
            evidence,
            severity,
            value,
            at,
        });
    }

    /// Feeds one measured value through range + z-score + CUSUM detectors.
    /// Returns the strongest verdict.
    pub fn observe_value(
        &mut self,
        at: SimTime,
        device: &str,
        quantity: &str,
        value: f64,
    ) -> Verdict {
        // Range first: an impossible value must not train the baselines.
        if let Some(range) = self.ranges.get(quantity) {
            if range.check(value).is_anomalous() {
                self.raise(
                    at,
                    device,
                    quantity,
                    Evidence::OutOfRange,
                    Severity::Alert,
                    Some(value),
                );
                return Verdict::Anomalous(Severity::Alert);
            }
        }
        let key = (device.to_owned(), quantity.to_owned());
        let stream = self.streams.entry(key).or_insert_with(|| StreamDetectors {
            zscore: ZScoreDetector::for_slow_signal(),
            cusum: CusumDetector::for_slow_signal(),
        });
        let z = stream.zscore.observe(value);
        let c = stream.cusum.observe(value);
        let verdict = match (z, c) {
            (Verdict::Anomalous(s), _) | (_, Verdict::Anomalous(s)) => Verdict::Anomalous(s),
            _ => Verdict::Normal,
        };
        if let Verdict::Anomalous(severity) = verdict {
            let evidence = if c.is_anomalous() && !z.is_anomalous() {
                Evidence::Drift
            } else {
                Evidence::PointAnomaly
            };
            self.raise(at, device, quantity, evidence, severity, Some(value));
        }
        verdict
    }

    /// Feeds a frame's sequence number through the replay/gap monitor.
    pub fn observe_sequence(&mut self, at: SimTime, device: &str, seq: u64) -> SeqEvent {
        let event = self.seq.observe(device, seq);
        match event {
            SeqEvent::ReplayOrDuplicate => self.raise(
                at,
                device,
                "",
                Evidence::Replay,
                Severity::Alert,
                Some(seq as f64),
            ),
            SeqEvent::Gap(n) if n > 10 => self.raise(
                at,
                device,
                "",
                Evidence::SequenceGap,
                Severity::Warning,
                Some(n as f64),
            ),
            _ => {}
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::SimRng;

    fn bank() -> DetectorBank {
        let mut b = DetectorBank::new();
        b.configure_quantity("moisture_vwc", RangeValidator::soil_moisture());
        b
    }

    #[test]
    fn clean_stream_stays_trusted() {
        let mut b = bank();
        let mut rng = SimRng::seed_from(1);
        for i in 0..200 {
            let v = 0.25 + rng.normal_with(0.0, 0.005);
            b.observe_value(SimTime::from_secs(i), "p", "moisture_vwc", v);
            b.observe_sequence(SimTime::from_secs(i), "p", i);
        }
        assert_eq!(b.recommendation("p"), Recommendation::Trust);
        assert!(b.alerts().is_empty());
    }

    #[test]
    fn out_of_range_quarantines_immediately() {
        let mut b = bank();
        let v = b.observe_value(SimTime::ZERO, "p", "moisture_vwc", 1.5);
        assert!(v.is_anomalous());
        assert_eq!(b.recommendation("p"), Recommendation::Quarantine);
        assert_eq!(b.alerts()[0].evidence, Evidence::OutOfRange);
        assert_eq!(b.quarantined(), vec!["p"]);
    }

    #[test]
    fn impossible_values_do_not_poison_baseline() {
        let mut b = bank();
        let mut rng = SimRng::seed_from(2);
        for i in 0..50 {
            b.observe_value(
                SimTime::from_secs(i),
                "p",
                "moisture_vwc",
                0.25 + rng.normal_with(0.0, 0.005),
            );
        }
        // A burst of impossible values…
        for i in 50..60 {
            b.observe_value(SimTime::from_secs(i), "p", "moisture_vwc", 0.99);
        }
        // …then a step attack inside the physical range: still flagged,
        // because the range rejects kept the z-score baseline at 0.25.
        let v = b.observe_value(SimTime::from_secs(61), "p", "moisture_vwc", 0.45);
        assert!(v.is_anomalous(), "baseline must not have learned 0.99");
    }

    #[test]
    fn step_attack_flagged_and_scored() {
        let mut b = bank();
        let mut rng = SimRng::seed_from(3);
        for i in 0..100 {
            b.observe_value(
                SimTime::from_secs(i),
                "p",
                "moisture_vwc",
                0.22 + rng.normal_with(0.0, 0.004),
            );
        }
        assert_eq!(b.recommendation("p"), Recommendation::Trust);
        let v = b.observe_value(SimTime::from_secs(100), "p", "moisture_vwc", 0.40);
        assert!(v.is_anomalous());
        assert_ne!(b.recommendation("p"), Recommendation::Trust);
    }

    #[test]
    fn slow_drift_caught_as_drift_evidence() {
        let mut b = bank();
        let mut rng = SimRng::seed_from(4);
        for i in 0..40 {
            b.observe_value(
                SimTime::from_secs(i),
                "p",
                "moisture_vwc",
                0.25 + rng.normal_with(0.0, 0.004),
            );
        }
        let mut caught = false;
        for i in 0..150 {
            let v = 0.25 + 0.0015 * i as f64 + rng.normal_with(0.0, 0.004);
            if b.observe_value(SimTime::from_secs(40 + i), "p", "moisture_vwc", v)
                .is_anomalous()
            {
                caught = true;
                break;
            }
        }
        assert!(caught, "drift must be caught");
        assert!(b
            .alerts()
            .iter()
            .any(|a| a.evidence == Evidence::Drift || a.evidence == Evidence::PointAnomaly));
    }

    #[test]
    fn replay_raises_alert() {
        let mut b = bank();
        b.observe_sequence(SimTime::ZERO, "p", 5);
        b.observe_sequence(SimTime::ZERO, "p", 6);
        let e = b.observe_sequence(SimTime::ZERO, "p", 6);
        assert_eq!(e, SeqEvent::ReplayOrDuplicate);
        assert_eq!(b.recommendation("p"), Recommendation::Quarantine);
        assert_eq!(b.alerts().last().unwrap().evidence, Evidence::Replay);
    }

    #[test]
    fn large_gap_is_a_warning_only() {
        let mut b = bank();
        b.observe_sequence(SimTime::ZERO, "p", 0);
        b.observe_sequence(SimTime::ZERO, "p", 100);
        assert_eq!(b.recommendation("p"), Recommendation::Watch);
        assert_eq!(b.alerts()[0].evidence, Evidence::SequenceGap);
        // Small gaps (radio loss) are not even warnings.
        let mut b2 = bank();
        b2.observe_sequence(SimTime::ZERO, "q", 0);
        b2.observe_sequence(SimTime::ZERO, "q", 3);
        assert_eq!(b2.recommendation("q"), Recommendation::Trust);
    }

    #[test]
    fn obs_counts_evidence_and_emits_quarantine_event() {
        let mut b = bank();
        b.observe_value(SimTime::ZERO, "p", "moisture_vwc", 1.5);
        let snap = b.observe();
        assert_eq!(snap.counter("security.alerts_raised").unwrap(), 1);
        assert_eq!(snap.counter("security.out_of_range").unwrap(), 1);
        assert_eq!(snap.counter("security.drift").unwrap(), 0);
        assert!(snap.counter("security.typo").is_err());
        let codes: Vec<&str> = snap.events().iter().map(|e| e.code.as_str()).collect();
        assert_eq!(codes, ["security.alert", "security.quarantine_recommended"]);
        assert_eq!(snap.events()[1].detail, "p");
    }

    #[test]
    fn devices_are_isolated() {
        let mut b = bank();
        b.observe_value(SimTime::ZERO, "bad", "moisture_vwc", 2.0);
        assert_eq!(b.recommendation("bad"), Recommendation::Quarantine);
        assert_eq!(b.recommendation("good"), Recommendation::Trust);
    }

    #[test]
    fn clear_restores_trust_and_take_alerts_drains() {
        let mut b = bank();
        b.observe_value(SimTime::ZERO, "p", "moisture_vwc", 2.0);
        assert_eq!(b.take_alerts().len(), 1);
        assert!(b.alerts().is_empty());
        b.clear_device("p");
        assert_eq!(b.recommendation("p"), Recommendation::Trust);
    }
}
