//! Point anomaly detectors over telemetry streams.
//!
//! These are the building blocks the platform combines per quantity and per
//! device: physical range validation, rolling z-score, CUSUM drift
//! detection, message-rate guarding (DoS), sequence-gap/replay detection,
//! and spatial cross-validation against neighboring sensors (tamper and
//! Sybil evidence). The sequence-of-events baseline the paper calls "the
//! most relevant challenge" lives in [`crate::behavior`].

use std::collections::BTreeMap;

use swamp_sim::stats::{Ewma, OnlineStats};
use swamp_sim::{SimDuration, SimTime};

/// A detector verdict for one observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Consistent with the baseline.
    Normal,
    /// Anomalous, with a severity class.
    Anomalous(Severity),
}

/// How bad an anomaly is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious; log and correlate.
    Warning,
    /// Strong evidence; alert the operator.
    Alert,
}

impl Verdict {
    /// Whether this verdict flags an anomaly.
    pub fn is_anomalous(&self) -> bool {
        matches!(self, Verdict::Anomalous(_))
    }
}

/// Hard physical-range validation (a soil probe cannot read 1.5 m³/m³).
#[derive(Clone, Copy, Debug)]
pub struct RangeValidator {
    lo: f64,
    hi: f64,
}

impl RangeValidator {
    /// Creates a validator accepting `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        RangeValidator { lo, hi }
    }

    /// Physical bounds for volumetric soil moisture.
    pub fn soil_moisture() -> Self {
        RangeValidator::new(0.0, 0.6)
    }

    /// Physical bounds for NDVI.
    pub fn ndvi() -> Self {
        RangeValidator::new(-1.0, 1.0)
    }

    /// Checks one value.
    pub fn check(&self, value: f64) -> Verdict {
        if value.is_finite() && (self.lo..=self.hi).contains(&value) {
            Verdict::Normal
        } else {
            Verdict::Anomalous(Severity::Alert)
        }
    }
}

/// Rolling z-score detector with an EWMA baseline.
///
/// Flags observations more than `warn_z`/`alert_z` exponentially weighted
/// standard deviations from the smoothed mean, after a warm-up period.
#[derive(Clone, Debug)]
pub struct ZScoreDetector {
    ewma: Ewma,
    warmup: u32,
    seen: u32,
    warn_z: f64,
    alert_z: f64,
    min_sd: f64,
}

impl ZScoreDetector {
    /// Creates a detector; `alpha` is the EWMA smoothing factor.
    ///
    /// # Panics
    /// Panics if thresholds are not `0 < warn_z <= alert_z`.
    pub fn new(alpha: f64, warmup: u32, warn_z: f64, alert_z: f64, min_sd: f64) -> Self {
        assert!(
            warn_z > 0.0 && warn_z <= alert_z,
            "need 0 < warn_z <= alert_z"
        );
        ZScoreDetector {
            ewma: Ewma::new(alpha),
            warmup,
            seen: 0,
            warn_z,
            alert_z,
            min_sd,
        }
    }

    /// Defaults tuned for slow agro signals (soil moisture, NDVI).
    pub fn for_slow_signal() -> Self {
        ZScoreDetector::new(0.15, 10, 3.0, 5.0, 0.01)
    }

    /// Scores one observation and updates the baseline.
    ///
    /// During warm-up everything is `Normal` (the baseline is still
    /// learning); anomalous observations are *not* absorbed into the
    /// baseline, so a step attack cannot teach the detector its new normal.
    pub fn observe(&mut self, value: f64) -> Verdict {
        self.seen += 1;
        if self.seen <= self.warmup || !self.ewma.is_primed() {
            self.ewma.push(value);
            return Verdict::Normal;
        }
        let sd = self.ewma.std_dev().max(self.min_sd);
        let z = (value - self.ewma.value()).abs() / sd;
        let verdict = if z >= self.alert_z {
            Verdict::Anomalous(Severity::Alert)
        } else if z >= self.warn_z {
            Verdict::Anomalous(Severity::Warning)
        } else {
            Verdict::Normal
        };
        if !verdict.is_anomalous() {
            self.ewma.push(value);
        }
        verdict
    }

    /// Current baseline mean.
    pub fn baseline(&self) -> f64 {
        self.ewma.value()
    }
}

/// Two-sided CUSUM drift detector: catches slow tampering that stays under
/// the z-score radar (the stealthy `TamperMode::Drift` attack).
#[derive(Clone, Debug)]
pub struct CusumDetector {
    reference: OnlineStats,
    warmup: u64,
    /// Slack parameter k (in reference SDs).
    k: f64,
    /// Decision threshold h (in reference SDs).
    h: f64,
    pos: f64,
    neg: f64,
}

impl CusumDetector {
    /// Creates a CUSUM with slack `k` and threshold `h` (both in SD units).
    pub fn new(warmup: u64, k: f64, h: f64) -> Self {
        assert!(k >= 0.0 && h > 0.0);
        CusumDetector {
            reference: OnlineStats::new(),
            warmup,
            k,
            h,
            pos: 0.0,
            neg: 0.0,
        }
    }

    /// Defaults for slow agro signals.
    pub fn for_slow_signal() -> Self {
        CusumDetector::new(20, 0.5, 8.0)
    }

    /// Scores one observation.
    pub fn observe(&mut self, value: f64) -> Verdict {
        if self.reference.count() < self.warmup {
            self.reference.push(value);
            return Verdict::Normal;
        }
        let sd = self.reference.sample_std_dev().max(1e-9);
        let z = (value - self.reference.mean()) / sd;
        self.pos = (self.pos + z - self.k).max(0.0);
        self.neg = (self.neg - z - self.k).max(0.0);
        if self.pos > self.h || self.neg > self.h {
            Verdict::Anomalous(Severity::Alert)
        } else {
            Verdict::Normal
        }
    }

    /// Resets the accumulated deviation (after an alarm is handled).
    pub fn reset(&mut self) {
        self.pos = 0.0;
        self.neg = 0.0;
    }
}

/// Per-source message-rate guard: learns each source's normal per-window
/// rate *and* a fleet-wide norm, and flags rate explosions (the DoS
/// signature), feeding SDN mitigation.
///
/// The fleet baseline is what catches a source that floods from its very
/// first message — it has no personal history, but it is wildly outside
/// the norm of its peers.
#[derive(Clone, Debug)]
pub struct RateGuard {
    window: SimDuration,
    /// Alert when a source exceeds `factor` × its learned rate.
    factor: f64,
    /// Grace: minimum messages per window before alerts can fire.
    min_count: u64,
    history: BTreeMap<String, (SimTime, u64, Ewma)>,
    fleet: Ewma,
}

impl RateGuard {
    /// Creates a guard with the given window and explosion factor.
    pub fn new(window: SimDuration, factor: f64, min_count: u64) -> Self {
        assert!(factor > 1.0);
        RateGuard {
            window,
            factor,
            min_count,
            history: BTreeMap::new(),
            fleet: Ewma::new(0.2),
        }
    }

    /// Records one message from a source; returns an alert if its current
    /// window is exploding relative to its own baseline or the fleet norm.
    pub fn observe(&mut self, source: &str, now: SimTime) -> Verdict {
        let entry = self
            .history
            .entry(source.to_owned())
            .or_insert_with(|| (now, 0, Ewma::new(0.3)));
        let (window_start, count, baseline) = entry;
        if now.saturating_duration_since(*window_start) >= self.window {
            // Close the window into the baselines and start a new one;
            // this observation opens the new window.
            let closed = *count as f64;
            baseline.push(closed);
            *window_start = now;
            *count = 1;
            self.fleet.push(closed);
            return self.check(source, now);
        }
        *count += 1;
        self.check(source, now)
    }

    fn check(&self, source: &str, _now: SimTime) -> Verdict {
        let (_, count, baseline) = &self.history[source];
        if *count < self.min_count {
            return Verdict::Normal;
        }
        let own = if baseline.is_primed() {
            Some(baseline.value())
        } else {
            None
        };
        let fleet = if self.fleet.is_primed() {
            Some(self.fleet.value())
        } else {
            None
        };
        let expected = match (own, fleet) {
            (Some(o), Some(f)) => o.max(f),
            (Some(o), None) => o,
            (None, Some(f)) => f,
            (None, None) => return Verdict::Normal,
        }
        .max(1.0);
        if (*count as f64) > self.factor * expected {
            Verdict::Anomalous(Severity::Alert)
        } else {
            Verdict::Normal
        }
    }

    /// Sources currently tracked.
    pub fn tracked_sources(&self) -> usize {
        self.history.len()
    }
}

/// Sequence-number gap/replay detector per device.
#[derive(Clone, Debug, Default)]
pub struct SeqMonitor {
    last_seq: BTreeMap<String, u64>,
    gaps: u64,
    replays: u64,
}

/// What a sequence observation revealed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqEvent {
    /// Expected next number.
    InOrder,
    /// Jumped forward by the contained count (lost messages or reset).
    Gap(u64),
    /// Sequence number at or below the last seen: replay or duplicate.
    ReplayOrDuplicate,
}

impl SeqMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        SeqMonitor::default()
    }

    /// Observes a device's sequence number.
    pub fn observe(&mut self, device: &str, seq: u64) -> SeqEvent {
        match self.last_seq.get(device).copied() {
            None => {
                self.last_seq.insert(device.to_owned(), seq);
                SeqEvent::InOrder
            }
            Some(last) if seq == last + 1 => {
                self.last_seq.insert(device.to_owned(), seq);
                SeqEvent::InOrder
            }
            Some(last) if seq > last + 1 => {
                self.last_seq.insert(device.to_owned(), seq);
                self.gaps += 1;
                SeqEvent::Gap(seq - last - 1)
            }
            Some(_) => {
                self.replays += 1;
                SeqEvent::ReplayOrDuplicate
            }
        }
    }

    /// `(gap events, replay/duplicate events)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.gaps, self.replays)
    }
}

/// Spatial cross-validation: compares each sensor's value against the
/// median of its peers measuring the same quantity. A sensor (or colluding
/// Sybil swarm) far from the robust consensus is flagged.
///
/// Returns the indices of outliers more than `threshold` from the median.
pub fn spatial_outliers(values: &[(usize, f64)], threshold: f64) -> Vec<usize> {
    if values.len() < 3 {
        return Vec::new(); // no robust consensus possible
    }
    let mut sorted: Vec<f64> = values.iter().map(|(_, v)| *v).collect();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    values
        .iter()
        .filter(|(_, v)| (v - median).abs() > threshold)
        .map(|(i, _)| *i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_validator() {
        let v = RangeValidator::soil_moisture();
        assert_eq!(v.check(0.25), Verdict::Normal);
        assert_eq!(v.check(0.0), Verdict::Normal);
        assert!(v.check(0.9).is_anomalous());
        assert!(v.check(-0.1).is_anomalous());
        assert!(v.check(f64::NAN).is_anomalous());
        assert!(v.check(f64::INFINITY).is_anomalous());
    }

    #[test]
    fn zscore_flags_step_change() {
        let mut d = ZScoreDetector::for_slow_signal();
        // Stable signal around 0.25 with small noise.
        let mut rng = swamp_sim::SimRng::seed_from(1);
        for _ in 0..50 {
            let v = 0.25 + rng.normal_with(0.0, 0.01);
            assert!(!d.observe(v).is_anomalous(), "baseline learning phase");
        }
        // Sudden replace-attack value.
        assert!(d.observe(0.55).is_anomalous());
        // Baseline not poisoned by the anomaly.
        assert!((d.baseline() - 0.25).abs() < 0.03);
    }

    #[test]
    fn zscore_tolerates_normal_variation() {
        let mut d = ZScoreDetector::for_slow_signal();
        let mut rng = swamp_sim::SimRng::seed_from(2);
        let mut false_alarms = 0;
        for _ in 0..500 {
            let v = 0.3 + rng.normal_with(0.0, 0.01);
            if d.observe(v).is_anomalous() {
                false_alarms += 1;
            }
        }
        assert!(false_alarms < 10, "false alarms {false_alarms}");
    }

    #[test]
    fn cusum_catches_slow_drift() {
        let mut d = CusumDetector::for_slow_signal();
        let mut rng = swamp_sim::SimRng::seed_from(3);
        // Train on a stationary signal.
        for _ in 0..30 {
            d.observe(0.25 + rng.normal_with(0.0, 0.01));
        }
        // Drift of +0.005/step: z-score per step ~0.5 SD, invisible to a
        // 3-sigma rule, but CUSUM accumulates.
        let mut caught_at = None;
        for step in 0..200 {
            let v = 0.25 + 0.005 * step as f64 + rng.normal_with(0.0, 0.01);
            if d.observe(v).is_anomalous() {
                caught_at = Some(step);
                break;
            }
        }
        let step = caught_at.expect("CUSUM must catch the drift");
        assert!(step < 60, "caught too late: step {step}");
    }

    #[test]
    fn cusum_quiet_on_stationary() {
        let mut d = CusumDetector::for_slow_signal();
        let mut rng = swamp_sim::SimRng::seed_from(4);
        let mut alarms = 0;
        for _ in 0..500 {
            if d.observe(0.3 + rng.normal_with(0.0, 0.02)).is_anomalous() {
                alarms += 1;
                d.reset();
            }
        }
        assert!(alarms <= 2, "alarms {alarms}");
    }

    #[test]
    fn rate_guard_flags_flood() {
        let mut g = RateGuard::new(SimDuration::from_secs(10), 5.0, 10);
        // Normal: 2 msgs/window for 10 windows.
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            g.observe("probe-1", now);
            g.observe("probe-1", now + SimDuration::from_secs(5));
            now += SimDuration::from_secs(10);
        }
        // Flood: 100 msgs in one window.
        let mut alerted = false;
        for i in 0..100 {
            let t = now + SimDuration::from_millis(i * 50);
            if g.observe("probe-1", t).is_anomalous() {
                alerted = true;
                break;
            }
        }
        assert!(alerted, "flood must trip the rate guard");
        assert_eq!(g.tracked_sources(), 1);
    }

    #[test]
    fn rate_guard_quiet_on_steady_traffic() {
        let mut g = RateGuard::new(SimDuration::from_secs(10), 5.0, 10);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            for i in 0..3u64 {
                assert!(!g
                    .observe("ws-1", now + SimDuration::from_secs(i))
                    .is_anomalous());
            }
            now += SimDuration::from_secs(10);
        }
    }

    #[test]
    fn seq_monitor_detects_gaps_and_replays() {
        let mut m = SeqMonitor::new();
        assert_eq!(m.observe("d", 0), SeqEvent::InOrder);
        assert_eq!(m.observe("d", 1), SeqEvent::InOrder);
        assert_eq!(m.observe("d", 5), SeqEvent::Gap(3));
        assert_eq!(m.observe("d", 3), SeqEvent::ReplayOrDuplicate);
        assert_eq!(m.observe("d", 5), SeqEvent::ReplayOrDuplicate);
        assert_eq!(m.observe("d", 6), SeqEvent::InOrder);
        assert_eq!(m.stats(), (1, 2));
        // Independent per device.
        assert_eq!(m.observe("e", 100), SeqEvent::InOrder);
    }

    #[test]
    fn spatial_outliers_found() {
        // Sensors 0..5 agree around 0.25; sensor 9 reports 0.6.
        let values = vec![
            (0, 0.24),
            (1, 0.26),
            (2, 0.25),
            (3, 0.27),
            (4, 0.23),
            (9, 0.60),
        ];
        assert_eq!(spatial_outliers(&values, 0.1), vec![9]);
        // Tight threshold flags more; loose flags none.
        assert!(spatial_outliers(&values, 0.5).is_empty());
    }

    #[test]
    fn spatial_needs_quorum() {
        assert!(spatial_outliers(&[(0, 1.0), (1, 99.0)], 0.1).is_empty());
    }

    #[test]
    fn sybil_majority_shifts_median_caveat() {
        // When Sybils OUTNUMBER honest sensors, the median moves to the
        // swarm — documenting why identity control (keystore/ledger) must
        // back up spatial consistency.
        let values = vec![
            (0, 0.25), // honest
            (1, 0.26), // honest
            (10, 0.90),
            (11, 0.91),
            (12, 0.89),
            (13, 0.90),
        ];
        let outliers = spatial_outliers(&values, 0.2);
        // The honest sensors get flagged instead.
        assert!(outliers.contains(&0) && outliers.contains(&1));
    }
}
