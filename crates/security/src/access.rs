//! Policy-based access control (PEP/PDP) with per-owner data governance.
//!
//! The paper: "The SWAMP architecture must deal with the control of data by
//! the farmers or producers, ensuring that each owner controls their data
//! and decides the access control to the data and the services." The PDP
//! here implements that: resources carry an owner; the owner is always
//! authorized; everything else requires an explicit policy; deny overrides
//! allow; default deny.

use std::collections::BTreeSet;
use std::fmt;

use crate::identity::TokenInfo;

/// Operations on platform resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Read context data / history.
    Read,
    /// Write context data (telemetry ingestion).
    Write,
    /// Command an actuator.
    Command,
    /// Administer (register devices, edit policies).
    Admin,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Action::Read => "read",
            Action::Write => "write",
            Action::Command => "command",
            Action::Admin => "admin",
        };
        f.write_str(s)
    }
}

/// A protected resource: an entity (device, farm dataset, service) with an
/// owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Resource {
    /// Resource identifier, matched by prefix in policies (e.g.
    /// `"urn:swamp:guaspari:probe:3"`).
    pub id: String,
    /// Owning principal (e.g. `"owner:guaspari"`).
    pub owner: String,
}

impl Resource {
    /// Creates a resource.
    pub fn new(id: impl Into<String>, owner: impl Into<String>) -> Self {
        Resource {
            id: id.into(),
            owner: owner.into(),
        }
    }
}

/// Policy effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Grant the action.
    Allow,
    /// Forbid the action (overrides any allow).
    Deny,
}

/// Who a policy applies to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubjectMatch {
    /// A specific subject string (`user:maria`, `client:gw`).
    Exact(String),
    /// Any subject holding a scope (`role:agronomist`).
    HasScope(String),
    /// Any authenticated subject.
    Any,
}

impl SubjectMatch {
    fn matches(&self, token: &TokenInfo) -> bool {
        match self {
            SubjectMatch::Exact(s) => &token.subject == s,
            SubjectMatch::HasScope(scope) => token.has_scope(scope),
            SubjectMatch::Any => true,
        }
    }
}

/// An access policy row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Policy {
    /// Allow or deny.
    pub effect: Effect,
    /// Subject selector.
    pub subject: SubjectMatch,
    /// Resource-id prefix this policy covers (`""` covers everything).
    pub resource_prefix: String,
    /// Actions covered.
    pub actions: BTreeSet<Action>,
}

impl Policy {
    /// Convenience constructor.
    pub fn new(
        effect: Effect,
        subject: SubjectMatch,
        resource_prefix: impl Into<String>,
        actions: &[Action],
    ) -> Self {
        Policy {
            effect,
            subject,
            resource_prefix: resource_prefix.into(),
            actions: actions.iter().copied().collect(),
        }
    }

    fn matches(&self, token: &TokenInfo, resource: &Resource, action: Action) -> bool {
        self.actions.contains(&action)
            && resource.id.starts_with(&self.resource_prefix)
            && self.subject.matches(token)
    }
}

/// The outcome of a decision, with the reason for auditability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Permitted because the subject owns the resource.
    PermitOwner,
    /// Permitted by an explicit allow policy.
    PermitPolicy,
    /// Denied by an explicit deny policy.
    DenyPolicy,
    /// Denied because nothing permitted it (default deny).
    DenyDefault,
}

impl Decision {
    /// Whether the action may proceed.
    pub fn is_permit(&self) -> bool {
        matches!(self, Decision::PermitOwner | Decision::PermitPolicy)
    }
}

/// The policy decision point.
///
/// # Example
/// ```
/// use swamp_security::access::*;
/// use swamp_security::identity::TokenInfo;
/// use std::collections::BTreeSet;
/// use swamp_sim::SimTime;
///
/// let mut pdp = Pdp::new();
/// pdp.add_policy(Policy::new(
///     Effect::Allow,
///     SubjectMatch::HasScope("role:agronomist".into()),
///     "urn:swamp:guaspari:",
///     &[Action::Read],
/// ));
///
/// let mut scopes = BTreeSet::new();
/// scopes.insert("role:agronomist".to_string());
/// let token = TokenInfo {
///     subject: "user:ana".into(), scopes, expires_at: SimTime::from_hours(1) };
/// let vineyard_probe = Resource::new("urn:swamp:guaspari:probe:1", "owner:guaspari");
/// assert!(pdp.decide(&token, &vineyard_probe, Action::Read).is_permit());
/// assert!(!pdp.decide(&token, &vineyard_probe, Action::Command).is_permit());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Pdp {
    policies: Vec<Policy>,
    decisions: u64,
    denials: u64,
}

impl Pdp {
    /// Creates an empty (default-deny except ownership) PDP.
    pub fn new() -> Self {
        Pdp::default()
    }

    /// Installs a policy.
    pub fn add_policy(&mut self, policy: Policy) {
        self.policies.push(policy);
    }

    /// Number of installed policies.
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    /// `(total decisions, denials)` counters for the audit dashboard.
    pub fn stats(&self) -> (u64, u64) {
        (self.decisions, self.denials)
    }

    /// Decides whether `token` may perform `action` on `resource`.
    ///
    /// Order: explicit deny > ownership > explicit allow > default deny.
    /// (A deny policy can therefore fence even the owner — e.g. a consortium
    /// lock on gates during maintenance.)
    pub fn decide(&mut self, token: &TokenInfo, resource: &Resource, action: Action) -> Decision {
        self.decisions += 1;
        let mut allowed = false;
        for p in &self.policies {
            if p.matches(token, resource, action) {
                match p.effect {
                    Effect::Deny => {
                        self.denials += 1;
                        return Decision::DenyPolicy;
                    }
                    Effect::Allow => allowed = true,
                }
            }
        }
        // Ownership: subject holds the owner scope or *is* the owner string.
        if token.subject == resource.owner || token.has_scope(&format!("role:{}", resource.owner)) {
            return Decision::PermitOwner;
        }
        if allowed {
            return Decision::PermitPolicy;
        }
        self.denials += 1;
        Decision::DenyDefault
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use swamp_sim::SimTime;

    fn token(subject: &str, scopes: &[&str]) -> TokenInfo {
        TokenInfo {
            subject: subject.to_owned(),
            scopes: scopes
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<BTreeSet<_>>(),
            expires_at: SimTime::from_hours(1),
        }
    }

    fn guaspari_probe() -> Resource {
        Resource::new("urn:swamp:guaspari:probe:1", "owner:guaspari")
    }

    #[test]
    fn default_deny() {
        let mut pdp = Pdp::new();
        let d = pdp.decide(&token("user:eve", &[]), &guaspari_probe(), Action::Read);
        assert_eq!(d, Decision::DenyDefault);
        assert!(!d.is_permit());
        assert_eq!(pdp.stats(), (1, 1));
    }

    #[test]
    fn owner_always_reads_their_data() {
        let mut pdp = Pdp::new();
        let owner = token("user:maria", &["role:owner:guaspari"]);
        for action in [Action::Read, Action::Write, Action::Command, Action::Admin] {
            assert_eq!(
                pdp.decide(&owner, &guaspari_probe(), action),
                Decision::PermitOwner,
                "{action}"
            );
        }
    }

    #[test]
    fn scoped_allow_policy() {
        let mut pdp = Pdp::new();
        pdp.add_policy(Policy::new(
            Effect::Allow,
            SubjectMatch::HasScope("role:agronomist".into()),
            "urn:swamp:guaspari:",
            &[Action::Read],
        ));
        let agro = token("user:ana", &["role:agronomist"]);
        assert_eq!(
            pdp.decide(&agro, &guaspari_probe(), Action::Read),
            Decision::PermitPolicy
        );
        // Not beyond the granted action.
        assert_eq!(
            pdp.decide(&agro, &guaspari_probe(), Action::Command),
            Decision::DenyDefault
        );
        // Not beyond the resource prefix (data stays apart between farms).
        let matopiba = Resource::new("urn:swamp:matopiba:probe:1", "owner:matopiba");
        assert_eq!(
            pdp.decide(&agro, &matopiba, Action::Read),
            Decision::DenyDefault
        );
    }

    #[test]
    fn deny_overrides_allow_and_ownership() {
        let mut pdp = Pdp::new();
        pdp.add_policy(Policy::new(
            Effect::Allow,
            SubjectMatch::Any,
            "urn:swamp:cbec:gate:",
            &[Action::Command],
        ));
        pdp.add_policy(Policy::new(
            Effect::Deny,
            SubjectMatch::Any,
            "urn:swamp:cbec:gate:7",
            &[Action::Command],
        ));
        let gate7 = Resource::new("urn:swamp:cbec:gate:7", "owner:cbec");
        let owner = token("user:op", &["role:owner:cbec"]);
        assert_eq!(
            pdp.decide(&owner, &gate7, Action::Command),
            Decision::DenyPolicy
        );
        // Sibling gate is still commandable.
        let gate8 = Resource::new("urn:swamp:cbec:gate:8", "owner:cbec");
        assert!(pdp.decide(&owner, &gate8, Action::Command).is_permit());
    }

    #[test]
    fn exact_subject_policy() {
        let mut pdp = Pdp::new();
        pdp.add_policy(Policy::new(
            Effect::Allow,
            SubjectMatch::Exact("client:scheduler".into()),
            "",
            &[Action::Command],
        ));
        assert!(pdp
            .decide(
                &token("client:scheduler", &[]),
                &guaspari_probe(),
                Action::Command
            )
            .is_permit());
        assert!(!pdp
            .decide(
                &token("client:other", &[]),
                &guaspari_probe(),
                Action::Command
            )
            .is_permit());
    }

    #[test]
    fn empty_prefix_covers_everything() {
        let mut pdp = Pdp::new();
        pdp.add_policy(Policy::new(
            Effect::Allow,
            SubjectMatch::Any,
            "",
            &[Action::Read],
        ));
        let r = Resource::new("anything", "owner:x");
        assert!(pdp
            .decide(&token("user:a", &[]), &r, Action::Read)
            .is_permit());
    }

    #[test]
    fn counters_track() {
        let mut pdp = Pdp::new();
        let t = token("user:eve", &[]);
        pdp.decide(&t, &guaspari_probe(), Action::Read);
        pdp.decide(&t, &guaspari_probe(), Action::Write);
        let owner = token("user:m", &["role:owner:guaspari"]);
        pdp.decide(&owner, &guaspari_probe(), Action::Read);
        assert_eq!(pdp.stats(), (3, 2));
        assert_eq!(pdp.policy_count(), 0);
    }
}
