//! Data anonymization for farm-data governance.
//!
//! The paper: "Data anonymization is another helpful technique for data
//! governance" — the threat being eavesdroppers manipulating commodity
//! markets from crop-yield data. Two mechanisms:
//!
//! - **Pseudonymization** — stable keyed pseudonyms for farm/device ids, so
//!   consortium-level analytics can correlate a farm's records over time
//!   without learning which farm it is.
//! - **k-anonymity** — generalizing quasi-identifier columns (area, yield)
//!   into ranges until every record is indistinguishable from at least
//!   `k−1` others, with the information loss and residual
//!   re-identification risk reported.

use swamp_crypto::hmac::hmac_sha256;
use swamp_crypto::sha256::to_hex;

/// A keyed pseudonymizer: same input + same key ⇒ same pseudonym; without
/// the key pseudonyms are one-way.
#[derive(Clone)]
pub struct Pseudonymizer {
    key: Vec<u8>,
}

impl std::fmt::Debug for Pseudonymizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Pseudonymizer { key: <redacted> }")
    }
}

impl Pseudonymizer {
    /// Creates a pseudonymizer with a secret key held by the data owner.
    pub fn new(key: &[u8]) -> Self {
        Pseudonymizer { key: key.to_vec() }
    }

    /// Produces a 12-hex-char stable pseudonym for an identifier.
    pub fn pseudonym(&self, id: &str) -> String {
        let tag = hmac_sha256(&self.key, id.as_bytes());
        format!("anon-{}", &to_hex(&tag)[..12])
    }
}

/// A record whose quasi-identifiers need k-anonymizing before sharing.
#[derive(Clone, Debug, PartialEq)]
pub struct YieldRecord {
    /// Original identity (pseudonymized in the output).
    pub farm_id: String,
    /// Farm area, ha (quasi-identifier: rare sizes identify farms).
    pub area_ha: f64,
    /// Seasonal yield, t/ha (the sensitive market-relevant value).
    pub yield_t_ha: f64,
}

/// A published, k-anonymized record.
#[derive(Clone, Debug, PartialEq)]
pub struct AnonymizedRecord {
    /// Keyed pseudonym of the farm.
    pub pseudonym: String,
    /// Generalized area interval `[lo, hi)`, ha.
    pub area_range: (f64, f64),
    /// Generalized yield interval `[lo, hi)`, t/ha.
    pub yield_range: (f64, f64),
}

/// Outcome of a k-anonymization run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnonymizationReport {
    /// The published records (same order as input).
    pub records: Vec<AnonymizedRecord>,
    /// Size of the smallest equivalence class.
    pub min_class_size: usize,
    /// Upper bound on re-identification probability (`1/min_class_size`).
    pub reidentification_risk: f64,
    /// Mean relative width of the generalized intervals (0 = exact values
    /// published, 1 = whole-domain intervals): the utility cost.
    pub information_loss: f64,
}

/// k-anonymizes records by coarsening `area` and `yield` into progressively
/// wider buckets until every occupied (area-bucket, yield-bucket) cell holds
/// at least `k` records.
///
/// # Errors
/// Returns `Err` if fewer than `k` records exist (no generalization can
/// ever achieve k-anonymity).
pub fn k_anonymize(
    records: &[YieldRecord],
    k: usize,
    pseudo: &Pseudonymizer,
) -> Result<AnonymizationReport, KAnonError> {
    if k == 0 {
        return Err(KAnonError::InvalidK);
    }
    if records.len() < k {
        return Err(KAnonError::TooFewRecords {
            have: records.len(),
            need: k,
        });
    }

    let area_min = records
        .iter()
        .map(|r| r.area_ha)
        .fold(f64::INFINITY, f64::min);
    let area_max = records
        .iter()
        .map(|r| r.area_ha)
        .fold(f64::NEG_INFINITY, f64::max);
    let yield_min = records
        .iter()
        .map(|r| r.yield_t_ha)
        .fold(f64::INFINITY, f64::min);
    let yield_max = records
        .iter()
        .map(|r| r.yield_t_ha)
        .fold(f64::NEG_INFINITY, f64::max);
    let area_span = (area_max - area_min).max(1e-9);
    let yield_span = (yield_max - yield_min).max(1e-9);

    // Try bucket counts from fine to coarse; the first grid where every
    // occupied cell has ≥ k members wins. A 1×1 grid always qualifies
    // (all ≥ k records land in one class), so the search cannot fail.
    let cell = |r: &YieldRecord, buckets: usize| {
        let a = (((r.area_ha - area_min) / area_span * buckets as f64) as usize).min(buckets - 1);
        let y =
            (((r.yield_t_ha - yield_min) / yield_span * buckets as f64) as usize).min(buckets - 1);
        (a, y)
    };
    let min_class_for = |buckets: usize| {
        let mut counts = std::collections::BTreeMap::new();
        for r in records {
            *counts.entry(cell(r, buckets)).or_insert(0usize) += 1;
        }
        counts.values().copied().min().unwrap_or(0)
    };
    let buckets = (1..=records.len())
        .rev()
        .find(|&b| min_class_for(b) >= k)
        .unwrap_or(1);
    let min_class = min_class_for(buckets);
    let area_w = area_span / buckets as f64;
    let yield_w = yield_span / buckets as f64;
    let out = records
        .iter()
        .map(|r| {
            let (a, y) = cell(r, buckets);
            AnonymizedRecord {
                pseudonym: pseudo.pseudonym(&r.farm_id),
                area_range: (
                    area_min + a as f64 * area_w,
                    area_min + (a + 1) as f64 * area_w,
                ),
                yield_range: (
                    yield_min + y as f64 * yield_w,
                    yield_min + (y + 1) as f64 * yield_w,
                ),
            }
        })
        .collect();
    let information_loss = ((area_w / area_span) + (yield_w / yield_span)) / 2.0;
    Ok(AnonymizationReport {
        records: out,
        min_class_size: min_class,
        reidentification_risk: 1.0 / min_class as f64,
        information_loss,
    })
}

/// Errors from [`k_anonymize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KAnonError {
    /// `k` was zero.
    InvalidK,
    /// Fewer records than `k`.
    TooFewRecords {
        /// Records supplied.
        have: usize,
        /// Required minimum.
        need: usize,
    },
}

impl std::fmt::Display for KAnonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KAnonError::InvalidK => f.write_str("k must be at least 1"),
            KAnonError::TooFewRecords { have, need } => {
                write!(f, "cannot {need}-anonymize {have} records")
            }
        }
    }
}
impl std::error::Error for KAnonError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<YieldRecord> {
        (0..n)
            .map(|i| YieldRecord {
                farm_id: format!("farm-{i}"),
                area_ha: 20.0 + (i % 7) as f64 * 15.0,
                yield_t_ha: 2.5 + (i % 5) as f64 * 0.8,
            })
            .collect()
    }

    #[test]
    fn pseudonyms_stable_and_key_dependent() {
        let p1 = Pseudonymizer::new(b"k1");
        let p2 = Pseudonymizer::new(b"k2");
        assert_eq!(p1.pseudonym("guaspari"), p1.pseudonym("guaspari"));
        assert_ne!(p1.pseudonym("guaspari"), p1.pseudonym("matopiba"));
        assert_ne!(p1.pseudonym("guaspari"), p2.pseudonym("guaspari"));
        assert!(p1.pseudonym("guaspari").starts_with("anon-"));
    }

    #[test]
    fn k_anonymity_holds() {
        let records = sample_records(40);
        let report = k_anonymize(&records, 5, &Pseudonymizer::new(b"k")).unwrap();
        assert!(report.min_class_size >= 5);
        assert!(report.reidentification_risk <= 0.2);
        assert_eq!(report.records.len(), 40);
        // Every original value lies inside its published interval.
        for (orig, anon) in records.iter().zip(&report.records) {
            assert!(anon.area_range.0 <= orig.area_ha && orig.area_ha <= anon.area_range.1 + 1e-9);
            assert!(
                anon.yield_range.0 <= orig.yield_t_ha
                    && orig.yield_t_ha <= anon.yield_range.1 + 1e-9
            );
        }
        // No raw farm ids leak.
        for anon in &report.records {
            assert!(!anon.pseudonym.contains("farm-"));
        }
    }

    #[test]
    fn higher_k_costs_more_information() {
        let records = sample_records(60);
        let p = Pseudonymizer::new(b"k");
        let loose = k_anonymize(&records, 2, &p).unwrap();
        let strict = k_anonymize(&records, 20, &p).unwrap();
        assert!(strict.information_loss >= loose.information_loss);
        assert!(strict.reidentification_risk <= loose.reidentification_risk);
    }

    #[test]
    fn too_few_records_rejected() {
        let records = sample_records(3);
        assert_eq!(
            k_anonymize(&records, 5, &Pseudonymizer::new(b"k")),
            Err(KAnonError::TooFewRecords { have: 3, need: 5 })
        );
    }

    #[test]
    fn k_equals_n_collapses_to_one_class() {
        let records = sample_records(10);
        let report = k_anonymize(&records, 10, &Pseudonymizer::new(b"k")).unwrap();
        assert_eq!(report.min_class_size, 10);
        // All intervals identical: full generalization.
        let first = &report.records[0];
        for r in &report.records {
            assert_eq!(r.area_range, first.area_range);
            assert_eq!(r.yield_range, first.yield_range);
        }
    }

    #[test]
    fn k1_is_identity_granularity() {
        let records = sample_records(12);
        let report = k_anonymize(&records, 1, &Pseudonymizer::new(b"k")).unwrap();
        assert!(report.min_class_size >= 1);
        // k=1 should not need full-domain intervals.
        assert!(report.information_loss < 1.0);
    }

    #[test]
    fn zero_k_rejected() {
        assert_eq!(
            k_anonymize(&sample_records(5), 0, &Pseudonymizer::new(b"k")),
            Err(KAnonError::InvalidK)
        );
    }

    #[test]
    fn identical_records_trivially_anonymous() {
        let records: Vec<YieldRecord> = (0..6)
            .map(|i| YieldRecord {
                farm_id: format!("f{i}"),
                area_ha: 50.0,
                yield_t_ha: 3.0,
            })
            .collect();
        let report = k_anonymize(&records, 6, &Pseudonymizer::new(b"k")).unwrap();
        assert_eq!(report.min_class_size, 6);
    }
}
