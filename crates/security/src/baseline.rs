//! Streaming behavioral baselining: per-device expected-sequence
//! correlation on the live ingest path.
//!
//! The paper calls behavioral baselining — "correlating the expected
//! sequence of events of an agricultural application" — the most
//! relevant security challenge. [`crate::behavior`] proves the idea on
//! offline windows; [`BehaviorBank`] promotes it to the data path: it
//! is fed one observation per accepted record from
//! `Platform::ingest_entities`, learns a per-device first-order symbol
//! model during a training phase, calibrates a per-device score
//! threshold on a held-out phase, and then flags devices whose rolling
//! transition score falls below their own baseline — all in O(1) per
//! observation, with no allocation after device admission.
//!
//! ## Symbols and phases
//!
//! Each observation is quantized into one of ten symbols: the delta
//! from the device's previous report (`JumpDown`, `Fall`, `Steady`,
//! `Rise`, `JumpUp` — dead zone [`STEADY_QUANTUM`], jump threshold
//! [`JUMP_QUANTUM`]) crossed with day/night. The irrigation cycle thus
//! reads `Fall(day)… JumpUp(day) Steady(night)…` and the attack
//! signatures are exactly the transitions the cycle never contains:
//! sustained night rises (tamper drift), back-to-back jumps (actuator
//! takeover), and devices with no trained model at all (Sybil
//! identities that joined after the training horizon).
//!
//! Phases are *observation-timestamp* based (`train_until`,
//! `calibrate_until`), not arrival based, so late-delivered backlogs
//! (drone contacts, partition heals) still train, and an attacker
//! cannot shift a device into a fresh training phase by delaying
//! frames. The default config trains forever — a passive bank that
//! never flags, keeping pre-E16 experiments bit-identical.
//!
//! ## Profile-error margin
//!
//! Partial observability (few probes per hectare) makes the *observed*
//! sequence an imperfect proxy for the true crop state:
//! [`CropProfiler::detection_margin`] quantifies the reconstruction
//! error as `2·field_sd·√(1−coverage)` (VWC units). That error flips
//! delta symbols near quantum boundaries, and each flip costs at most
//! one low-probability transition inside the scoring window, so the
//! score margin widens linearly in the error measured in steady-quanta:
//! `margin = floor + κ·e/Q_s` (see [`BaselineConfig::margin_for`]).

use std::collections::BTreeMap;

use swamp_obs::{Counter, Level, Obs, ObsSnapshot};
use swamp_sim::SimTime;

use crate::profile::CropProfiler;

/// Delta dead zone: deltas at or below this magnitude are `Steady`.
/// Matches the workload generator's quantum (sensor noise σ ≈ 0.0012
/// VWC keeps honest steady deltas inside it).
pub const STEADY_QUANTUM: f64 = 0.004;

/// Jump threshold: refill events move ~0.09 VWC in one round, ET
/// drawdown never exceeds ~0.01.
pub const JUMP_QUANTUM: f64 = 0.03;

/// Symbol alphabet size: 5 delta classes × day/night.
const ALPHABET: usize = 10;

/// Hard cap on the rolling scoring window (ring is inline).
const MAX_WINDOW: usize = 16;

/// Day is 06:00–18:00 of the simulated day (same convention as the
/// workload generator — the clock, not delivery time, decides).
fn is_day(at: SimTime) -> bool {
    let f = at.day_fraction();
    (0.25..0.75).contains(&f)
}

/// Quantized (delta, day) symbol in `0..ALPHABET`.
fn symbol(delta: f64, day: bool) -> u8 {
    let d = if delta > JUMP_QUANTUM {
        4 // JumpUp
    } else if delta > STEADY_QUANTUM {
        3 // Rise
    } else if delta >= -STEADY_QUANTUM {
        2 // Steady
    } else if delta >= -JUMP_QUANTUM {
        1 // Fall
    } else {
        0 // JumpDown
    };
    d + if day { 5 } else { 0 }
}

/// Configuration for [`BehaviorBank`]. The default is *passive*:
/// `train_until == SimTime::MAX` trains forever and never flags.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineConfig {
    /// Attribute carrying the behavioral signal; the platform feeds
    /// the bank only this attribute's values.
    pub signal_attr: String,
    /// Observations with timestamps before this train the per-device
    /// transition model.
    pub train_until: SimTime,
    /// Observations in `[train_until, calibrate_until)` calibrate the
    /// per-device score threshold (min rolling score − `margin`).
    pub calibrate_until: SimTime,
    /// Profile-error margin subtracted below the calibration minimum
    /// (log-probability units); see [`BaselineConfig::margin_for`].
    pub margin: f64,
    /// Rolling window length in transitions (clamped to 2..=16).
    pub window: usize,
    /// Consecutive sub-threshold windows required before flagging.
    pub strikes: u32,
    /// Observations an untrained (post-training) device may emit
    /// before being flagged as Sybil-suspect.
    pub grace: u32,
    /// Laplace smoothing mass for transition probabilities.
    pub alpha: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            signal_attr: "moisture_vwc".to_owned(),
            train_until: SimTime::MAX,
            calibrate_until: SimTime::MAX,
            margin: 1.0,
            window: 6,
            strikes: 3,
            grace: 4,
            alpha: 0.5,
        }
    }
}

impl BaselineConfig {
    /// A phased config: train until `train_until`, calibrate until
    /// `calibrate_until`, detect afterwards.
    pub fn phased(train_until: SimTime, calibrate_until: SimTime) -> Self {
        BaselineConfig {
            train_until,
            calibrate_until,
            ..BaselineConfig::default()
        }
    }

    /// The profile-error margin for a deployment observing `coverage`
    /// of its zones over a field with standard deviation `field_sd`
    /// (VWC units). The reconstruction error
    /// `e = CropProfiler::detection_margin(coverage, field_sd)` is
    /// converted into score units as `floor + κ · e / Q_s`: an error
    /// of one steady-quantum can flip roughly one symbol per window,
    /// which costs about one unit of mean log-probability.
    pub fn margin_for(coverage: f64, field_sd: f64) -> f64 {
        const FLOOR: f64 = 0.5;
        const KAPPA: f64 = 0.75;
        let e = CropProfiler::detection_margin(coverage, field_sd);
        FLOOR + KAPPA * (e / STEADY_QUANTUM)
    }

    /// Sets the margin from deployment coverage (builder-style).
    pub fn with_coverage(mut self, coverage: f64, field_sd: f64) -> Self {
        self.margin = BaselineConfig::margin_for(coverage, field_sd);
        self
    }
}

/// Per-observation verdict returned by [`BehaviorBank::ingest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineVerdict {
    /// Bank disabled, or the observation was out of order/duplicate
    /// and was not scored.
    Skipped,
    /// Training phase: the transition updated the model.
    Learning,
    /// Calibration phase: the transition updated the threshold.
    Calibrating,
    /// Detection phase, score at or above the device's threshold.
    Normal,
    /// Detection phase, rolling score below the device's threshold.
    Anomalous,
    /// The device has no trained model (first seen after training).
    Untrained,
}

/// Why a device was flagged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlagKind {
    /// Rolling transition score stayed below the calibrated threshold
    /// for `strikes` consecutive windows.
    Anomalous,
    /// Device appeared after the training horizon and kept emitting.
    Untrained,
}

impl FlagKind {
    /// Stable short name (fingerprints, fixtures).
    pub fn as_str(&self) -> &'static str {
        match self {
            FlagKind::Anomalous => "anomalous",
            FlagKind::Untrained => "untrained",
        }
    }
}

/// A raised per-device flag (at most one per device).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineFlag {
    pub at: SimTime,
    pub kind: FlagKind,
}

/// Per-device streaming state: transition counts (frozen when the
/// training phase ends), the rolling window of transition
/// log-probabilities, and the calibrated threshold.
#[derive(Clone, Debug)]
struct DeviceState {
    first_at: SimTime,
    last_at: SimTime,
    last_value: f64,
    last_sym: Option<u8>,
    observed: u32,
    trained: u32,
    counts: [u16; ALPHABET * ALPHABET],
    row_totals: [u32; ALPHABET],
    ring: [f64; MAX_WINDOW],
    ring_len: u8,
    ring_pos: u8,
    ring_sum: f64,
    calib_min: f64,
    threshold: f64,
    strikes: u32,
}

impl DeviceState {
    fn new(at: SimTime) -> Self {
        DeviceState {
            first_at: at,
            last_at: at,
            last_value: 0.0,
            last_sym: None,
            observed: 0,
            trained: 0,
            counts: [0; ALPHABET * ALPHABET],
            row_totals: [0; ALPHABET],
            ring: [0.0; MAX_WINDOW],
            ring_len: 0,
            ring_pos: 0,
            ring_sum: 0.0,
            calib_min: f64::INFINITY,
            threshold: f64::NAN,
            strikes: 0,
        }
    }

    /// Transition log-probability with unigram backoff (counts are
    /// frozen after training, so this is a pure read). The smoothing
    /// mass is spread according to how often the destination symbol
    /// occurs at all, not uniformly: uniform smoothing caps the
    /// penalty of any transition out of a rarely-seen symbol at
    /// `ln(1/ALPHABET)`, which lets a sustained anomaly (a chain of
    /// transitions between symbols the cycle never visits) hide right
    /// at that cap. Backing off to the unigram keeps honest one-off
    /// surprises cheap while a chain through never-trained symbols
    /// scores deeply negative at every step.
    fn log_prob(&self, prev: u8, next: u8, alpha: f64) -> f64 {
        let c = self.counts[prev as usize * ALPHABET + next as usize] as f64;
        let row = self.row_totals[prev as usize] as f64;
        let total = self.trained as f64;
        let unigram = (self.row_totals[next as usize] as f64 + 1.0) / (total + ALPHABET as f64);
        ((c + alpha * unigram) / (row + alpha)).ln()
    }

    /// Pushes one transition log-probability into the rolling window;
    /// returns the rolling mean once the window is full.
    fn push_score(&mut self, lp: f64, window: usize) -> Option<f64> {
        let w = window as u8;
        if self.ring_len == w {
            self.ring_sum -= self.ring[self.ring_pos as usize];
        } else {
            self.ring_len += 1;
        }
        self.ring[self.ring_pos as usize] = lp;
        self.ring_sum += lp;
        self.ring_pos = (self.ring_pos + 1) % w;
        (self.ring_len == w).then(|| self.ring_sum / window as f64)
    }
}

/// Typed handles for the bank's `security.baseline.*` instruments.
#[derive(Clone, Debug)]
struct BaselineInstruments {
    observed: Counter,
    trained: Counter,
    scored: Counter,
    out_of_order: Counter,
    anomalous: Counter,
    flagged: Counter,
    untrained_flagged: Counter,
}

impl BaselineInstruments {
    fn register(obs: &mut Obs) -> BaselineInstruments {
        BaselineInstruments {
            observed: obs.counter("security.baseline.observed"),
            trained: obs.counter("security.baseline.trained"),
            scored: obs.counter("security.baseline.scored"),
            out_of_order: obs.counter("security.baseline.out_of_order"),
            anomalous: obs.counter("security.baseline.anomalous"),
            flagged: obs.counter("security.baseline.flagged"),
            untrained_flagged: obs.counter("security.baseline.untrained_flagged"),
        }
    }
}

/// The streaming behavioral-baselining detector.
///
/// # Example
/// ```
/// use swamp_security::baseline::{BaselineConfig, BaselineVerdict, BehaviorBank};
/// use swamp_sim::{SimDuration, SimTime};
///
/// let cfg = BaselineConfig::phased(SimTime::from_days(2), SimTime::from_days(3));
/// let mut bank = BehaviorBank::new(cfg);
/// let v = bank.ingest(SimTime::from_secs(60), "probe-1", 0.25);
/// assert_eq!(v, BaselineVerdict::Learning);
/// ```
#[derive(Clone, Debug)]
pub struct BehaviorBank {
    config: BaselineConfig,
    enabled: bool,
    devices: BTreeMap<String, DeviceState>,
    flags: BTreeMap<String, BaselineFlag>,
    window: usize,
    obs: Obs,
    ins: BaselineInstruments,
}

impl Default for BehaviorBank {
    fn default() -> Self {
        BehaviorBank::new(BaselineConfig::default())
    }
}

impl BehaviorBank {
    /// Creates a bank with the given phase/margin configuration.
    pub fn new(config: BaselineConfig) -> Self {
        let mut obs = Obs::new();
        let ins = BaselineInstruments::register(&mut obs);
        let window = config.window.clamp(2, MAX_WINDOW);
        BehaviorBank {
            config,
            enabled: true,
            devices: BTreeMap::new(),
            flags: BTreeMap::new(),
            window,
            obs,
            ins,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Attribute name the platform should feed (`moisture_vwc` by
    /// default).
    pub fn signal_attr(&self) -> &str {
        &self.config.signal_attr
    }

    /// Disables (or re-enables) the whole bank. Disabled ingest is a
    /// single branch — the muted baseline for overhead measurement.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the bank is processing observations.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Snapshot of the `security.baseline.*` instruments.
    pub fn observe(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Enables or disables instrumentation only (the detector keeps
    /// running; for uninstrumented baselines).
    pub fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }

    /// All raised flags, keyed by device id (at most one per device).
    pub fn flags(&self) -> &BTreeMap<String, BaselineFlag> {
        &self.flags
    }

    /// Flagged device ids, sorted.
    pub fn flagged(&self) -> Vec<&str> {
        self.flags.keys().map(String::as_str).collect()
    }

    /// Devices currently tracked.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Per-device scoring diagnostics: `(trained transitions,
    /// calibration minimum, frozen threshold, current rolling score)`.
    /// The threshold is NaN before the device's first detection-phase
    /// observation; the rolling score is NaN until the window fills.
    pub fn device_stats(&self, device: &str) -> Option<(u32, f64, f64, f64)> {
        self.devices.get(device).map(|s| {
            let rolling = if s.ring_len as usize == self.window {
                s.ring_sum / self.window as f64
            } else {
                f64::NAN
            };
            (s.trained, s.calib_min, s.threshold, rolling)
        })
    }

    /// Feeds one observation of the behavioral signal. O(1), no
    /// allocation after device admission; out-of-order or duplicate
    /// timestamps (per device) are counted and skipped, so a deduped
    /// or replayed record can never double-alert.
    pub fn ingest(&mut self, at: SimTime, device: &str, value: f64) -> BaselineVerdict {
        if !self.enabled {
            return BaselineVerdict::Skipped;
        }
        self.obs.inc(self.ins.observed);
        if !self.devices.contains_key(device) {
            self.admit(at, device);
        }
        let Some(state) = self.devices.get_mut(device) else {
            return BaselineVerdict::Skipped;
        };
        if state.observed > 0 && at <= state.last_at {
            self.obs.inc(self.ins.out_of_order);
            return BaselineVerdict::Skipped;
        }

        let training = at < self.config.train_until;
        let calibrating = !training && at < self.config.calibrate_until;

        if state.observed == 0 {
            state.observed = 1;
            state.last_at = at;
            state.last_value = value;
            return if training {
                BaselineVerdict::Learning
            } else if calibrating {
                BaselineVerdict::Calibrating
            } else {
                BaselineVerdict::Normal
            };
        }

        let delta = value - state.last_value;
        let sym = symbol(delta, is_day(at));
        let prev = state.last_sym;
        state.last_sym = Some(sym);
        state.last_at = at;
        state.last_value = value;
        state.observed = state.observed.saturating_add(1);

        if training {
            if let Some(p) = prev {
                state.counts[p as usize * ALPHABET + sym as usize] =
                    state.counts[p as usize * ALPHABET + sym as usize].saturating_add(1);
                state.row_totals[p as usize] += 1;
                state.trained = state.trained.saturating_add(1);
                self.obs.inc(self.ins.trained);
            }
            return BaselineVerdict::Learning;
        }

        // Post-training. Devices with no trained model are
        // Sybil-suspect after `grace` observations.
        if state.trained == 0 {
            if state.first_at >= self.config.train_until
                && state.observed >= self.config.grace
                && !self.flags.contains_key(device)
            {
                self.raise_flag(at, device, FlagKind::Untrained);
            }
            return BaselineVerdict::Untrained;
        }

        let Some(p) = prev else {
            return if calibrating {
                BaselineVerdict::Calibrating
            } else {
                BaselineVerdict::Normal
            };
        };
        let lp = state.log_prob(p, sym, self.config.alpha);
        self.obs.inc(self.ins.scored);
        let rolling = state.push_score(lp, self.window);

        if calibrating {
            if let Some(score) = rolling {
                if score < state.calib_min {
                    state.calib_min = score;
                }
            }
            return BaselineVerdict::Calibrating;
        }

        // Detection phase: freeze the threshold on first entry.
        if state.threshold.is_nan() {
            state.threshold = if state.calib_min.is_finite() {
                state.calib_min - self.config.margin
            } else {
                // Too few calibration observations to hold this
                // device to a threshold — stay conservative.
                f64::NEG_INFINITY
            };
        }
        let Some(score) = rolling else {
            return BaselineVerdict::Normal;
        };
        if score < state.threshold {
            self.obs.inc(self.ins.anomalous);
            state.strikes = state.strikes.saturating_add(1);
            if state.strikes >= self.config.strikes && !self.flags.contains_key(device) {
                self.raise_flag(at, device, FlagKind::Anomalous);
            }
            BaselineVerdict::Anomalous
        } else {
            state.strikes = 0;
            BaselineVerdict::Normal
        }
    }

    /// Admits a new device (the only allocation on the ingest path).
    fn admit(&mut self, at: SimTime, device: &str) {
        self.devices.insert(device.to_owned(), DeviceState::new(at));
    }

    /// Raises the one-per-device flag and its instruments/event.
    fn raise_flag(&mut self, at: SimTime, device: &str, kind: FlagKind) {
        self.obs.inc(self.ins.flagged);
        if kind == FlagKind::Untrained {
            self.obs.inc(self.ins.untrained_flagged);
        }
        self.obs.event(
            Level::Warn,
            "security.baseline.flag",
            &format!("{device} {}", kind.as_str()),
        );
        self.flags
            .insert(device.to_owned(), BaselineFlag { at, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::{SimDuration, SimRng};

    const STEP: SimDuration = SimDuration::from_mins(30);

    fn phased() -> BaselineConfig {
        BaselineConfig::phased(SimTime::from_days(4), SimTime::from_days(6))
    }

    /// Drives a synthetic irrigation cycle (day falls, refill jump,
    /// night steady) for `rounds` rounds starting at round `from`.
    fn drive_cycle(
        bank: &mut BehaviorBank,
        device: &str,
        from: usize,
        rounds: usize,
        rng: &mut SimRng,
    ) -> Vec<BaselineVerdict> {
        let mut v = 0.26;
        let mut out = Vec::new();
        for r in from..from + rounds {
            let at = SimTime::from_secs(60) + STEP * r as u64;
            if is_day(at) {
                v -= 0.007;
                if v < 0.17 {
                    v += 0.09;
                }
            } else {
                v -= 0.001;
            }
            let sensed = v + rng.normal_with(0.0, 0.0012);
            out.push(bank.ingest(at, device, sensed));
        }
        out
    }

    #[test]
    fn symbols_cover_the_alphabet() {
        assert_eq!(symbol(0.0, false), 2);
        assert_eq!(symbol(0.0, true), 7);
        assert_eq!(symbol(0.01, true), 8);
        assert_eq!(symbol(-0.01, true), 6);
        assert_eq!(symbol(0.05, false), 4);
        assert_eq!(symbol(-0.05, true), 5);
    }

    #[test]
    fn normal_cycle_never_flags() {
        let mut bank = BehaviorBank::new(phased());
        let mut rng = SimRng::seed_from(1);
        let verdicts = drive_cycle(&mut bank, "p", 0, 48 * 8, &mut rng);
        assert!(bank.flags().is_empty(), "honest device flagged");
        assert!(verdicts.contains(&BaselineVerdict::Learning));
        assert!(verdicts.contains(&BaselineVerdict::Calibrating));
        assert!(verdicts.contains(&BaselineVerdict::Normal));
    }

    #[test]
    fn takeover_jumps_are_flagged() {
        let mut bank = BehaviorBank::new(phased());
        let mut rng = SimRng::seed_from(2);
        drive_cycle(&mut bank, "p", 0, 48 * 6 + 12, &mut rng);
        // Attacker forces irrigation on: repeated upward jumps.
        let mut v: f64 = 0.30;
        let mut flagged = false;
        for r in 0..12 {
            let at = SimTime::from_secs(60) + STEP * (48 * 6 + 12 + r) as u64;
            v = (v + 0.045).min(0.55);
            let verdict = bank.ingest(at, "p", v + rng.normal_with(0.0, 0.0012));
            flagged |= verdict == BaselineVerdict::Anomalous;
        }
        assert!(flagged, "takeover windows must score anomalous");
        assert_eq!(
            bank.flags().get("p").map(|f| f.kind),
            Some(FlagKind::Anomalous)
        );
    }

    #[test]
    fn untrained_device_is_sybil_suspect() {
        let mut bank = BehaviorBank::new(phased());
        let mut rng = SimRng::seed_from(3);
        drive_cycle(&mut bank, "honest", 0, 48 * 6 + 4, &mut rng);
        // A new identity appears after training and keeps emitting.
        let mut last = BaselineVerdict::Skipped;
        for r in 0..8 {
            let at = SimTime::from_days(6) + STEP * r as u64;
            last = bank.ingest(at, "sybil-1", 0.2 + 0.01 * r as f64);
        }
        assert_eq!(last, BaselineVerdict::Untrained);
        assert_eq!(
            bank.flags().get("sybil-1").map(|f| f.kind),
            Some(FlagKind::Untrained)
        );
        assert!(!bank.flags().contains_key("honest"));
    }

    #[test]
    fn out_of_order_and_duplicates_are_skipped_once_flag_is_sticky() {
        let mut bank = BehaviorBank::new(phased());
        let at = SimTime::from_days(1);
        assert_eq!(bank.ingest(at, "p", 0.25), BaselineVerdict::Learning);
        assert_eq!(bank.ingest(at, "p", 0.25), BaselineVerdict::Skipped);
        assert_eq!(
            bank.ingest(at - SimDuration::from_secs(1), "p", 0.25),
            BaselineVerdict::Skipped
        );
        let snap = bank.observe();
        assert_eq!(snap.counter("security.baseline.out_of_order").unwrap(), 2);
        assert_eq!(snap.counter("security.baseline.observed").unwrap(), 3);
    }

    #[test]
    fn disabled_bank_is_inert_and_default_is_passive() {
        let mut bank = BehaviorBank::default();
        // Default config trains forever: never flags.
        let mut rng = SimRng::seed_from(4);
        drive_cycle(&mut bank, "p", 0, 200, &mut rng);
        assert!(bank.flags().is_empty());
        let mut muted = BehaviorBank::new(phased());
        muted.set_enabled(false);
        assert_eq!(
            muted.ingest(SimTime::ZERO, "p", 0.2),
            BaselineVerdict::Skipped
        );
        assert_eq!(muted.device_count(), 0);
        assert_eq!(
            muted
                .observe()
                .counter("security.baseline.observed")
                .unwrap(),
            0
        );
    }

    #[test]
    fn margin_widens_with_sparser_coverage() {
        let full = BaselineConfig::margin_for(1.0, 0.04);
        let half = BaselineConfig::margin_for(0.5, 0.04);
        let sparse = BaselineConfig::margin_for(0.1, 0.04);
        assert!(full < half && half < sparse);
        assert!((full - 0.5).abs() < 1e-9, "full coverage → floor margin");
    }

    #[test]
    fn flag_is_raised_once_per_device() {
        let mut bank = BehaviorBank::new(phased());
        let mut rng = SimRng::seed_from(5);
        drive_cycle(&mut bank, "p", 0, 48 * 6, &mut rng);
        let mut v: f64 = 0.30;
        for r in 0..40 {
            let at = SimTime::from_days(6) + SimDuration::from_secs(1) + STEP * r as u64;
            v = (v + 0.045).min(0.55);
            if v >= 0.55 {
                v = 0.30; // keep jumping
            }
            bank.ingest(at, "p", v);
        }
        let snap = bank.observe();
        assert_eq!(snap.counter("security.baseline.flagged").unwrap(), 1);
        assert!(snap.counter("security.baseline.anomalous").unwrap() > 1);
    }
}
