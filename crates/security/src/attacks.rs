//! Attacker implementations for the paper's threat model.
//!
//! Every threat §III of the paper names is implemented as a programmable
//! adversary operating on the same substrates as legitimate components:
//!
//! - [`DosFlooder`] — floods a target node with traffic ("a DoS attack in
//!   the sensors, irrigation actuators or in the distribution system").
//! - [`SensorTamper`] — perturbs sensor values in flight ("changes in the
//!   values of some sensors … may cause systems or decision makers to take
//!   wrong actions").
//! - [`SybilSwarm`] — fake identities publishing fabricated NDVI/telemetry
//!   ("a drone or sensor node performing the Sybil attack could send fake
//!   images and false measurements").
//! - [`Eavesdropper`] — a passive wire tap trying to read farm data
//!   ("using eavesdropping, intruders may have access to private data …
//!   and even manipulate the commodity markets").
//! - [`ReplayAttacker`] — captures and re-injects sealed frames.
//! - [`RogueNode`] — an unauthorized node publishing as an unregistered
//!   device ("an unauthorized node in the network may send false
//!   information about the crop").

use swamp_codec::json::Json;
use swamp_net::message::{Message, NodeId};
use swamp_net::network::{Network, SendError};
use swamp_sim::{SimDuration, SimRng, SimTime};

/// Flooding DoS attacker: sends `rate_per_sec` junk messages to a target.
#[derive(Clone, Debug)]
pub struct DosFlooder {
    /// The attacker's network node.
    pub node: NodeId,
    /// The victim node.
    pub target: NodeId,
    /// Messages per second.
    pub rate_per_sec: f64,
    /// Payload size per message, bytes.
    pub payload_bytes: usize,
    sent: u64,
    blocked: u64,
}

impl DosFlooder {
    /// Creates a flooder.
    ///
    /// # Panics
    /// Panics if the rate is not positive.
    pub fn new(
        node: impl Into<NodeId>,
        target: impl Into<NodeId>,
        rate_per_sec: f64,
        payload_bytes: usize,
    ) -> Self {
        assert!(rate_per_sec > 0.0);
        DosFlooder {
            node: node.into(),
            target: target.into(),
            rate_per_sec,
            payload_bytes,
            sent: 0,
            blocked: 0,
        }
    }

    /// Emits the flood for the window `[from, to)`.
    pub fn flood_window(&mut self, net: &mut Network, from: SimTime, to: SimTime) {
        let interval = SimDuration::from_secs_f64(1.0 / self.rate_per_sec)
            .as_millis()
            .max(1);
        let mut t = from;
        while t < to {
            let msg = Message::new("flood/junk", vec![0xAA; self.payload_bytes]);
            match net.send(t, self.node.clone(), self.target.clone(), msg) {
                Ok(_) => self.sent += 1,
                Err(SendError::Denied) => self.blocked += 1,
                Err(_) => self.blocked += 1,
            }
            t += SimDuration::from_millis(interval);
        }
    }

    /// `(messages entering the network, messages blocked at the SDN)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.blocked)
    }
}

/// How a tamper attacker distorts a sensor value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TamperMode {
    /// Add a constant offset.
    Offset(f64),
    /// Multiply by a factor.
    Scale(f64),
    /// Replace with a fixed value.
    Replace(f64),
    /// Add slowly growing drift (stealthy): `rate` per day since `start`.
    Drift {
        /// Drift rate per day.
        rate_per_day: f64,
        /// When the drift started.
        start: SimTime,
    },
}

/// In-path sensor-value tampering (compromised device or gateway MITM).
#[derive(Clone, Debug)]
pub struct SensorTamper {
    mode: TamperMode,
    tampered: u64,
}

impl SensorTamper {
    /// Creates a tamperer.
    pub fn new(mode: TamperMode) -> Self {
        SensorTamper { mode, tampered: 0 }
    }

    /// Applies the distortion to one value.
    pub fn distort(&mut self, value: f64, now: SimTime) -> f64 {
        self.tampered += 1;
        match self.mode {
            TamperMode::Offset(o) => value + o,
            TamperMode::Scale(s) => value * s,
            TamperMode::Replace(v) => v,
            TamperMode::Drift {
                rate_per_day,
                start,
            } => {
                let days = now.saturating_duration_since(start).as_days_f64();
                value + rate_per_day * days
            }
        }
    }

    /// Values tampered so far.
    pub fn count(&self) -> u64 {
        self.tampered
    }
}

/// Sybil attacker: a swarm of fabricated identities reporting fake values.
#[derive(Clone, Debug)]
pub struct SybilSwarm {
    /// Fabricated device identities.
    pub identities: Vec<String>,
    /// The fake value the swarm colludes on (e.g. inflated NDVI).
    pub fake_value: f64,
    /// Per-identity noise so the collusion is not byte-identical.
    pub noise_sd: f64,
}

impl SybilSwarm {
    /// Creates a swarm of `count` identities colluding on `fake_value`.
    pub fn new(prefix: &str, count: usize, fake_value: f64, noise_sd: f64) -> Self {
        SybilSwarm {
            identities: (0..count).map(|i| format!("{prefix}-sybil-{i}")).collect(),
            fake_value,
            noise_sd,
        }
    }

    /// Produces one round of fake per-identity reports.
    pub fn fabricate_reports(&self, rng: &mut SimRng) -> Vec<(String, f64)> {
        self.identities
            .iter()
            .map(|id| {
                (
                    id.clone(),
                    self.fake_value + rng.normal_with(0.0, self.noise_sd),
                )
            })
            .collect()
    }
}

/// What the eavesdropper recovered from a captured transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Interception {
    /// Payload parsed as JSON: full information leak.
    Plaintext(String),
    /// Payload unintelligible (encrypted or binary).
    Opaque {
        /// Bytes observed.
        len: usize,
    },
}

/// Passive eavesdropper over a network tap: tries to read each captured
/// payload as plaintext JSON (the paper's market-manipulation scenario).
#[derive(Clone, Debug, Default)]
pub struct Eavesdropper {
    intercepted: Vec<Interception>,
}

impl Eavesdropper {
    /// Creates an eavesdropper with an empty capture log.
    pub fn new() -> Self {
        Eavesdropper::default()
    }

    /// Processes captured payloads (from `Network::tap_captures`).
    pub fn process<'a>(&mut self, payloads: impl IntoIterator<Item = &'a [u8]>) {
        for p in payloads {
            match std::str::from_utf8(p)
                .ok()
                .and_then(|s| Json::parse(s).ok())
            {
                Some(json) => self
                    .intercepted
                    .push(Interception::Plaintext(json.to_compact_string())),
                None => self.intercepted.push(Interception::Opaque { len: p.len() }),
            }
        }
    }

    /// Everything intercepted so far.
    pub fn intercepted(&self) -> &[Interception] {
        &self.intercepted
    }

    /// Fraction of captures that leaked plaintext, `[0,1]`.
    pub fn leak_fraction(&self) -> f64 {
        if self.intercepted.is_empty() {
            return 0.0;
        }
        let leaks = self
            .intercepted
            .iter()
            .filter(|i| matches!(i, Interception::Plaintext(_)))
            .count();
        leaks as f64 / self.intercepted.len() as f64
    }
}

/// Replay attacker: captures sealed frames and re-injects them later.
#[derive(Clone, Debug, Default)]
pub struct ReplayAttacker {
    captured: Vec<Vec<u8>>,
}

impl ReplayAttacker {
    /// Creates an attacker with an empty capture buffer.
    pub fn new() -> Self {
        ReplayAttacker::default()
    }

    /// Captures a frame seen on the wire.
    pub fn capture(&mut self, frame: &[u8]) {
        self.captured.push(frame.to_vec());
    }

    /// Number of captured frames.
    pub fn captured_count(&self) -> usize {
        self.captured.len()
    }

    /// Re-injects every captured frame to the target via the attacker node.
    /// Returns how many entered the network.
    pub fn replay_all(
        &self,
        net: &mut Network,
        now: SimTime,
        from: &NodeId,
        target: &NodeId,
        topic: &str,
    ) -> usize {
        let mut injected = 0;
        for frame in &self.captured {
            if net
                .send(
                    now,
                    from.clone(),
                    target.clone(),
                    Message::new(topic.to_owned(), frame.clone()),
                )
                .is_ok()
            {
                injected += 1;
            }
        }
        injected
    }
}

/// A rogue (unregistered) node publishing fabricated crop telemetry.
#[derive(Clone, Debug)]
pub struct RogueNode {
    /// The rogue's network node.
    pub node: NodeId,
    /// The device identity it claims (never provisioned in the keystore).
    pub claimed_device: String,
}

impl RogueNode {
    /// Creates a rogue node claiming a device identity.
    pub fn new(node: impl Into<NodeId>, claimed_device: impl Into<String>) -> Self {
        RogueNode {
            node: node.into(),
            claimed_device: claimed_device.into(),
        }
    }

    /// Publishes a fabricated plaintext telemetry message (the rogue has no
    /// provisioned key, so it cannot produce a valid sealed frame).
    pub fn publish_fake(
        &self,
        net: &mut Network,
        now: SimTime,
        broker: &NodeId,
        quantity: &str,
        value: f64,
    ) -> Result<(), SendError> {
        let body = Json::object([
            ("device", Json::from(self.claimed_device.as_str())),
            ("quantity", Json::from(quantity)),
            ("value", Json::from(value)),
        ]);
        net.send(
            now,
            self.node.clone(),
            broker.clone(),
            Message::new(
                format!("telemetry/{}", self.claimed_device),
                body.to_compact_string().into_bytes(),
            ),
        )
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_net::link::LinkSpec;
    use swamp_net::sdn::{FlowAction, FlowMatch};

    fn net_with(nodes: &[&str]) -> Network {
        let mut net = Network::new(5);
        for n in nodes {
            net.add_node(*n);
        }
        for w in nodes.windows(2) {
            net.connect(w[0], w[1], LinkSpec::farm_lan());
        }
        net
    }

    #[test]
    fn flooder_saturates_then_sdn_blocks() {
        let mut net = net_with(&["attacker", "broker"]);
        let mut dos = DosFlooder::new("attacker", "broker", 100.0, 64);
        dos.flood_window(&mut net, SimTime::ZERO, SimTime::from_secs(2));
        let (sent, blocked) = dos.stats();
        assert_eq!(sent, 200);
        assert_eq!(blocked, 0);

        // Controller installs a deny rule: the rest of the flood is blocked.
        net.flow_table_mut()
            .install(10, FlowMatch::from_src("attacker"), FlowAction::Deny);
        dos.flood_window(&mut net, SimTime::from_secs(2), SimTime::from_secs(3));
        let (sent2, blocked2) = dos.stats();
        assert_eq!(sent2, 200);
        assert_eq!(blocked2, 100);
    }

    #[test]
    fn tamper_modes() {
        let now = SimTime::from_days(10);
        assert_eq!(
            SensorTamper::new(TamperMode::Offset(0.1)).distort(0.2, now),
            0.30000000000000004
        );
        assert_eq!(
            SensorTamper::new(TamperMode::Scale(2.0)).distort(0.2, now),
            0.4
        );
        assert_eq!(
            SensorTamper::new(TamperMode::Replace(0.9)).distort(0.2, now),
            0.9
        );
        let mut drift = SensorTamper::new(TamperMode::Drift {
            rate_per_day: 0.01,
            start: SimTime::from_days(5),
        });
        let v = drift.distort(0.2, now);
        assert!((v - 0.25).abs() < 1e-9);
        assert_eq!(drift.count(), 1);
    }

    #[test]
    fn sybil_swarm_colludes() {
        let swarm = SybilSwarm::new("drone", 20, 0.9, 0.01);
        assert_eq!(swarm.identities.len(), 20);
        let mut rng = SimRng::seed_from(1);
        let reports = swarm.fabricate_reports(&mut rng);
        assert_eq!(reports.len(), 20);
        let mean: f64 = reports.iter().map(|(_, v)| v).sum::<f64>() / 20.0;
        assert!((mean - 0.9).abs() < 0.02);
        // Distinct identities.
        let unique: std::collections::BTreeSet<_> = reports.iter().map(|(id, _)| id).collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn eavesdropper_reads_plaintext_not_ciphertext() {
        let mut eve = Eavesdropper::new();
        let plain = br#"{"yield_t_ha": 3.4, "farm": "guaspari"}"#;
        let sealed = swamp_crypto::SecretKey::derive(b"k", "link").seal(&[0u8; 12], b"", plain);
        eve.process([plain.as_slice(), sealed.as_slice()]);
        assert_eq!(eve.intercepted().len(), 2);
        assert!(matches!(eve.intercepted()[0], Interception::Plaintext(_)));
        assert!(matches!(eve.intercepted()[1], Interception::Opaque { .. }));
        assert!((eve.leak_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eavesdropper_empty_leaks_nothing() {
        let eve = Eavesdropper::new();
        assert_eq!(eve.leak_fraction(), 0.0);
    }

    #[test]
    fn replay_attacker_reinjects() {
        let mut net = net_with(&["attacker", "gateway"]);
        let mut replay = ReplayAttacker::new();
        replay.capture(b"sealed-frame-1");
        replay.capture(b"sealed-frame-2");
        assert_eq!(replay.captured_count(), 2);
        let injected = replay.replay_all(
            &mut net,
            SimTime::ZERO,
            &"attacker".into(),
            &"gateway".into(),
            "telemetry/probe-1",
        );
        assert_eq!(injected, 2);
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(&"gateway".into()), 2);
    }

    #[test]
    fn rogue_node_publishes_parseable_fake() {
        let mut net = net_with(&["rogue", "broker"]);
        let rogue = RogueNode::new("rogue", "probe-99");
        rogue
            .publish_fake(&mut net, SimTime::ZERO, &"broker".into(), "ndvi", 0.95)
            .unwrap();
        net.advance_to(SimTime::from_secs(1));
        let d = net.poll(&"broker".into()).unwrap();
        let json = Json::parse(std::str::from_utf8(&d.message.payload).unwrap()).unwrap();
        assert_eq!(json.get("device").unwrap().as_str(), Some("probe-99"));
        assert_eq!(json.get("value").unwrap().as_f64(), Some(0.95));
    }
}
