//! Property-based differential tests for the hierarchical timer wheel:
//! for arbitrary schedule/advance interleavings the wheel must fire the
//! same (deadline, id) multiset as a naive scan-everything model.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_fog::timer_wheel::TimerWheel;
use swamp_sim::SimTime;

/// One scripted operation: schedule an entry `delta` past the current
/// clock (`None` = [`SimTime::MAX`]), or advance the clock by `step`.
#[derive(Clone, Debug)]
enum Op {
    Schedule(Option<u64>),
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Deltas spanning every level, the overflow region and the past
        // (the wheel treats a past deadline as due immediately).
        (0u64..(1 << 27)).prop_map(|d| Op::Schedule(Some(d))),
        (0u64..256).prop_map(|d| Op::Schedule(Some(d))),
        Just(Op::Schedule(None)),
        // Advances from 1 ms crawls to multi-rotation leaps.
        (0u64..(1 << 24)).prop_map(Op::Advance),
        (1u64..64).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_matches_naive_scan(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
        let mut naive: Vec<(u64, u32)> = Vec::new();
        let mut now = 0u64;
        let mut next_id = 0u32;
        for op in &ops {
            match *op {
                Op::Schedule(delta) => {
                    let deadline = match delta {
                        Some(d) => SimTime::from_millis(now.saturating_add(d)),
                        None => SimTime::MAX,
                    };
                    wheel.schedule(deadline, next_id);
                    naive.push((deadline.as_millis(), next_id));
                    next_id += 1;
                }
                Op::Advance(step) => {
                    now = now.saturating_add(step);
                    let mut out = Vec::new();
                    wheel.advance_into(SimTime::from_millis(now), &mut out);
                    let mut fired: Vec<(u64, u32)> =
                        out.into_iter().map(|(d, p)| (d.as_millis(), p)).collect();
                    fired.sort_unstable();
                    let mut expected: Vec<(u64, u32)> =
                        naive.iter().copied().filter(|&(d, _)| d <= now).collect();
                    naive.retain(|&(d, _)| d > now);
                    expected.sort_unstable();
                    prop_assert_eq!(fired, expected, "diverged at t={}ms", now);
                }
            }
            prop_assert_eq!(wheel.len(), naive.len());
        }
        // Terminal drain: nothing may be lost, MAX sentinels included.
        let mut out = Vec::new();
        wheel.advance_into(SimTime::MAX, &mut out);
        prop_assert_eq!(out.len(), naive.len());
        prop_assert!(wheel.is_empty());
    }
}
