//! Seeded differential suite for the hierarchical timer wheel: against a
//! naive scan-everything model, the wheel must fire exactly the same
//! (deadline, id) multiset at every advance, for random deadline sets
//! spanning every level, the overflow region and [`SimTime::MAX`]. This
//! is the always-on twin of the `proptest-tests` suite — it runs in plain
//! CI, where the offline build cannot resolve proptest.

use swamp_fog::timer_wheel::TimerWheel;
use swamp_sim::{SimRng, SimTime};

/// The obvious-by-inspection model: keep every entry, scan on advance.
struct NaiveTimers {
    now_ms: u64,
    entries: Vec<(u64, u32)>,
}

impl NaiveTimers {
    fn new(start: SimTime) -> Self {
        NaiveTimers {
            now_ms: start.as_millis(),
            entries: Vec::new(),
        }
    }

    fn schedule(&mut self, deadline: SimTime, id: u32) {
        self.entries.push((deadline.as_millis(), id));
    }

    fn advance(&mut self, now: SimTime) -> Vec<(u64, u32)> {
        // Entries at or before the model clock fire even on a backwards
        // advance — mirroring the wheel's due-now staging list.
        let cutoff = self.now_ms.max(now.as_millis());
        self.now_ms = cutoff;
        let mut fired: Vec<(u64, u32)> = self
            .entries
            .iter()
            .copied()
            .filter(|&(d, _)| d <= cutoff)
            .collect();
        self.entries.retain(|&(d, _)| d > cutoff);
        fired.sort_unstable();
        fired
    }
}

fn wheel_advance(wheel: &mut TimerWheel<u32>, now: SimTime) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    wheel.advance_into(now, &mut out);
    let mut fired: Vec<(u64, u32)> = out.into_iter().map(|(d, p)| (d.as_millis(), p)).collect();
    fired.sort_unstable();
    fired
}

/// Draws a deadline relative to `now` covering every interesting regime:
/// already-past, each wheel level, the overflow region, and the
/// saturation sentinel.
fn random_deadline(rng: &mut SimRng, now_ms: u64) -> SimTime {
    match rng.next_u64() % 100 {
        0..=9 => SimTime::from_millis(now_ms.saturating_sub(rng.next_u64() % 5_000)),
        10..=39 => SimTime::from_millis(now_ms + rng.next_u64() % 256),
        40..=69 => SimTime::from_millis(now_ms + rng.next_u64() % (1 << 14)),
        70..=84 => SimTime::from_millis(now_ms + rng.next_u64() % (1 << 20)),
        85..=94 => SimTime::from_millis(now_ms + rng.next_u64() % (1 << 26)),
        95..=98 => SimTime::from_millis(now_ms.saturating_add(rng.next_u64() % (1 << 32))),
        _ => SimTime::MAX,
    }
}

/// One differential episode: random interleaving of schedules and
/// advances, comparing fired multisets at every step and emptiness at the
/// end.
fn run_differential(seed: u64, ops: usize) {
    let mut rng = SimRng::seed_from(seed).split("timer-wheel-diff");
    let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
    let mut naive = NaiveTimers::new(SimTime::ZERO);
    let mut now_ms = 0u64;
    let mut next_id = 0u32;
    for step in 0..ops {
        if !rng.next_u64().is_multiple_of(3) {
            let deadline = random_deadline(&mut rng, now_ms);
            wheel.schedule(deadline, next_id);
            naive.schedule(deadline, next_id);
            next_id += 1;
        } else {
            // Mostly monotone advances, from 1 ms crawls to multi-rotation
            // leaps; occasionally a stale (backwards) target.
            now_ms = match rng.next_u64() % 10 {
                0 => now_ms + 1 + rng.next_u64() % 16,
                1..=4 => now_ms + rng.next_u64() % 4_096,
                5..=7 => now_ms + rng.next_u64() % (1 << 16),
                8 => now_ms + rng.next_u64() % (1 << 24),
                _ => now_ms.saturating_sub(rng.next_u64() % 1_000),
            };
            let fired = wheel_advance(&mut wheel, SimTime::from_millis(now_ms));
            let expected = naive.advance(SimTime::from_millis(now_ms));
            assert_eq!(
                fired, expected,
                "seed {seed} step {step}: wheel diverged from naive scan at t={now_ms}ms"
            );
            // The backwards case must not rewind either clock.
            assert_eq!(wheel.now().as_millis(), naive.now_ms);
        }
        assert_eq!(wheel.len(), naive.entries.len(), "seed {seed} step {step}");
    }
    // Drain everything, saturation sentinels included.
    let fired = wheel_advance(&mut wheel, SimTime::MAX);
    let expected = naive.advance(SimTime::MAX);
    assert_eq!(fired, expected, "seed {seed}: final drain diverged");
    assert!(wheel.is_empty());
}

#[test]
fn wheel_matches_naive_scan_across_seeds() {
    for seed in [42, 1337, 0xdead_beef, 7, 0x5eed_0001] {
        run_differential(seed, 600);
    }
}

#[test]
fn cascade_fires_exactly_once_at_every_granularity_boundary() {
    // Deadlines placed just around each level's slot granularity, swept
    // with 1 ms advances: each fires exactly once, exactly on time. This
    // pins the cascade arithmetic (no early fire from a coarse slot, no
    // lost entry while re-filing).
    let mut deadlines = Vec::new();
    for base in [256u64, 1 << 14, 1 << 20] {
        for delta in [-1i64, 0, 1] {
            deadlines.push((base as i64 + delta) as u64);
        }
    }
    let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
    for (i, &d) in deadlines.iter().enumerate() {
        wheel.schedule(SimTime::from_millis(d), i as u32);
    }
    let horizon = *deadlines.iter().max().unwrap_or(&0) + 2;
    let mut fired: Vec<(u64, u64)> = Vec::new(); // (fired-at, deadline)
    for t in 1..=horizon {
        for (d, _) in wheel_advance(&mut wheel, SimTime::from_millis(t)) {
            fired.push((t, d));
        }
    }
    assert!(wheel.is_empty());
    assert_eq!(fired.len(), deadlines.len());
    for (fired_at, deadline) in fired {
        assert_eq!(fired_at, deadline, "entry fired off its deadline");
    }
}

#[test]
fn beyond_horizon_deadlines_wait_in_overflow_and_fire_once() {
    // Past the top level's ~18.6 h horizon the wheel parks entries in its
    // overflow region; they must survive arbitrary intermediate advances
    // and fire exactly at their deadline.
    let far = (1u64 << 26) + 12_345;
    let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
    wheel.schedule(SimTime::from_millis(far), 1);
    wheel.schedule(SimTime::MAX, 2);
    // Stress with many intermediate advances crossing full rotations.
    let mut t = 0u64;
    while t < far - 1 {
        t = (t + (1 << 22)).min(far - 1);
        assert_eq!(wheel_advance(&mut wheel, SimTime::from_millis(t)), []);
    }
    assert_eq!(
        wheel_advance(&mut wheel, SimTime::from_millis(far)),
        [(far, 1)]
    );
    assert_eq!(wheel.len(), 1);
    assert_eq!(wheel_advance(&mut wheel, SimTime::MAX), [(u64::MAX, 2)]);
    assert!(wheel.is_empty());
}

#[test]
fn simtime_saturation_is_terminal_but_loss_free() {
    let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
    wheel.schedule(SimTime::MAX, 0);
    wheel.schedule(SimTime::from_secs(1), 1);
    // Advancing to MAX fires everything, in one pass.
    let fired = wheel_advance(&mut wheel, SimTime::MAX);
    assert_eq!(fired, [(1_000, 1), (u64::MAX, 0)]);
    assert!(wheel.is_empty());
    assert_eq!(wheel.now(), SimTime::MAX);
    // A saturated wheel still accepts (and immediately stages) work.
    wheel.schedule(SimTime::from_secs(5), 7);
    assert_eq!(wheel_advance(&mut wheel, SimTime::MAX), [(5_000, 7)]);
}
