//! Seeded fault-plan fuzzing of the fog→cloud retry engine: under random
//! loss, duplication, reordering and scheduled partitions, every enqueued
//! record must reach the cloud store **exactly once** (eventual delivery,
//! idempotent apply), and the engine must end reconnected with an empty
//! buffer. This is the always-on twin of the `proptest-tests` suite — it
//! runs in plain CI, where the offline build cannot resolve proptest.

use std::collections::BTreeSet;

use swamp_fog::sync::{CloudStore, DegradedMode, DropPolicy, FogSync};
use swamp_net::link::LinkSpec;
use swamp_net::network::Network;
use swamp_net::{FaultPlan, FaultSpec};
use swamp_sim::{SimDuration, SimRng, SimTime};

const RECORDS: u64 = 200;

struct Outcome {
    pending: usize,
    stored: usize,
    unique_seqs: usize,
    duplicates_discarded: u64,
    retransmissions: u64,
    mode: DegradedMode,
}

/// Drives one fog→cloud scenario under the given fault severity until the
/// backlog drains (or a generous round budget runs out). `uplink` lets the
/// clean-baseline test swap the intrinsically lossy rural uplink for a
/// lossless LAN.
fn run_scenario(seed: u64, uplink: LinkSpec, fault_rate: f64, with_partition: bool) -> Outcome {
    let mut net = Network::new(seed);
    net.add_node("fog");
    net.add_node("cloud");
    net.connect("fog", "cloud", uplink);

    if fault_rate > 0.0 || with_partition {
        let mut plan = FaultPlan::new(seed ^ 0xfa);
        plan.set_link_faults("fog", "cloud", FaultSpec::degraded(fault_rate))
            .expect("valid rates");
        if with_partition {
            plan.add_partition(
                "fog",
                "cloud",
                SimTime::from_secs(120),
                SimTime::from_secs(600),
            )
            .expect("valid window");
        }
        net.install_fault_plan(plan);
    }

    let mut sync = FogSync::builder("fog", "cloud")
        .capacity(10_000)
        .drop_policy(DropPolicy::Oldest)
        .base_timeout(SimDuration::from_secs(20))
        .backoff(2.0, SimDuration::from_secs(120))
        .jitter(0.2)
        .max_in_flight(64)
        .seed(seed ^ 0x5e)
        .build();
    let mut store = CloudStore::new("cloud");

    for i in 0..RECORDS {
        sync.enqueue(
            SimTime::from_secs(i),
            &format!("k{i:04}"),
            i.to_be_bytes().to_vec(),
        )
        .expect("capacity exceeds the record count");
    }

    let mut now = SimTime::from_secs(RECORDS);
    for _ in 0..2_000 {
        sync.sync_round(&mut net, now, 64);
        now += SimDuration::from_secs(2);
        net.advance_to(now);
        store.process(&mut net, now);
        now += SimDuration::from_secs(2);
        net.advance_to(now);
        sync.poll_acks(&mut net, now);
        now += SimDuration::from_secs(6);
        if sync.pending() == 0 {
            break;
        }
    }

    let unique: BTreeSet<u64> = store.history().iter().map(|r| r.seq).collect();
    Outcome {
        pending: sync.pending(),
        stored: store.record_count(),
        unique_seqs: unique.len(),
        duplicates_discarded: store.duplicates(),
        retransmissions: sync.stats().retransmissions,
        mode: sync.mode(),
    }
}

#[test]
fn exactly_once_under_seeded_fault_plans() {
    let mut rng = SimRng::seed_from(0x665f726573);
    for case in 0..12 {
        let seed = rng.next_u64();
        let fault_rate = rng.uniform_f64() * 0.35;
        let with_partition = case % 3 != 0;
        let o = run_scenario(seed, LinkSpec::rural_internet(), fault_rate, with_partition);
        assert_eq!(
            o.pending, 0,
            "case {case} (seed {seed}, rate {fault_rate:.3}): backlog must drain"
        );
        assert_eq!(
            o.stored, RECORDS as usize,
            "case {case}: every record delivered exactly once"
        );
        assert_eq!(
            o.unique_seqs, RECORDS as usize,
            "case {case}: no sequence number applied twice"
        );
        assert_eq!(
            o.mode,
            DegradedMode::Connected,
            "case {case}: engine reconnects once the backlog drains"
        );
    }
}

#[test]
fn duplicates_are_discarded_not_applied() {
    // A heavy duplication/loss scenario: retransmissions and injected
    // duplicates both occur, and each discarded copy is counted by the
    // store rather than applied.
    let o = run_scenario(0xd1ce, LinkSpec::rural_internet(), 0.30, true);
    assert_eq!(o.stored, RECORDS as usize);
    assert!(
        o.retransmissions > 0,
        "30% loss through a partition must force retransmissions"
    );
    assert!(
        o.duplicates_discarded > 0,
        "retransmitted/duplicated copies must be deduplicated"
    );
}

#[test]
fn clean_network_needs_no_retransmissions() {
    let o = run_scenario(7, LinkSpec::farm_lan(), 0.0, false);
    assert_eq!(o.stored, RECORDS as usize);
    assert_eq!(o.pending, 0);
    assert_eq!(
        o.retransmissions, 0,
        "nothing times out on a clean LAN uplink"
    );
}
