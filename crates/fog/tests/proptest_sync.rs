//! Property-based tests for the fog→cloud retry engine under random
//! fault plans: exactly-once delivery, duplicate-ack suppression and
//! monotone history ordering.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use std::collections::BTreeSet;

use proptest::prelude::*;
use swamp_fog::sync::{CloudStore, DegradedMode, DropPolicy, FogSync};
use swamp_net::link::LinkSpec;
use swamp_net::network::Network;
use swamp_net::{FaultPlan, FaultSpec};
use swamp_sim::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any random fault plan (loss + duplication + reordering, with
    /// or without a partition window), every enqueued record reaches the
    /// cloud store exactly once and the engine ends reconnected.
    #[test]
    fn exactly_once_under_random_fault_plans(
        seed in any::<u64>(),
        drop_prob in 0.0f64..0.4,
        duplicate_prob in 0.0f64..0.3,
        reorder_prob in 0.0f64..0.5,
        records in 1u64..120,
        partition in any::<bool>(),
    ) {
        let mut net = Network::new(seed);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect("fog", "cloud", LinkSpec::rural_internet());

        let mut plan = FaultPlan::new(seed ^ 0xfa);
        plan.set_link_faults("fog", "cloud", FaultSpec {
            drop_prob,
            duplicate_prob,
            reorder_prob,
            ..FaultSpec::default()
        }).expect("probabilities are in range by construction");
        if partition {
            plan.add_partition(
                "fog",
                "cloud",
                SimTime::from_secs(100),
                SimTime::from_secs(400),
            ).expect("non-empty window");
        }
        net.install_fault_plan(plan);

        let mut sync = FogSync::builder("fog", "cloud")
            .capacity(4_096)
            .drop_policy(DropPolicy::Oldest)
            .base_timeout(SimDuration::from_secs(15))
            .backoff(2.0, SimDuration::from_secs(90))
            .jitter(0.25)
            .max_in_flight(32)
            .seed(seed ^ 0x5e)
            .build();
        let mut store = CloudStore::new("cloud");

        for i in 0..records {
            sync.enqueue(SimTime::from_secs(i), &format!("k{i:04}"), vec![i as u8])
                .expect("under capacity");
        }

        let mut now = SimTime::from_secs(records);
        for _ in 0..2_000 {
            sync.sync_round(&mut net, now, 32);
            now += SimDuration::from_secs(2);
            net.advance_to(now);
            store.process(&mut net, now);
            now += SimDuration::from_secs(2);
            net.advance_to(now);
            sync.poll_acks(&mut net, now);
            now += SimDuration::from_secs(6);
            if sync.pending() == 0 {
                break;
            }
        }

        prop_assert_eq!(sync.pending(), 0, "backlog drains");
        prop_assert_eq!(store.record_count() as u64, records, "exactly-once apply");
        let unique: BTreeSet<u64> = store.history().iter().map(|r| r.seq).collect();
        prop_assert_eq!(unique.len() as u64, records, "no seq applied twice");
        prop_assert_eq!(sync.mode(), DegradedMode::Connected, "engine reconnects");
        // Creation timestamps in the store's per-key latest view are the
        // enqueue times, untouched by network reordering.
        for i in 0..records {
            let rec = store.latest(&format!("k{i:04}")).expect("key present");
            prop_assert_eq!(rec.created_at, SimTime::from_secs(i));
        }
    }

    /// Replaying any ack payload a second time releases nothing further
    /// and only grows the duplicate counters.
    #[test]
    fn duplicate_acks_are_suppressed(seed in any::<u64>(), records in 1u64..40) {
        let mut net = Network::new(seed);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect("fog", "cloud", LinkSpec::farm_lan());

        let mut sync = FogSync::builder("fog", "cloud")
            .base_timeout(SimDuration::from_secs(10))
            .jitter(0.0)
            .build();
        let mut store = CloudStore::new("cloud");
        for i in 0..records {
            sync.enqueue(SimTime::ZERO, &format!("k{i}"), vec![1]).expect("under capacity");
        }
        let now = SimTime::from_secs(1);
        sync.sync_round(&mut net, now, 1_024);
        net.advance_to(SimTime::from_secs(5));
        store.process(&mut net, SimTime::from_secs(5));
        net.advance_to(SimTime::from_secs(10));

        // Capture the ack payload and apply it twice.
        let deliveries = net.drain(&"fog".into());
        prop_assert!(!deliveries.is_empty());
        let mut released = 0;
        let mut dup_outcome = None;
        for d in &deliveries {
            let first = sync.process_ack(now, &d.message.payload).expect("well-formed ack");
            released += first.released;
            let again = sync.process_ack(now, &d.message.payload).expect("well-formed ack");
            prop_assert_eq!(again.released, 0, "second apply releases nothing");
            dup_outcome = Some(again.duplicate);
        }
        prop_assert_eq!(released as u64, records);
        prop_assert!(dup_outcome.unwrap_or(0) > 0);
        prop_assert_eq!(sync.stats().acked, records);
    }
}
