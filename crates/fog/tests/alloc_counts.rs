//! Allocation-count proof for the sync engine's steady state.
//!
//! The indexed round/ack machinery keeps its working set in reusable
//! structures — the record table, the ready queue, the timer wheel's
//! slots and the round-scoped scratch vectors — so a quiet sync round
//! (nothing due, nothing new, empty inbox) must allocate exactly zero
//! times once those are warm. A counting global allocator verifies it.
//!
//! Everything runs inside one `#[test]` so concurrent test threads cannot
//! pollute the shared counter (pattern from
//! `crates/obs/tests/alloc_counts.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use swamp_fog::sync::{CloudStore, FogSync};
use swamp_net::link::LinkSpec;
use swamp_net::network::Network;
use swamp_sim::{SimDuration, SimTime};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_calls<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let r = f();
    (ALLOC_CALLS.load(Ordering::Relaxed) - before, r)
}

#[test]
fn steady_state_sync_round_is_zero_alloc() {
    let mut net = Network::new(7);
    net.add_node("fog");
    net.add_node("cloud");
    net.connect("fog", "cloud", LinkSpec::farm_lan());
    let mut sync = FogSync::builder("fog", "cloud")
        .base_timeout(SimDuration::from_secs(3600))
        .jitter(0.0)
        .build();
    let mut cloud = CloudStore::new("cloud");

    // Warmup: run a real drain so the wheel slots, ready queue, scratch
    // vectors and obs plumbing all reach their steady capacity, then park
    // a handful of records in flight with a far-off retry deadline.
    let mut now = SimTime::ZERO;
    for i in 0..256 {
        sync.enqueue(now, "probe", vec![i as u8]).unwrap();
    }
    for _ in 0..8 {
        sync.sync_round(&mut net, now, 64);
        now += SimDuration::from_secs(1);
        net.advance_to(now);
        cloud.process(&mut net, now);
        now += SimDuration::from_secs(1);
        net.advance_to(now);
        sync.poll_acks(&mut net, now);
        now += SimDuration::from_secs(1);
    }
    for i in 0..32 {
        sync.enqueue(now, "probe", vec![i as u8]).unwrap();
    }
    sync.sync_round(&mut net, now, 64);
    assert_eq!(sync.in_flight(), 32, "records parked awaiting their timer");

    // The counter is process-wide and the libtest harness may allocate on
    // its own threads concurrently with the measured window, so take the
    // minimum over a few windows: a hot path that really allocated would
    // do so in every window (10k+ times), harness noise is transient.
    let mut min_calls = u64::MAX;
    for _ in 0..3 {
        let (calls, ()) = alloc_calls(|| {
            for _ in 0..10_000u64 {
                now += SimDuration::from_millis(10);
                // Quiet round: timers far in the future, ready queue
                // empty, nothing to transmit — and an empty-inbox poll.
                let sent = sync.sync_round(&mut net, now, 64);
                assert_eq!(sent, 0);
                let outcome = sync.poll_acks(&mut net, now);
                assert_eq!(outcome.released, 0);
            }
        });
        min_calls = min_calls.min(calls);
        if min_calls == 0 {
            break;
        }
    }
    assert_eq!(
        min_calls, 0,
        "a warm steady-state sync round must not allocate — \
         {min_calls} allocations in the cleanest of 3 10k-round windows"
    );
    assert_eq!(sync.in_flight(), 32, "nothing fired during quiet rounds");
}
