//! Hierarchical timer wheel over [`SimTime`] milliseconds.
//!
//! The sync engine schedules one retry deadline per transmitted record.
//! With deadlines kept in a flat map, finding the due ones costs a scan
//! linear in the backlog — the quadratic drain BENCH_e14 exposed. The
//! wheel makes `schedule` O(1) and `advance_into` O(slots crossed +
//! entries fired): a sync round pays for the timers that actually fire,
//! not for every record still waiting.
//!
//! ## Structure
//!
//! Four levels of power-of-two slots, indexed by absolute deadline bits
//! (the classic hashed-and-hierarchical layout):
//!
//! | level | granularity | slots | horizon (delta below which it files here) |
//! |-------|-------------|-------|-------------------------------------------|
//! | 0     | 1 ms        | 256   | 256 ms                                    |
//! | 1     | 256 ms      | 64    | ~16.4 s                                   |
//! | 2     | ~16.4 s     | 64    | ~17.5 min                                 |
//! | 3     | ~17.5 min   | 64    | ~18.6 h                                   |
//!
//! An entry files at the shallowest level whose horizon covers its delay,
//! in the slot addressed by the deadline's bits at that granularity.
//! Advancing drains every slot the clock crossed; a drained entry either
//! fires (deadline reached) or **cascades** — re-files relative to the new
//! now, descending toward level 0 as its deadline approaches. Deadlines
//! beyond the top horizon (including [`SimTime::MAX`] sentinels) wait in a
//! deadline-keyed overflow map and fire straight from it; the default
//! retry backoff cap (480 s) sits comfortably inside level 2, so the
//! steady-state engine never touches the overflow.
//!
//! Entries already due at `schedule` time land in a due-now staging list
//! and fire on the next [`TimerWheel::advance_into`], whatever its target
//! time — the wheel never owes a rotation for a deadline in the past.
//!
//! The wheel is deliberately dumb about its payloads: it never deletes an
//! entry before its deadline. Callers that re-schedule (retry after
//! retransmission) or drop records (ack, eviction) leave the old entry in
//! place and discard it as stale when it fires — O(1) amortized, against
//! O(log n) for eager removal from a search structure.
//!
//! ## Ordering
//!
//! Entries fired by one `advance_into` call are **not** sorted; callers
//! needing a deterministic order (the sync engine wants seq order) sort
//! the due batch themselves, paying O(due · log due) on the records that
//! fire rather than O(backlog) on the ones that don't.
//!
//! # Example
//! ```
//! use swamp_fog::timer_wheel::TimerWheel;
//! use swamp_sim::{SimDuration, SimTime};
//!
//! let mut wheel: TimerWheel<u64> = TimerWheel::new(SimTime::ZERO);
//! wheel.schedule(SimTime::from_secs(30), 7);
//! wheel.schedule(SimTime::from_secs(90), 8);
//! let mut due = Vec::new();
//! wheel.advance_into(SimTime::from_secs(60), &mut due);
//! assert_eq!(due, vec![(SimTime::from_secs(30), 7)]);
//! assert_eq!(wheel.len(), 1);
//! ```

use std::collections::BTreeMap;

use swamp_sim::SimTime;

/// Number of hierarchical levels.
const LEVELS: usize = 4;
/// Bit position of each level's slot index within a deadline.
const SHIFTS: [u32; LEVELS] = [0, 8, 14, 20];
/// Slots per level (powers of two; level 0 is finer-grained).
const SLOTS: [usize; LEVELS] = [256, 64, 64, 64];
/// `SLOTS[l] - 1` as a `u64` rotation mask, written out as literals so
/// the tick-domain slot math stays cast-free (`slot_masks_match_slots`
/// pins the two tables together).
const SLOT_MASKS: [u64; LEVELS] = [255, 63, 63, 63];
/// Horizon of each level: an entry files at the shallowest level whose
/// horizon exceeds its delay. Beyond the last horizon → overflow map.
const HORIZONS: [u64; LEVELS] = [1 << 8, 1 << 14, 1 << 20, 1 << 26];

/// Slot index for a tick count at `lvl`: mask to the level's rotation,
/// then convert. The mask bounds the value below `SLOTS[lvl]`, so the
/// fallback arm is unreachable — `try_from` keeps the narrowing visibly
/// lossless instead of an `as` cast.
fn slot_index(ticks: u64, lvl: usize) -> usize {
    usize::try_from(ticks & SLOT_MASKS[lvl]).unwrap_or(0)
}

/// A hierarchical timer wheel: O(1) schedule, O(slots crossed + entries
/// fired) advance, lazy invalidation by design (see the module docs).
#[derive(Clone, Debug)]
pub struct TimerWheel<T> {
    /// Wheel clock, in ms; entries in the levels all have deadlines
    /// strictly after this.
    now_ms: u64,
    /// Live entries across all levels, overflow and the due-now list.
    len: usize,
    /// Entries scheduled with a deadline ≤ the wheel clock: fire on the
    /// next advance, bypassing the slots.
    due_now: Vec<(u64, T)>,
    /// `levels[l][slot]` holds `(deadline_ms, payload)` entries.
    levels: [Vec<Vec<(u64, T)>>; LEVELS],
    /// Deadlines beyond the top level's horizon, keyed by deadline.
    overflow: BTreeMap<u64, Vec<T>>,
    /// Scratch for entries displaced during an advance (kept to make the
    /// steady-state advance allocation-free).
    cascade: Vec<(u64, T)>,
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel whose clock starts at `start`.
    pub fn new(start: SimTime) -> Self {
        TimerWheel {
            now_ms: start.as_millis(),
            len: 0,
            due_now: Vec::new(),
            levels: [
                (0..SLOTS[0]).map(|_| Vec::new()).collect(),
                (0..SLOTS[1]).map(|_| Vec::new()).collect(),
                (0..SLOTS[2]).map(|_| Vec::new()).collect(),
                (0..SLOTS[3]).map(|_| Vec::new()).collect(),
            ],
            overflow: BTreeMap::new(),
            cascade: Vec::new(),
        }
    }

    /// Live entries (scheduled and not yet fired).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel clock: the time of the latest `advance_into` (or the
    /// construction time).
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.now_ms)
    }

    /// Schedules `payload` to fire once `advance_into` reaches
    /// `deadline`. Deadlines at or before the wheel clock fire on the
    /// very next advance. O(1) amortized (overflow deadlines beyond
    /// ~18.6 h pay a map insert).
    pub fn schedule(&mut self, deadline: SimTime, payload: T) {
        self.len += 1;
        self.place(deadline.as_millis(), payload);
    }

    /// Files an entry at the right level for its delay relative to the
    /// wheel clock. Does not touch `len` (shared by schedule + cascade).
    fn place(&mut self, deadline_ms: u64, payload: T) {
        if deadline_ms <= self.now_ms {
            self.due_now.push((deadline_ms, payload));
            return;
        }
        let delta = deadline_ms - self.now_ms;
        for lvl in 0..LEVELS {
            if delta < HORIZONS[lvl] {
                let idx = slot_index(deadline_ms >> SHIFTS[lvl], lvl);
                self.levels[lvl][idx].push((deadline_ms, payload));
                return;
            }
        }
        self.overflow.entry(deadline_ms).or_default().push(payload);
    }

    /// Advances the wheel clock to `now`, appending every entry whose
    /// deadline is ≤ `now` to `out` as `(deadline, payload)`. Entries the
    /// crossed slots held for later deadlines cascade toward finer
    /// levels. Within one call the fired entries are unordered. A `now`
    /// before the wheel clock does not rewind: the due-now staging list
    /// still fires (those deadlines were already reached), the slots are
    /// untouched.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, T)>) {
        // The staging list only ever holds deadlines ≤ the wheel clock.
        self.len -= self.due_now.len();
        out.extend(
            self.due_now
                .drain(..)
                .map(|(d, p)| (SimTime::from_millis(d), p)),
        );

        let from = self.now_ms;
        let to = now.as_millis();
        if to <= from {
            return;
        }
        self.now_ms = to;

        // Drain every slot the clock crossed, level by level. Crossing
        // more than a full rotation visits each slot exactly once.
        let mut cascade = std::mem::take(&mut self.cascade);
        for lvl in 0..LEVELS {
            let start = from >> SHIFTS[lvl];
            let end = to >> SHIFTS[lvl];
            if start == end {
                // Coarser levels cannot have crossed a boundary either.
                break;
            }
            let steps = (end - start).min(SLOT_MASKS[lvl] + 1);
            for s in 1..=steps {
                let idx = slot_index(start + s, lvl);
                for (d, p) in self.levels[lvl][idx].drain(..) {
                    if d <= to {
                        self.len -= 1;
                        out.push((SimTime::from_millis(d), p));
                    } else {
                        cascade.push((d, p));
                    }
                }
            }
        }
        // Re-file displaced entries relative to the new clock; their
        // deadlines are all in the future, so this cannot loop.
        for (d, p) in cascade.drain(..) {
            self.place(d, p);
        }
        self.cascade = cascade;

        // Far-future entries fire straight from the overflow map.
        while let Some(entry) = self.overflow.first_entry() {
            let d = *entry.key();
            if d > to {
                break;
            }
            for p in entry.remove() {
                self.len -= 1;
                out.push((SimTime::from_millis(d), p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_masks_match_slots() {
        for lvl in 0..LEVELS {
            assert!(SLOTS[lvl].is_power_of_two());
            assert_eq!(SLOT_MASKS[lvl] + 1, SLOTS[lvl] as u64);
        }
    }

    fn drain(wheel: &mut TimerWheel<u32>, to: SimTime) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        wheel.advance_into(to, &mut out);
        let mut fired: Vec<(u64, u32)> = out.into_iter().map(|(d, p)| (d.as_millis(), p)).collect();
        fired.sort_unstable();
        fired
    }

    #[test]
    fn fires_exactly_at_deadline_across_levels() {
        // One deadline per level, plus one in the overflow region.
        let deadlines = [5u64, 1_000, 60_000, 3_600_000, (1 << 27) + 17];
        let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
        for (i, &d) in deadlines.iter().enumerate() {
            wheel.schedule(SimTime::from_millis(d), i as u32);
        }
        assert_eq!(wheel.len(), deadlines.len());
        for (i, &d) in deadlines.iter().enumerate() {
            // Nothing fires one ms early…
            assert_eq!(drain(&mut wheel, SimTime::from_millis(d - 1)), []);
            // …and the entry fires exactly at its deadline.
            assert_eq!(drain(&mut wheel, SimTime::from_millis(d)), [(d, i as u32)]);
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::from_secs(100));
        wheel.schedule(SimTime::from_secs(40), 1); // already due
        wheel.schedule(SimTime::from_secs(100), 2); // due exactly now
                                                    // Even an advance to the current clock fires staged entries.
        assert_eq!(
            drain(&mut wheel, SimTime::from_secs(100)),
            [(40_000, 1), (100_000, 2)]
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn cascade_preserves_deadlines_under_small_steps() {
        // A deadline two levels up, approached in 1 ms steps around the
        // cascade boundaries, must fire exactly once, exactly on time.
        let deadline = 17_000u64; // level 2 at insert (delta ≥ 16 384)
        let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
        wheel.schedule(SimTime::from_millis(deadline), 9);
        let mut fired = Vec::new();
        for ms in 1..=deadline + 10 {
            for (d, p) in drain(&mut wheel, SimTime::from_millis(ms)) {
                fired.push((ms, d, p));
            }
        }
        assert_eq!(fired, [(deadline, deadline, 9)]);
    }

    #[test]
    fn simtime_max_saturates_without_loss() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
        wheel.schedule(SimTime::MAX, 1);
        wheel.schedule(SimTime::from_secs(1), 2);
        assert_eq!(drain(&mut wheel, SimTime::from_secs(2)), [(1_000, 2)]);
        assert_eq!(wheel.len(), 1);
        assert_eq!(drain(&mut wheel, SimTime::MAX), [(u64::MAX, 1)]);
        assert!(wheel.is_empty());
        // The wheel clock saturated; further advances are no-ops.
        assert_eq!(wheel.now(), SimTime::MAX);
        assert_eq!(drain(&mut wheel, SimTime::MAX), []);
    }

    #[test]
    fn advance_never_rewinds() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
        wheel.schedule(SimTime::from_secs(10), 1);
        assert_eq!(drain(&mut wheel, SimTime::from_secs(30)), [(10_000, 1)]);
        // A stale (earlier) advance leaves the clock and contents alone.
        wheel.schedule(SimTime::from_secs(40), 2);
        assert_eq!(drain(&mut wheel, SimTime::from_secs(5)), []);
        assert_eq!(wheel.now(), SimTime::from_secs(30));
        assert_eq!(drain(&mut wheel, SimTime::from_secs(40)), [(40_000, 2)]);
    }
}
