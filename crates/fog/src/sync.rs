//! Store-and-forward synchronization between a fog node and the cloud.
//!
//! The paper: "The availability of the platform must be provided even in
//! case of Internet disconnections using local components (fog computing)
//! to keep the platform running properly." [`FogSync`] buffers context
//! updates while the uplink is down or lossy and replays them with an
//! ack/retransmit protocol; [`CloudStore`] is the receiving end,
//! deduplicating by sequence number so retransmissions are idempotent.

use std::collections::{BTreeMap, VecDeque};

use swamp_net::message::{Message, NodeId};
use swamp_net::network::Network;
use swamp_sim::{SimDuration, SimTime};

/// Topic used for fog→cloud data records.
pub const SYNC_TOPIC: &str = "fog/sync/data";
/// Topic used for cloud→fog acknowledgements.
pub const ACK_TOPIC: &str = "fog/sync/ack";

/// A buffered context update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Fog-assigned sequence number (unique, monotone).
    pub seq: u64,
    /// Record key (e.g. entity id).
    pub key: String,
    /// Opaque payload (e.g. serialized entity).
    pub payload: Vec<u8>,
    /// When the update was created at the fog.
    pub created_at: SimTime,
}

/// What to drop when the fog buffer is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Drop the oldest buffered update (favor fresh state).
    Oldest,
    /// Refuse the new update (favor history completeness).
    Newest,
}

/// Counters for a sync endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Updates accepted into the buffer.
    pub enqueued: u64,
    /// Updates dropped by the bounded buffer.
    pub dropped: u64,
    /// Data transmissions (including retransmits).
    pub transmissions: u64,
    /// Updates confirmed by the cloud.
    pub acked: u64,
}

/// Fog-side sync engine: bounded buffer + ack/retransmit.
///
/// # Example
/// ```
/// use swamp_fog::sync::{DropPolicy, FogSync};
/// use swamp_sim::{SimDuration, SimTime};
/// let mut sync = FogSync::new("fog", "cloud", 100, DropPolicy::Oldest,
///                             SimDuration::from_secs(30));
/// sync.enqueue(SimTime::ZERO, "probe-1", b"vwc=0.2".to_vec());
/// assert_eq!(sync.pending(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FogSync {
    node: NodeId,
    cloud: NodeId,
    capacity: usize,
    policy: DropPolicy,
    retransmit_after: SimDuration,
    buffer: VecDeque<UpdateRecord>,
    /// seq → last transmission time (in-flight, awaiting ack).
    in_flight: BTreeMap<u64, SimTime>,
    next_seq: u64,
    stats: SyncStats,
}

impl FogSync {
    /// Creates a sync engine for the fog node talking to the cloud node.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(
        node: impl Into<NodeId>,
        cloud: impl Into<NodeId>,
        capacity: usize,
        policy: DropPolicy,
        retransmit_after: SimDuration,
    ) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        FogSync {
            node: node.into(),
            cloud: cloud.into(),
            capacity,
            policy,
            retransmit_after,
            buffer: VecDeque::new(),
            in_flight: BTreeMap::new(),
            next_seq: 0,
            stats: SyncStats::default(),
        }
    }

    /// Buffered (not yet acked) update count.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Counters.
    pub fn stats(&self) -> SyncStats {
        self.stats
    }

    /// Queues one update, applying the drop policy when full. Returns the
    /// sequence number, or `None` if this update was refused (Newest policy).
    pub fn enqueue(&mut self, now: SimTime, key: &str, payload: Vec<u8>) -> Option<u64> {
        if self.buffer.len() >= self.capacity {
            match self.policy {
                DropPolicy::Oldest => {
                    if let Some(old) = self.buffer.pop_front() {
                        self.in_flight.remove(&old.seq);
                        self.stats.dropped += 1;
                    }
                }
                DropPolicy::Newest => {
                    self.stats.dropped += 1;
                    return None;
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buffer.push_back(UpdateRecord {
            seq,
            key: key.to_owned(),
            payload,
            created_at: now,
        });
        self.stats.enqueued += 1;
        Some(seq)
    }

    /// Queues a batch of `(key, payload)` updates, applying the drop policy
    /// per record — the bulk mirror of [`FogSync::enqueue`], used by the
    /// platform's batched ingestion path. Returns how many were accepted.
    pub fn enqueue_batch<'a>(
        &mut self,
        now: SimTime,
        items: impl IntoIterator<Item = (&'a str, Vec<u8>)>,
    ) -> usize {
        let mut accepted = 0;
        for (key, payload) in items {
            if self.enqueue(now, key, payload).is_some() {
                accepted += 1;
            }
        }
        accepted
    }

    /// Runs one sync round at `now`: transmits new records and retransmits
    /// unacked ones whose timer expired, up to `batch` transmissions.
    /// Returns how many messages were handed to the network.
    pub fn sync_round(&mut self, net: &mut Network, now: SimTime, batch: usize) -> usize {
        let mut sent = 0;
        // Collect seqs to send first (borrow discipline).
        let due: Vec<u64> = self
            .buffer
            .iter()
            .filter(|r| match self.in_flight.get(&r.seq) {
                None => true,
                Some(&last) => now.saturating_duration_since(last) >= self.retransmit_after,
            })
            .take(batch)
            .map(|r| r.seq)
            .collect();
        for seq in due {
            let record = self
                .buffer
                .iter()
                .find(|r| r.seq == seq)
                .expect("seq from buffer scan")
                .clone();
            let msg = Message::new(SYNC_TOPIC, encode_record(&record));
            if net
                .send(now, self.node.clone(), self.cloud.clone(), msg)
                .is_ok()
            {
                self.stats.transmissions += 1;
                self.in_flight.insert(seq, now);
                sent += 1;
            } else {
                break; // no route / denied: try next round
            }
        }
        sent
    }

    /// Processes an ack payload from the cloud, releasing confirmed records.
    pub fn process_ack(&mut self, payload: &[u8]) {
        for seq in decode_acks(payload) {
            let before = self.buffer.len();
            self.buffer.retain(|r| r.seq != seq);
            if self.buffer.len() != before {
                self.stats.acked += 1;
            }
            self.in_flight.remove(&seq);
        }
    }

    /// Drains the fog node's network inbox, handling ack messages. Returns
    /// the number of acks processed.
    pub fn poll_acks(&mut self, net: &mut Network) -> usize {
        let mut count = 0;
        let deliveries = net.drain(&self.node.clone());
        for d in deliveries {
            if d.message.topic == ACK_TOPIC {
                self.process_ack(&d.message.payload);
                count += 1;
            }
        }
        count
    }
}

/// Cloud-side receiving store: deduplicates by sequence and acks.
#[derive(Clone, Debug)]
pub struct CloudStore {
    node: NodeId,
    /// Latest payload per key.
    latest: BTreeMap<String, UpdateRecord>,
    /// Full history (append order of acceptance).
    history: Vec<UpdateRecord>,
    seen_seqs: std::collections::BTreeSet<u64>,
    duplicates: u64,
    /// Cursor into `history`: records before it were already handed out by
    /// [`CloudStore::drain_new`] to a downstream applier.
    drained: usize,
}

impl CloudStore {
    /// Creates a store living at the given cloud node.
    pub fn new(node: impl Into<NodeId>) -> Self {
        CloudStore {
            node: node.into(),
            latest: BTreeMap::new(),
            history: Vec::new(),
            seen_seqs: std::collections::BTreeSet::new(),
            duplicates: 0,
            drained: 0,
        }
    }

    /// Unique records accepted.
    pub fn record_count(&self) -> usize {
        self.history.len()
    }

    /// Duplicate transmissions discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Latest payload for a key.
    pub fn latest(&self, key: &str) -> Option<&UpdateRecord> {
        self.latest.get(key)
    }

    /// Full accepted history in arrival order.
    pub fn history(&self) -> &[UpdateRecord] {
        &self.history
    }

    /// Records accepted since the last `drain_new` call, advancing the
    /// apply cursor. Downstream appliers (e.g. the platform's cloud-side
    /// context mirror, which batch-upserts these into a broker) call this
    /// after [`CloudStore::process`] to replicate exactly-once without
    /// copying records.
    pub fn drain_new(&mut self) -> &[UpdateRecord] {
        let from = self.drained;
        self.drained = self.history.len();
        &self.history[from..]
    }

    /// Drains the cloud inbox, storing records and sending one batched ack
    /// per sync source. Returns the number of new records accepted.
    pub fn process(&mut self, net: &mut Network, now: SimTime) -> usize {
        let deliveries = net.drain(&self.node.clone());
        let mut accepted = 0;
        let mut acks: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
        for d in deliveries {
            if d.message.topic != SYNC_TOPIC {
                continue;
            }
            if let Some(record) = decode_record(&d.message.payload) {
                acks.entry(d.src.clone()).or_default().push(record.seq);
                if self.seen_seqs.insert(record.seq) {
                    self.latest.insert(record.key.clone(), record.clone());
                    self.history.push(record);
                    accepted += 1;
                } else {
                    self.duplicates += 1;
                }
            }
        }
        for (fog, seqs) in acks {
            let _ = net.send(
                now,
                self.node.clone(),
                fog,
                Message::new(ACK_TOPIC, encode_acks(&seqs)),
            );
        }
        accepted
    }
}

fn encode_record(r: &UpdateRecord) -> Vec<u8> {
    let key_bytes = r.key.as_bytes();
    let mut out = Vec::with_capacity(8 + 8 + 2 + key_bytes.len() + r.payload.len());
    out.extend_from_slice(&r.seq.to_be_bytes());
    out.extend_from_slice(&r.created_at.as_millis().to_be_bytes());
    out.extend_from_slice(&(key_bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(key_bytes);
    out.extend_from_slice(&r.payload);
    out
}

fn decode_record(bytes: &[u8]) -> Option<UpdateRecord> {
    if bytes.len() < 18 {
        return None;
    }
    let seq = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
    let created_ms = u64::from_be_bytes(bytes[8..16].try_into().ok()?);
    let key_len = u16::from_be_bytes(bytes[16..18].try_into().ok()?) as usize;
    if bytes.len() < 18 + key_len {
        return None;
    }
    let key = std::str::from_utf8(&bytes[18..18 + key_len])
        .ok()?
        .to_owned();
    let payload = bytes[18 + key_len..].to_vec();
    Some(UpdateRecord {
        seq,
        key,
        payload,
        created_at: SimTime::from_millis(created_ms),
    })
}

fn encode_acks(seqs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(seqs.len() * 8);
    for s in seqs {
        out.extend_from_slice(&s.to_be_bytes());
    }
    out
}

fn decode_acks(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_net::link::LinkSpec;

    fn setup(loss: f64) -> (Network, FogSync, CloudStore) {
        let mut net = Network::new(11);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect(
            "fog",
            "cloud",
            LinkSpec::new(
                SimDuration::from_millis(50),
                SimDuration::ZERO,
                loss,
                10_000_000,
            ),
        );
        let sync = FogSync::new(
            "fog",
            "cloud",
            1000,
            DropPolicy::Oldest,
            SimDuration::from_secs(5),
        );
        (net, sync, CloudStore::new("cloud"))
    }

    /// Runs rounds of sync/process until quiescent or `rounds` exhausted.
    fn pump(
        net: &mut Network,
        sync: &mut FogSync,
        cloud: &mut CloudStore,
        start: SimTime,
        rounds: usize,
    ) -> SimTime {
        let mut now = start;
        for _ in 0..rounds {
            sync.sync_round(net, now, 64);
            now += SimDuration::from_secs(1);
            net.advance_to(now);
            cloud.process(net, now);
            now += SimDuration::from_secs(1);
            net.advance_to(now);
            sync.poll_acks(net);
            now += SimDuration::from_secs(5);
            if sync.pending() == 0 {
                break;
            }
        }
        now
    }

    #[test]
    fn record_codec_roundtrip() {
        let r = UpdateRecord {
            seq: 42,
            key: "urn:swamp:probe:7".into(),
            payload: vec![1, 2, 3, 255],
            created_at: SimTime::from_secs(99),
        };
        assert_eq!(decode_record(&encode_record(&r)), Some(r));
        assert_eq!(decode_record(b"short"), None);
        assert_eq!(decode_acks(&encode_acks(&[1, 2, 3])), vec![1, 2, 3]);
    }

    #[test]
    fn clean_link_syncs_everything() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        for i in 0..50 {
            sync.enqueue(SimTime::ZERO, &format!("key-{i}"), vec![i as u8]);
        }
        pump(&mut net, &mut sync, &mut cloud, SimTime::ZERO, 20);
        assert_eq!(sync.pending(), 0);
        assert_eq!(cloud.record_count(), 50);
        assert_eq!(sync.stats().acked, 50);
        assert!(cloud.latest("key-7").is_some());
    }

    #[test]
    fn lossy_link_recovers_via_retransmit() {
        let (mut net, mut sync, mut cloud) = setup(0.3);
        for i in 0..100 {
            sync.enqueue(SimTime::ZERO, &format!("key-{i}"), vec![i as u8]);
        }
        pump(&mut net, &mut sync, &mut cloud, SimTime::ZERO, 200);
        assert_eq!(sync.pending(), 0, "all records eventually acked");
        assert_eq!(cloud.record_count(), 100);
        // Loss forces retransmissions beyond the original 100.
        assert!(sync.stats().transmissions > 100);
    }

    #[test]
    fn disconnection_buffers_then_drains() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        net.set_link_up(&"fog".into(), &"cloud".into(), false);
        let mut now = SimTime::ZERO;
        for i in 0..30 {
            sync.enqueue(now, &format!("key-{i}"), vec![i as u8]);
            sync.sync_round(&mut net, now, 8);
            now += SimDuration::from_secs(60);
            net.advance_to(now);
            cloud.process(&mut net, now);
        }
        assert_eq!(cloud.record_count(), 0, "nothing crosses a down link");
        assert_eq!(sync.pending(), 30);

        // Uplink restored: backlog drains.
        net.set_link_up(&"fog".into(), &"cloud".into(), true);
        pump(&mut net, &mut sync, &mut cloud, now, 50);
        assert_eq!(cloud.record_count(), 30);
        assert_eq!(sync.pending(), 0);
    }

    #[test]
    fn duplicates_are_idempotent() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        sync.enqueue(SimTime::ZERO, "k", b"v".to_vec());
        // Transmit twice without processing acks (retransmit timer forced).
        sync.sync_round(&mut net, SimTime::ZERO, 8);
        sync.sync_round(&mut net, SimTime::from_secs(10), 8);
        net.advance_to(SimTime::from_secs(11));
        cloud.process(&mut net, SimTime::from_secs(11));
        assert_eq!(cloud.record_count(), 1);
        assert_eq!(cloud.duplicates(), 1);
    }

    #[test]
    fn bounded_buffer_drop_oldest() {
        let mut sync = FogSync::new(
            "fog",
            "cloud",
            3,
            DropPolicy::Oldest,
            SimDuration::from_secs(5),
        );
        for i in 0..5 {
            assert!(sync
                .enqueue(SimTime::ZERO, &format!("k{i}"), vec![])
                .is_some());
        }
        assert_eq!(sync.pending(), 3);
        assert_eq!(sync.stats().dropped, 2);
        // Oldest (k0, k1) gone; k2..k4 retained.
        let keys: Vec<String> = sync.buffer.iter().map(|r| r.key.clone()).collect();
        assert_eq!(keys, vec!["k2", "k3", "k4"]);
    }

    #[test]
    fn bounded_buffer_drop_newest() {
        let mut sync = FogSync::new(
            "fog",
            "cloud",
            2,
            DropPolicy::Newest,
            SimDuration::from_secs(5),
        );
        assert!(sync.enqueue(SimTime::ZERO, "k0", vec![]).is_some());
        assert!(sync.enqueue(SimTime::ZERO, "k1", vec![]).is_some());
        assert!(sync.enqueue(SimTime::ZERO, "k2", vec![]).is_none());
        assert_eq!(sync.pending(), 2);
        assert_eq!(sync.stats().dropped, 1);
    }

    #[test]
    fn latest_reflects_newest_record_per_key() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        sync.enqueue(SimTime::ZERO, "probe", b"old".to_vec());
        sync.enqueue(SimTime::from_secs(1), "probe", b"new".to_vec());
        pump(&mut net, &mut sync, &mut cloud, SimTime::from_secs(1), 20);
        assert_eq!(cloud.latest("probe").unwrap().payload, b"new");
        assert_eq!(cloud.record_count(), 2);
        assert_eq!(cloud.history().len(), 2);
    }

    #[test]
    fn enqueue_batch_matches_loop_and_applies_drop_policy() {
        let mut sync = FogSync::new(
            "fog",
            "cloud",
            3,
            DropPolicy::Newest,
            SimDuration::from_secs(5),
        );
        let items: Vec<(&str, Vec<u8>)> = (0..5).map(|i| ("k", vec![i as u8])).collect();
        let accepted = sync.enqueue_batch(SimTime::ZERO, items);
        assert_eq!(accepted, 3, "capacity 3, Newest policy refuses overflow");
        assert_eq!(sync.pending(), 3);
        assert_eq!(sync.stats().dropped, 2);
    }

    #[test]
    fn drain_new_hands_out_each_record_once() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        assert!(cloud.drain_new().is_empty());
        for i in 0..4 {
            sync.enqueue(SimTime::ZERO, &format!("k{i}"), vec![i as u8]);
        }
        pump(&mut net, &mut sync, &mut cloud, SimTime::ZERO, 20);
        let first: Vec<u64> = cloud.drain_new().iter().map(|r| r.seq).collect();
        assert_eq!(first.len(), 4);
        assert!(cloud.drain_new().is_empty(), "cursor advanced");

        sync.enqueue(SimTime::from_secs(60), "k9", vec![9]);
        pump(&mut net, &mut sync, &mut cloud, SimTime::from_secs(60), 20);
        let second: Vec<&str> = cloud.drain_new().iter().map(|r| r.key.as_str()).collect();
        assert_eq!(second, ["k9"], "only the newly accepted record");
    }

    #[test]
    fn batch_limit_respected() {
        let (mut net, mut sync, _) = setup(0.0);
        for i in 0..20 {
            sync.enqueue(SimTime::ZERO, &format!("k{i}"), vec![]);
        }
        let sent = sync.sync_round(&mut net, SimTime::ZERO, 5);
        assert_eq!(sent, 5);
        assert_eq!(sync.stats().transmissions, 5);
    }
}
