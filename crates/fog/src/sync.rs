//! Store-and-forward synchronization between a fog node and the cloud.
//!
//! The paper: "The availability of the platform must be provided even in
//! case of Internet disconnections using local components (fog computing)
//! to keep the platform running properly." [`FogSync`] buffers context
//! updates while the uplink is down or lossy and replays them with an
//! ack/retransmit protocol; [`CloudStore`] is the receiving end,
//! deduplicating per source by sequence number so retransmissions and
//! injected wire duplicates are idempotent.
//!
//! ## Retry engine
//!
//! Each transmitted record carries a per-record retry timer. The k-th
//! retransmission of a record is scheduled `min(base · factor^k, cap)`
//! after the previous attempt, de-synchronized by a multiplicative jitter
//! drawn from the engine's own seeded RNG (so runs stay reproducible).
//! At most `max_in_flight` records may be awaiting acknowledgement; new
//! records queue behind the window. Acks release records exactly once —
//! late or duplicated acks are suppressed and counted, never double-advance
//! [`SyncStats`].
//!
//! ## Degraded-mode state machine
//!
//! The engine grades its uplink from end-to-end evidence only (retry
//! timers expiring without acks), which is the only signal that exists
//! under a silent partition:
//!
//! ```text
//!            strikes ≥ degraded_after        strikes ≥ offline_after
//! Connected ─────────────────────────▶ Degraded ─────────────────────▶ Offline
//!     ▲                                   │                               │
//!     └────────────── any ack ────────────┴───────────── any ack ─────────┘
//! ```
//!
//! A *strike* is a sync round in which at least one retry timer expired
//! (or a send was refused outright); any released ack resets the count.
//! The platform maps the mode to deployment-specific fallbacks: a
//! CloudOnly gateway keeps buffering, a FarmFog node falls back to local
//! irrigation control.
//!
//! ## Complexity
//!
//! The engine is indexed so one sync round costs O(transmissions +
//! due timers) and one ack costs amortized O(1), independent of backlog
//! depth: the backlog lives in a seq-keyed record table, never-transmitted
//! records wait in a FIFO ready queue, and retry deadlines sit in a
//! hierarchical [`TimerWheel`]. Wheel
//! entries are invalidated lazily — a `(seq, attempts)` generation check
//! when they fire — rather than deleted eagerly on ack, and the
//! duplicate-ack dedup set is a bounded sliding window (watermark +
//! recent set) so memory stays O(window) on week-long runs. See
//! DESIGN.md §13 for the data-structure walkthrough.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::timer_wheel::TimerWheel;
use swamp_net::message::{Delivery, Message, NodeId};
use swamp_net::network::{Network, SendError};
use swamp_obs::{Counter, Gauge, Hist, Level, Obs, ObsSnapshot, Span};
use swamp_sim::{SimDuration, SimRng, SimTime};

/// Topic used for fog→cloud data records.
pub const SYNC_TOPIC: &str = "fog/sync/data";
/// Topic used for cloud→fog acknowledgements.
pub const ACK_TOPIC: &str = "fog/sync/ack";

/// Longest encodable record key, in bytes (the wire format uses a 16-bit
/// length prefix).
pub const MAX_KEY_LEN: usize = u16::MAX as usize;

/// Why a sync operation was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The bounded buffer is full and the drop policy refuses new records.
    BufferFull {
        /// Configured buffer capacity.
        capacity: usize,
    },
    /// The record key exceeds [`MAX_KEY_LEN`] and cannot be encoded.
    KeyTooLong {
        /// Actual key length in bytes.
        len: usize,
    },
    /// An ack payload was not a whole number of 8-byte sequence numbers.
    MalformedAck {
        /// Payload length in bytes.
        len: usize,
    },
    /// The network refused the transmission synchronously.
    Send(SendError),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::BufferFull { capacity } => {
                write!(f, "sync buffer full (capacity {capacity})")
            }
            SyncError::KeyTooLong { len } => {
                write!(f, "record key of {len} bytes exceeds {MAX_KEY_LEN}")
            }
            SyncError::MalformedAck { len } => {
                write!(f, "ack payload of {len} bytes is not a multiple of 8")
            }
            SyncError::Send(e) => write!(f, "send refused: {e}"),
        }
    }
}

impl std::error::Error for SyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyncError::Send(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SendError> for SyncError {
    fn from(e: SendError) -> Self {
        SyncError::Send(e)
    }
}

/// Uplink health as judged by the retry engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// Acks are flowing; the uplink is presumed healthy.
    #[default]
    Connected,
    /// Retry timers are expiring; the uplink is suspect.
    Degraded,
    /// Sustained timeouts; the uplink is presumed down.
    Offline,
}

impl std::fmt::Display for DegradedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradedMode::Connected => "connected",
            DegradedMode::Degraded => "degraded",
            DegradedMode::Offline => "offline",
        })
    }
}

/// What one ack payload (or one inbox drain) accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AckOutcome {
    /// Buffered records released (first ack for each).
    pub released: usize,
    /// Acks for records already released (suppressed).
    pub duplicate: usize,
    /// Acks for sequence numbers this engine never had in its buffer
    /// (e.g. records evicted by the drop policy before their ack arrived).
    pub unknown: usize,
    /// Ack messages whose payload failed to decode (inbox drains only).
    pub malformed: usize,
}

impl AckOutcome {
    fn absorb(&mut self, other: AckOutcome) {
        self.released += other.released;
        self.duplicate += other.duplicate;
        self.unknown += other.unknown;
        self.malformed += other.malformed;
    }
}

/// A buffered context update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Fog-assigned sequence number (unique, monotone).
    pub seq: u64,
    /// Record key (e.g. entity id).
    pub key: String,
    /// Opaque payload (e.g. serialized entity).
    pub payload: Vec<u8>,
    /// When the update was created at the fog.
    pub created_at: SimTime,
}

impl UpdateRecord {
    /// Encodes this record into the [`SYNC_TOPIC`] wire format — the same
    /// bytes [`FogSync`] transmits, so re-encoded records are
    /// indistinguishable from first-hand ones. Exposed for the scale-out
    /// tier, which drains per-shard replicas and forwards the records
    /// through a second [`CloudStore::process_deliveries`] inbox. Keys
    /// longer than [`MAX_KEY_LEN`] are truncated by the 16-bit length
    /// prefix (enqueue paths validate the bound up front).
    pub fn encode(&self) -> Vec<u8> {
        encode_record(self)
    }

    /// Decodes a [`SYNC_TOPIC`] payload; `None` if truncated or the key is
    /// not UTF-8.
    pub fn decode(bytes: &[u8]) -> Option<UpdateRecord> {
        decode_record(bytes)
    }
}

/// What to drop when the fog buffer is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Drop the oldest buffered update (favor fresh state).
    Oldest,
    /// Refuse the new update (favor history completeness).
    Newest,
}

/// Counters for a sync endpoint.
///
/// Since the observability redesign this is a *view* materialized by
/// [`FogSync::stats`] from the engine's typed `swamp-obs` handles, not the
/// backing store itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Updates accepted into the buffer.
    pub enqueued: u64,
    /// Updates dropped by the bounded buffer.
    pub dropped: u64,
    /// Data transmissions (including retransmits).
    pub transmissions: u64,
    /// Retransmissions only (a subset of `transmissions`).
    pub retransmissions: u64,
    /// Updates confirmed by the cloud.
    pub acked: u64,
    /// Acks that arrived for already-released records (suppressed).
    pub duplicate_acks: u64,
    /// Retry timers that expired awaiting an ack.
    pub timeouts: u64,
}

/// Typed handles for the fog engine's instruments (`sync.*`), registered
/// once at build time so every hot-path update is an indexed add.
#[derive(Clone, Debug)]
struct SyncInstruments {
    enqueued: Counter,
    dropped: Counter,
    transmissions: Counter,
    retransmissions: Counter,
    acked: Counter,
    duplicate_acks: Counter,
    timeouts: Counter,
    pending: Gauge,
    in_flight: Gauge,
    mode: Gauge,
    retry_interval_ms: Hist,
    /// Entries examined per round (timer fires, incl. stale, + ready-queue
    /// pops): the witness that per-round work tracks transmissions + due
    /// timers, not backlog depth.
    round_scanned: Hist,
    round_span: Span,
}

impl SyncInstruments {
    fn register(obs: &mut Obs) -> SyncInstruments {
        SyncInstruments {
            enqueued: obs.counter("sync.enqueued"),
            dropped: obs.counter("sync.dropped"),
            transmissions: obs.counter("sync.transmissions"),
            retransmissions: obs.counter("sync.retransmissions"),
            acked: obs.counter("sync.acked"),
            duplicate_acks: obs.counter("sync.duplicate_acks"),
            timeouts: obs.counter("sync.timeouts"),
            pending: obs.gauge("sync.pending"),
            in_flight: obs.gauge("sync.in_flight"),
            mode: obs.gauge("sync.mode"),
            retry_interval_ms: obs.hist("sync.retry_interval_ms", 0.0, 600_000.0, 64),
            round_scanned: obs.hist("sync.round_scanned", 0.0, 4096.0, 64),
            round_span: obs.span("sync.round"),
        }
    }
}

/// Per-record transmission state while awaiting an ack.
#[derive(Clone, Copy, Debug)]
struct FlightState {
    /// Transmissions so far (≥ 1 once in flight).
    attempts: u32,
    /// When the next retransmission is due.
    next_retry: SimTime,
}

/// How many released seqs the duplicate-ack window remembers exactly.
/// Seqs that age out fall below the watermark and are still classified as
/// duplicates — the window trades a vanishingly rare misclassification
/// (an ack for a seq released > 65 536 releases ago that was never
/// actually released would read as duplicate instead of unknown) for
/// O(window) memory on week-long runs.
const RELEASED_WINDOW: usize = 65_536;

/// A buffered update plus its transmission state, keyed by seq in the
/// engine's record table.
#[derive(Clone, Debug)]
struct PendingRecord {
    record: UpdateRecord,
    /// `Some` once transmitted and awaiting an ack.
    flight: Option<FlightState>,
}

/// Builds a [`FogSync`] with named, defaulted retry parameters.
///
/// Out-of-range values are clamped into their valid domain rather than
/// rejected (capacity and window to ≥ 1, backoff factor to ≥ 1, jitter to
/// `[0, 1]`), so `build` cannot fail.
///
/// # Example
/// ```
/// use swamp_fog::sync::{DropPolicy, FogSync};
/// use swamp_sim::SimDuration;
///
/// let sync = FogSync::builder("fog", "cloud")
///     .capacity(10_000)
///     .drop_policy(DropPolicy::Oldest)
///     .base_timeout(SimDuration::from_secs(10))
///     .backoff(2.0, SimDuration::from_secs(120))
///     .jitter(0.1)
///     .max_in_flight(256)
///     .build();
/// assert_eq!(sync.pending(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct FogSyncBuilder {
    node: NodeId,
    cloud: NodeId,
    capacity: usize,
    policy: DropPolicy,
    base_timeout: SimDuration,
    backoff_factor: f64,
    max_backoff: SimDuration,
    jitter: f64,
    max_in_flight: usize,
    degraded_after: u32,
    offline_after: u32,
    seed: u64,
}

impl FogSyncBuilder {
    fn new(node: NodeId, cloud: NodeId) -> Self {
        FogSyncBuilder {
            node,
            cloud,
            capacity: 100_000,
            policy: DropPolicy::Oldest,
            base_timeout: SimDuration::from_secs(30),
            backoff_factor: 2.0,
            max_backoff: SimDuration::from_secs(480),
            jitter: 0.1,
            max_in_flight: 1024,
            degraded_after: 2,
            offline_after: 6,
            seed: 0x666f675f73796e63, // "fog_sync"
        }
    }

    /// Buffer capacity in records (clamped to ≥ 1). Default 100 000.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// What to drop when the buffer is full. Default [`DropPolicy::Oldest`].
    pub fn drop_policy(mut self, policy: DropPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Timeout before the first retransmission. Default 30 s.
    pub fn base_timeout(mut self, timeout: SimDuration) -> Self {
        self.base_timeout = timeout;
        self
    }

    /// Exponential backoff: each retry waits `factor` times longer than the
    /// previous one (clamped to ≥ 1), never beyond `cap`. Default ×2,
    /// capped at 480 s. A factor of 1 gives the classic constant-interval
    /// retransmit.
    pub fn backoff(mut self, factor: f64, cap: SimDuration) -> Self {
        self.backoff_factor = if factor.is_finite() {
            factor.max(1.0)
        } else {
            1.0
        };
        self.max_backoff = cap;
        self
    }

    /// Multiplicative jitter fraction applied to every retry interval
    /// (clamped to `[0, 1]`): an interval `d` becomes uniform in
    /// `[d·(1−j), d·(1+j)]`. Default 0.1.
    pub fn jitter(mut self, fraction: f64) -> Self {
        self.jitter = if fraction.is_finite() {
            fraction.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// Maximum records awaiting acknowledgement at once (clamped to ≥ 1).
    /// Default 1024.
    pub fn max_in_flight(mut self, window: usize) -> Self {
        self.max_in_flight = window.max(1);
        self
    }

    /// Strike thresholds for the degraded-mode state machine: the number of
    /// consecutive timeout rounds before entering `Degraded` and `Offline`
    /// (each clamped to ≥ 1, `offline` to ≥ `degraded`). Default 2 and 6.
    pub fn degraded_thresholds(mut self, degraded: u32, offline: u32) -> Self {
        self.degraded_after = degraded.max(1);
        self.offline_after = offline.max(self.degraded_after);
        self
    }

    /// Seed for the jitter RNG stream. Defaults to a fixed engine seed, so
    /// set this when running multiple engines that must not synchronize.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the engine. Infallible: invalid parameters were clamped by
    /// their setters.
    pub fn build(self) -> FogSync {
        let mut obs = Obs::new();
        let ins = SyncInstruments::register(&mut obs);
        FogSync {
            node: self.node,
            cloud: self.cloud,
            capacity: self.capacity,
            policy: self.policy,
            base_timeout: self.base_timeout,
            backoff_factor: self.backoff_factor,
            max_backoff: self.max_backoff,
            jitter: self.jitter,
            max_in_flight: self.max_in_flight,
            degraded_after: self.degraded_after,
            offline_after: self.offline_after,
            rng: SimRng::seed_from(self.seed),
            records: BTreeMap::new(),
            ready: VecDeque::new(),
            wheel: TimerWheel::new(SimTime::ZERO),
            in_flight_count: 0,
            released_recent: BTreeSet::new(),
            released_floor: 0,
            next_seq: 0,
            strikes: 0,
            mode: DegradedMode::Connected,
            mode_since: SimTime::ZERO,
            fired: Vec::new(),
            due: Vec::new(),
            planned: Vec::new(),
            obs,
            ins,
        }
    }
}

/// Fog-side sync engine: bounded buffer + ack/retransmit with exponential
/// backoff, a bounded in-flight window, and a degraded-mode state machine.
///
/// # Example
/// ```
/// use swamp_fog::sync::FogSync;
/// use swamp_sim::SimTime;
/// let mut sync = FogSync::builder("fog", "cloud").build();
/// sync.enqueue(SimTime::ZERO, "probe-1", b"vwc=0.2".to_vec()).unwrap();
/// assert_eq!(sync.pending(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FogSync {
    node: NodeId,
    cloud: NodeId,
    capacity: usize,
    policy: DropPolicy,
    base_timeout: SimDuration,
    backoff_factor: f64,
    max_backoff: SimDuration,
    jitter: f64,
    max_in_flight: usize,
    degraded_after: u32,
    offline_after: u32,
    rng: SimRng,
    /// Backlog, keyed by seq (ascending iteration = enqueue order); release
    /// by ack is a keyed remove.
    records: BTreeMap<u64, PendingRecord>,
    /// Never-transmitted seqs in enqueue (= seq) order. Entries whose
    /// record was released or evicted before its first transmission are
    /// dropped lazily when they reach the front.
    ready: VecDeque<u64>,
    /// Retry deadlines as `(seq, attempts)` entries. An entry is live iff
    /// its record is still in flight with the same attempt count — the
    /// generation check applied when it fires; nothing is eagerly deleted.
    wheel: TimerWheel<(u64, u32)>,
    /// Records with a live flight state (awaiting an ack).
    in_flight_count: usize,
    /// The most recent released seqs, bounded by [`RELEASED_WINDOW`].
    released_recent: BTreeSet<u64>,
    /// Seqs below this watermark are treated as released (their exact
    /// membership aged out of `released_recent`).
    released_floor: u64,
    next_seq: u64,
    /// Consecutive strike rounds (timeouts / refused sends) without an ack.
    strikes: u32,
    mode: DegradedMode,
    mode_since: SimTime,
    /// Round-scoped scratch, kept warm so steady-state rounds allocate
    /// nothing (see the fog alloc_counts suite).
    fired: Vec<(SimTime, (u64, u32))>,
    due: Vec<(u64, u32)>,
    planned: Vec<(u64, u32)>,
    obs: Obs,
    ins: SyncInstruments,
}

impl FogSync {
    /// Starts building a sync engine for the fog node talking to the cloud
    /// node. See [`FogSyncBuilder`] for the tunable knobs and defaults.
    pub fn builder(node: impl Into<NodeId>, cloud: impl Into<NodeId>) -> FogSyncBuilder {
        FogSyncBuilder::new(node.into(), cloud.into())
    }

    /// Buffered (not yet acked) update count.
    pub fn pending(&self) -> usize {
        self.records.len()
    }

    /// Records currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.in_flight_count
    }

    /// Counters, materialized from the engine's typed `swamp-obs` handles.
    pub fn stats(&self) -> SyncStats {
        SyncStats {
            enqueued: self.obs.value(self.ins.enqueued),
            dropped: self.obs.value(self.ins.dropped),
            transmissions: self.obs.value(self.ins.transmissions),
            retransmissions: self.obs.value(self.ins.retransmissions),
            acked: self.obs.value(self.ins.acked),
            duplicate_acks: self.obs.value(self.ins.duplicate_acks),
            timeouts: self.obs.value(self.ins.timeouts),
        }
    }

    /// Typed snapshot of the engine's instruments: the `sync.*` counters,
    /// the `sync.pending` / `sync.in_flight` / `sync.mode` gauges, the
    /// `sync.retry_interval_ms` backoff histogram, the `sync.round` span
    /// and the `sync.mode` degradation-transition events.
    pub fn observe(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Enables or disables instrumentation (for uninstrumented baselines).
    pub fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }

    /// Current uplink health as judged by the retry engine.
    pub fn mode(&self) -> DegradedMode {
        self.mode
    }

    /// When the engine entered its current mode.
    pub fn mode_since(&self) -> SimTime {
        self.mode_since
    }

    /// Queues one update, applying the drop policy when full.
    ///
    /// # Errors
    /// [`SyncError::KeyTooLong`] if the key cannot be encoded (nothing is
    /// enqueued); [`SyncError::BufferFull`] if the buffer is full under
    /// [`DropPolicy::Newest`] (the update is refused and counted dropped).
    pub fn enqueue(&mut self, now: SimTime, key: &str, payload: Vec<u8>) -> Result<u64, SyncError> {
        if key.len() > MAX_KEY_LEN {
            return Err(SyncError::KeyTooLong { len: key.len() });
        }
        if self.records.len() >= self.capacity {
            match self.policy {
                DropPolicy::Oldest => {
                    // Evict the oldest (lowest-seq) record. Its ready-queue
                    // or timer-wheel entry goes stale and is dropped lazily
                    // the next time it surfaces.
                    if let Some((_, old)) = self.records.pop_first() {
                        if old.flight.is_some() {
                            self.in_flight_count -= 1;
                        }
                        self.obs.inc(self.ins.dropped);
                    }
                }
                DropPolicy::Newest => {
                    self.obs.inc(self.ins.dropped);
                    return Err(SyncError::BufferFull {
                        capacity: self.capacity,
                    });
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.insert(
            seq,
            PendingRecord {
                record: UpdateRecord {
                    seq,
                    key: key.to_owned(),
                    payload,
                    created_at: now,
                },
                flight: None,
            },
        );
        self.ready.push_back(seq);
        self.obs.inc(self.ins.enqueued);
        Ok(seq)
    }

    /// Queues a batch of `(key, payload)` updates — the bulk mirror of
    /// [`FogSync::enqueue`], used by the platform's batched ingestion path.
    /// Validates every key before enqueuing anything, then applies the drop
    /// policy per record. Returns how many were accepted; refusals under
    /// [`DropPolicy::Newest`] are a policy outcome (counted in
    /// [`SyncStats::dropped`]), not an error.
    ///
    /// # Errors
    /// [`SyncError::KeyTooLong`] if any key cannot be encoded — in that
    /// case no update from the batch is enqueued.
    pub fn enqueue_batch<'a>(
        &mut self,
        now: SimTime,
        items: impl IntoIterator<Item = (&'a str, Vec<u8>)>,
    ) -> Result<usize, SyncError> {
        let items: Vec<(&str, Vec<u8>)> = items.into_iter().collect();
        if let Some(&(key, _)) = items.iter().find(|(k, _)| k.len() > MAX_KEY_LEN) {
            return Err(SyncError::KeyTooLong { len: key.len() });
        }
        let mut accepted = 0;
        for (key, payload) in items {
            match self.enqueue(now, key, payload) {
                Ok(_) => accepted += 1,
                Err(SyncError::BufferFull { .. }) => {}
                Err(other) => return Err(other), // unreachable post-validation
            }
        }
        Ok(accepted)
    }

    /// The retry interval for a record that has been transmitted `attempts`
    /// times: `min(base · factor^(attempts−1), cap)`, jittered.
    fn retry_interval(&mut self, attempts: u32) -> SimDuration {
        let base_ms = self.base_timeout.as_millis() as f64;
        let cap_ms = self.max_backoff.as_millis().max(1) as f64;
        let exp = attempts.saturating_sub(1).min(48);
        let mut ms = base_ms * self.backoff_factor.powi(exp as i32);
        if !ms.is_finite() || ms > cap_ms {
            ms = cap_ms;
        }
        if self.jitter > 0.0 {
            let u = self.rng.uniform_f64();
            ms *= 1.0 + self.jitter * (2.0 * u - 1.0);
        }
        let ms = ms.max(1.0);
        self.obs.record(self.ins.retry_interval_ms, ms);
        SimDuration::from_millis(ms as u64)
    }

    /// Runs one sync round at `now`: transmits new records (subject to the
    /// in-flight window) and retransmits records whose retry timer expired,
    /// up to `batch` transmissions. Feeds the degraded-mode state machine.
    /// Returns how many messages were handed to the network.
    ///
    /// Cost: O(transmissions + timer fires) — the round never scans the
    /// backlog. Due retransmissions come off the timer wheel, new records
    /// off the ready queue; both carry stale entries (released, evicted or
    /// re-scheduled records) that are discarded on surfacing via a
    /// `(seq, attempts)` generation check against the record table.
    pub fn sync_round(&mut self, net: &mut Network, now: SimTime, batch: usize) -> usize {
        let token = self.obs.enter(self.ins.round_span);
        // Scratch vectors are engine fields so steady-state rounds don't
        // allocate; taken locally to keep the borrow checker happy.
        let mut fired = std::mem::take(&mut self.fired);
        let mut due = std::mem::take(&mut self.due);
        let mut planned = std::mem::take(&mut self.planned);

        // 1. Collect expired retry timers. The wheel yields every entry
        // whose deadline passed; the generation check keeps exactly those
        // still describing a live flight.
        self.wheel.advance_into(now, &mut fired);
        let mut scanned = fired.len() as u64;
        for &(_, (seq, attempts)) in &fired {
            if let Some(p) = self.records.get(&seq) {
                if let Some(f) = p.flight {
                    if f.attempts == attempts {
                        if now >= f.next_retry {
                            due.push((seq, f.attempts));
                        } else {
                            // Defensive (non-monotone clock): not actually
                            // due yet, keep the deadline armed.
                            self.wheel.schedule(f.next_retry, (seq, f.attempts));
                        }
                    }
                }
            }
        }
        // The wheel fires in slot order; rounds transmit in seq order.
        due.sort_unstable();

        // 2. Plan up to `batch` transmissions in ascending seq order,
        // merging due retransmissions with ready-queue admissions. Window
        // accounting: retransmits occupy existing window slots; only first
        // transmissions consume new ones.
        let mut window_used = self.in_flight_count;
        let mut expired = 0u64;
        let mut due_idx = 0;
        loop {
            if planned.len() >= batch {
                break;
            }
            // Next admissible new record: skip stale ready heads (records
            // released or evicted before their first transmission).
            let next_new = if window_used < self.max_in_flight {
                loop {
                    match self.ready.front() {
                        Some(&seq) => match self.records.get(&seq) {
                            Some(p) if p.flight.is_none() => break Some(seq),
                            _ => {
                                self.ready.pop_front();
                                scanned += 1;
                            }
                        },
                        None => break None,
                    }
                }
            } else {
                None
            };
            match (due.get(due_idx).copied(), next_new) {
                (Some((dseq, datt)), Some(nseq)) if dseq < nseq => {
                    planned.push((dseq, datt));
                    expired += 1;
                    due_idx += 1;
                }
                (Some((dseq, datt)), None) => {
                    planned.push((dseq, datt));
                    expired += 1;
                    due_idx += 1;
                }
                (_, Some(nseq)) => {
                    planned.push((nseq, 0));
                    window_used += 1;
                    self.ready.pop_front();
                    scanned += 1;
                }
                (None, None) => break,
            }
        }
        self.obs.add(self.ins.timeouts, expired);
        self.obs.record(self.ins.round_scanned, scanned as f64);

        // 3. Transmit. Backoff schedules (and their jitter RNG draws)
        // happen per successful send, in planned (seq) order.
        let mut sent = 0;
        let mut refused_at = None;
        for (i, &(seq, prior_attempts)) in planned.iter().enumerate() {
            let Some(p) = self.records.get(&seq) else {
                continue; // unreachable: planned from the live table
            };
            let msg = Message::new(SYNC_TOPIC, encode_record(&p.record));
            match net.send(now, self.node.clone(), self.cloud.clone(), msg) {
                Ok(_) => {
                    self.obs.inc(self.ins.transmissions);
                    if prior_attempts > 0 {
                        self.obs.inc(self.ins.retransmissions);
                    }
                    let attempts = prior_attempts + 1;
                    let next_retry = now.saturating_add(self.retry_interval(attempts));
                    if let Some(p) = self.records.get_mut(&seq) {
                        if p.flight.is_none() {
                            self.in_flight_count += 1;
                        }
                        p.flight = Some(FlightState {
                            attempts,
                            next_retry,
                        });
                    }
                    // The previous deadline's entry (if any) went stale the
                    // moment `attempts` advanced.
                    self.wheel.schedule(next_retry, (seq, attempts));
                    sent += 1;
                }
                Err(_) => {
                    // No route / denied: a synchronous refusal. Stop the
                    // round and let the state machine register the strike.
                    refused_at = Some(i);
                    break;
                }
            }
        }

        // 4. Re-arm what was planned (or due) but not sent, so nothing is
        // lost: unsent new records return to the ready-queue front in
        // order; unsent due records keep their already-passed deadline and
        // surface again next round.
        let refused = refused_at.is_some();
        if let Some(start) = refused_at {
            for &(seq, prior_attempts) in planned[start..].iter().rev() {
                if prior_attempts == 0 {
                    self.ready.push_front(seq);
                } else if let Some(p) = self.records.get(&seq) {
                    if let Some(f) = p.flight {
                        self.wheel.schedule(f.next_retry, (seq, f.attempts));
                    }
                }
            }
        }
        for &(seq, _) in &due[due_idx..] {
            if let Some(p) = self.records.get(&seq) {
                if let Some(f) = p.flight {
                    self.wheel.schedule(f.next_retry, (seq, f.attempts));
                }
            }
        }

        fired.clear();
        due.clear();
        planned.clear();
        self.fired = fired;
        self.due = due;
        self.planned = planned;

        if expired > 0 || refused {
            self.strikes = self.strikes.saturating_add(1);
            let mode = if self.strikes >= self.offline_after {
                DegradedMode::Offline
            } else if self.strikes >= self.degraded_after {
                DegradedMode::Degraded
            } else {
                self.mode
            };
            self.set_mode(mode, now);
        }
        self.refresh_gauges();
        self.obs.exit(token);
        sent
    }

    /// Whether `seq` was already released: either still in the recent
    /// window, or below the watermark (released so long ago its exact
    /// membership aged out).
    fn was_released(&self, seq: u64) -> bool {
        seq < self.released_floor || self.released_recent.contains(&seq)
    }

    /// Records a release in the bounded dedup window, aging the oldest
    /// entry into the watermark once the window is full.
    fn mark_released(&mut self, seq: u64) {
        if seq < self.released_floor {
            return;
        }
        self.released_recent.insert(seq);
        while self.released_recent.len() > RELEASED_WINDOW {
            if let Some(oldest) = self.released_recent.pop_first() {
                self.released_floor = oldest + 1;
            }
        }
    }

    /// Processes an ack payload from the cloud at `now`, releasing
    /// confirmed records exactly once. Any released record resets the
    /// degraded-mode state machine to `Connected`.
    ///
    /// Each release is a keyed remove from the record table — amortized
    /// O(1) in backlog depth. The released record's ready-queue or
    /// timer-wheel entry is left behind and discarded lazily when it
    /// surfaces.
    ///
    /// # Errors
    /// [`SyncError::MalformedAck`] if the payload is not a whole number of
    /// 8-byte sequence numbers (nothing is released).
    pub fn process_ack(&mut self, now: SimTime, payload: &[u8]) -> Result<AckOutcome, SyncError> {
        if !payload.len().is_multiple_of(8) {
            return Err(SyncError::MalformedAck { len: payload.len() });
        }
        let mut outcome = AckOutcome::default();
        for chunk in payload.chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            let seq = u64::from_be_bytes(b);
            if let Some(p) = self.records.remove(&seq) {
                if p.flight.is_some() {
                    self.in_flight_count -= 1;
                }
                self.obs.inc(self.ins.acked);
                self.mark_released(seq);
                outcome.released += 1;
            } else if self.was_released(seq) {
                self.obs.inc(self.ins.duplicate_acks);
                outcome.duplicate += 1;
            } else {
                outcome.unknown += 1;
            }
        }
        if outcome.released > 0 {
            self.strikes = 0;
            self.set_mode(DegradedMode::Connected, now);
        }
        self.refresh_gauges();
        Ok(outcome)
    }

    /// Drains the fog node's network inbox at `now`, handling ack messages.
    /// Malformed ack payloads are counted in the outcome rather than
    /// aborting the drain (bytes off the wire are not the caller's fault).
    pub fn poll_acks(&mut self, net: &mut Network, now: SimTime) -> AckOutcome {
        let mut total = AckOutcome::default();
        let deliveries = net.drain(&self.node);
        for d in deliveries {
            if d.message.topic == ACK_TOPIC {
                match self.process_ack(now, &d.message.payload) {
                    Ok(outcome) => total.absorb(outcome),
                    Err(_) => total.malformed += 1,
                }
            }
        }
        total
    }

    fn set_mode(&mut self, mode: DegradedMode, now: SimTime) {
        if self.mode != mode {
            // Downgrades warn; recovery to Connected is informational.
            let level = if mode == DegradedMode::Connected {
                Level::Info
            } else {
                Level::Warn
            };
            self.obs.event(
                level,
                "sync.mode",
                &format!("{}->{} @{}ms", self.mode, mode, now.as_millis()),
            );
            self.mode = mode;
            self.mode_since = now;
        }
    }

    /// Refreshes the buffer-occupancy and mode gauges after a round or an
    /// ack drain (the points where they can change).
    fn refresh_gauges(&mut self) {
        self.obs.set(self.ins.pending, self.records.len() as f64);
        self.obs
            .set(self.ins.in_flight, self.in_flight_count as f64);
        let mode = match self.mode {
            DegradedMode::Connected => 0.0,
            DegradedMode::Degraded => 1.0,
            DegradedMode::Offline => 2.0,
        };
        self.obs.set(self.ins.mode, mode);
    }
}

/// Per-source reorder state for [`CloudStore::drain_ready`]: records are
/// held back until every smaller sequence number has been released, so a
/// downstream consumer sees each source's stream in send order even though
/// retransmissions arrive out of order.
#[derive(Clone, Debug)]
struct ReorderBuffer {
    /// Safety valve: a held record older than this releases anyway (its
    /// gap can only be a record the *sender* dropped pre-transmission —
    /// the ack protocol retries everything else until it lands).
    max_hold: SimDuration,
    /// Next sequence number to release, per source.
    next: BTreeMap<NodeId, u64>,
    /// Accepted records awaiting release: seq → (record, held since).
    held: BTreeMap<NodeId, BTreeMap<u64, (UpdateRecord, SimTime)>>,
}

/// Typed handles for the cloud store's instruments (`cloud.*`).
#[derive(Clone, Debug)]
struct CloudInstruments {
    accepted: Counter,
    duplicates: Counter,
    /// Ack sends the network refused (e.g. during a partition window); the
    /// fog's retry engine covers the loss, so a refusal is counted, never
    /// an error.
    acks_refused: Counter,
}

impl CloudInstruments {
    fn register(obs: &mut Obs) -> CloudInstruments {
        CloudInstruments {
            accepted: obs.counter("cloud.accepted"),
            duplicates: obs.counter("cloud.duplicates"),
            acks_refused: obs.counter("cloud.acks_refused"),
        }
    }
}

/// Cloud-side receiving store: deduplicates per source by sequence number
/// and sends batched acks.
#[derive(Clone, Debug)]
pub struct CloudStore {
    node: NodeId,
    /// Latest payload per key.
    latest: BTreeMap<String, UpdateRecord>,
    /// Full history (append order of acceptance).
    history: Vec<UpdateRecord>,
    /// Accepted seqs per source node (two fogs may both start at seq 0).
    seen_seqs: BTreeMap<NodeId, BTreeSet<u64>>,
    /// Cursor into `history`: records before it were already handed out by
    /// [`CloudStore::drain_new`] to a downstream applier.
    drained: usize,
    /// In-order release state, present when built with
    /// [`CloudStore::in_order`].
    reorder: Option<ReorderBuffer>,
    obs: Obs,
    ins: CloudInstruments,
}

impl CloudStore {
    /// Creates a store living at the given cloud node.
    pub fn new(node: impl Into<NodeId>) -> Self {
        let mut obs = Obs::new();
        let ins = CloudInstruments::register(&mut obs);
        CloudStore {
            node: node.into(),
            latest: BTreeMap::new(),
            history: Vec::new(),
            seen_seqs: BTreeMap::new(),
            drained: 0,
            reorder: None,
            obs,
            ins,
        }
    }

    /// Creates a store whose [`CloudStore::drain_ready`] releases each
    /// source's records in sequence order, holding out-of-order arrivals
    /// until the gap before them fills (or `max_hold` elapses — the
    /// safety valve for sequence numbers the sender's bounded buffer
    /// dropped before ever transmitting, which would otherwise stall the
    /// stream forever). Consumers that replay-check or order-check the
    /// stream (e.g. a per-device sequence monitor behind a gateway relay)
    /// need this: retransmitted records routinely overtake each other on
    /// a lossy uplink.
    pub fn in_order(node: impl Into<NodeId>, max_hold: SimDuration) -> Self {
        let mut store = CloudStore::new(node);
        store.reorder = Some(ReorderBuffer {
            max_hold,
            next: BTreeMap::new(),
            held: BTreeMap::new(),
        });
        store
    }

    /// Unique records accepted.
    pub fn record_count(&self) -> usize {
        self.history.len()
    }

    /// Duplicate transmissions discarded.
    pub fn duplicates(&self) -> u64 {
        self.obs.value(self.ins.duplicates)
    }

    /// Typed snapshot of the store's instruments (`cloud.accepted`,
    /// `cloud.duplicates`, `cloud.acks_refused`).
    pub fn observe(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Enables or disables instrumentation (for uninstrumented baselines).
    pub fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }

    /// Latest payload for a key.
    pub fn latest(&self, key: &str) -> Option<&UpdateRecord> {
        self.latest.get(key)
    }

    /// Full accepted history in arrival order.
    pub fn history(&self) -> &[UpdateRecord] {
        &self.history
    }

    /// Records accepted since the last `drain_new` call, advancing the
    /// apply cursor. Downstream appliers (e.g. the platform's cloud-side
    /// context mirror, which batch-upserts these into a broker) call this
    /// after [`CloudStore::process`] to replicate exactly-once without
    /// copying records.
    pub fn drain_new(&mut self) -> &[UpdateRecord] {
        let from = self.drained;
        self.drained = self.history.len();
        &self.history[from..]
    }

    /// Records ready for an order-sensitive consumer. On a store built
    /// with [`CloudStore::in_order`], returns newly accepted records in
    /// per-source sequence order, holding back any record whose
    /// predecessors have not yet arrived; on a plain store this is
    /// [`CloudStore::drain_new`] in arrival order.
    pub fn drain_ready(&mut self, now: SimTime) -> Vec<UpdateRecord> {
        let Some(reorder) = &mut self.reorder else {
            return self.drain_new().to_vec();
        };
        // Keep the plain drain cursor coherent even in in-order mode.
        self.drained = self.history.len();
        let mut out = Vec::new();
        for (source, held) in &mut reorder.held {
            let next = reorder.next.entry(source.clone()).or_insert(0);
            loop {
                if let Some((record, _)) = held.remove(next) {
                    out.push(record);
                    *next += 1;
                    continue;
                }
                // Gap at `next`. Only skip it if the oldest held record
                // has waited past the safety valve: the sender retries
                // every accepted record until acked, so a persistent gap
                // means the sender itself dropped that sequence number.
                match held.iter().next() {
                    Some((&seq, &(_, held_since))) if now - held_since >= reorder.max_hold => {
                        *next = seq;
                    }
                    _ => break,
                }
            }
        }
        out
    }

    /// Records currently held back by the in-order release buffer
    /// (always 0 on a plain store).
    pub fn held_back(&self) -> usize {
        self.reorder
            .as_ref()
            .map(|r| r.held.values().map(BTreeMap::len).sum())
            .unwrap_or(0)
    }

    /// Drains the cloud inbox, storing records and sending one batched ack
    /// per sync source. Every decodable record is acked — including
    /// duplicates, whose earlier ack may have been lost. Returns the number
    /// of new records accepted.
    pub fn process(&mut self, net: &mut Network, now: SimTime) -> usize {
        let deliveries = net.drain(&self.node);
        self.process_deliveries(net, now, deliveries)
    }

    /// Processes an already-drained batch of deliveries — for callers that
    /// share the cloud node's inbox with other consumers and therefore
    /// drain once and route by topic themselves. Non-[`SYNC_TOPIC`]
    /// deliveries are skipped. Same storage/ack semantics as
    /// [`CloudStore::process`].
    pub fn process_deliveries(
        &mut self,
        net: &mut Network,
        now: SimTime,
        deliveries: impl IntoIterator<Item = Delivery>,
    ) -> usize {
        let mut accepted = 0;
        let mut acks: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
        for d in deliveries {
            if d.message.topic != SYNC_TOPIC {
                continue;
            }
            if let Some(record) = decode_record(&d.message.payload) {
                acks.entry(d.src.clone()).or_default().push(record.seq);
                if self
                    .seen_seqs
                    .entry(d.src.clone())
                    .or_default()
                    .insert(record.seq)
                {
                    self.latest.insert(record.key.clone(), record.clone());
                    if let Some(reorder) = &mut self.reorder {
                        reorder
                            .held
                            .entry(d.src.clone())
                            .or_default()
                            .insert(record.seq, (record.clone(), now));
                    }
                    self.history.push(record);
                    self.obs.inc(self.ins.accepted);
                    accepted += 1;
                } else {
                    self.obs.inc(self.ins.duplicates);
                }
            }
        }
        for (fog, seqs) in acks {
            // Ack sends may race a partition window; the fog's retry engine
            // covers the loss, so a refused ack send is counted, not fatal.
            if net
                .send(
                    now,
                    self.node.clone(),
                    fog,
                    Message::new(ACK_TOPIC, encode_acks(&seqs)),
                )
                .is_err()
            {
                self.obs.inc(self.ins.acks_refused);
            }
        }
        accepted
    }
}

/// Encodes a record. Infallible: key length was validated against
/// [`MAX_KEY_LEN`] at enqueue time (the 16-bit length prefix cannot
/// truncate).
fn encode_record(r: &UpdateRecord) -> Vec<u8> {
    let key_bytes = r.key.as_bytes();
    // `min(MAX_KEY_LEN)` bounds the length to u16::MAX, so the fallback
    // arm is unreachable; `try_from` keeps the conversion visibly lossless.
    let key_len = u16::try_from(key_bytes.len().min(MAX_KEY_LEN)).unwrap_or(u16::MAX);
    let mut out = Vec::with_capacity(8 + 8 + 2 + key_bytes.len() + r.payload.len());
    out.extend_from_slice(&r.seq.to_be_bytes());
    out.extend_from_slice(&r.created_at.as_millis().to_be_bytes());
    out.extend_from_slice(&key_len.to_be_bytes());
    out.extend_from_slice(&key_bytes[..usize::from(key_len)]);
    out.extend_from_slice(&r.payload);
    out
}

fn decode_record(bytes: &[u8]) -> Option<UpdateRecord> {
    if bytes.len() < 18 {
        return None;
    }
    let seq = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
    let created_ms = u64::from_be_bytes(bytes[8..16].try_into().ok()?);
    let key_len = usize::from(u16::from_be_bytes(bytes[16..18].try_into().ok()?));
    if bytes.len() < 18 + key_len {
        return None;
    }
    let key = std::str::from_utf8(&bytes[18..18 + key_len])
        .ok()?
        .to_owned();
    let payload = bytes[18 + key_len..].to_vec();
    Some(UpdateRecord {
        seq,
        key,
        payload,
        created_at: SimTime::from_millis(created_ms),
    })
}

fn encode_acks(seqs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(seqs.len() * 8);
    for s in seqs {
        out.extend_from_slice(&s.to_be_bytes());
    }
    out
}

/// Decodes a validated ack payload (callers check `len % 8 == 0`); a
/// trailing partial chunk would be silently ignored by `chunks_exact`.
/// The hot path ([`FogSync::process_ack`]) walks the chunks in place
/// instead of materializing this vector; kept for the codec tests.
#[cfg(test)]
fn decode_acks(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            u64::from_be_bytes(b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_net::link::LinkSpec;

    fn setup(loss: f64) -> (Network, FogSync, CloudStore) {
        let mut net = Network::new(11);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect(
            "fog",
            "cloud",
            LinkSpec::new(
                SimDuration::from_millis(50),
                SimDuration::ZERO,
                loss,
                10_000_000,
            ),
        );
        let sync = FogSync::builder("fog", "cloud")
            .capacity(1000)
            .drop_policy(DropPolicy::Oldest)
            .base_timeout(SimDuration::from_secs(5))
            .backoff(2.0, SimDuration::from_secs(60))
            .jitter(0.0)
            .build();
        (net, sync, CloudStore::new("cloud"))
    }

    /// Runs rounds of sync/process until quiescent or `rounds` exhausted.
    fn pump(
        net: &mut Network,
        sync: &mut FogSync,
        cloud: &mut CloudStore,
        start: SimTime,
        rounds: usize,
    ) -> SimTime {
        let mut now = start;
        for _ in 0..rounds {
            sync.sync_round(net, now, 64);
            now += SimDuration::from_secs(1);
            net.advance_to(now);
            cloud.process(net, now);
            now += SimDuration::from_secs(1);
            net.advance_to(now);
            sync.poll_acks(net, now);
            now += SimDuration::from_secs(5);
            if sync.pending() == 0 {
                break;
            }
        }
        now
    }

    #[test]
    fn record_codec_roundtrip() {
        let r = UpdateRecord {
            seq: 42,
            key: "urn:swamp:probe:7".into(),
            payload: vec![1, 2, 3, 255],
            created_at: SimTime::from_secs(99),
        };
        assert_eq!(decode_record(&encode_record(&r)), Some(r));
        assert_eq!(decode_record(b"short"), None);
        assert_eq!(decode_acks(&encode_acks(&[1, 2, 3])), vec![1, 2, 3]);
    }

    #[test]
    fn clean_link_syncs_everything() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        for i in 0..50 {
            sync.enqueue(SimTime::ZERO, &format!("key-{i}"), vec![i as u8])
                .unwrap();
        }
        pump(&mut net, &mut sync, &mut cloud, SimTime::ZERO, 20);
        assert_eq!(sync.pending(), 0);
        assert_eq!(cloud.record_count(), 50);
        assert_eq!(sync.stats().acked, 50);
        assert!(cloud.latest("key-7").is_some());
        assert_eq!(sync.mode(), DegradedMode::Connected);
    }

    #[test]
    fn lossy_link_recovers_via_retransmit() {
        let (mut net, mut sync, mut cloud) = setup(0.3);
        for i in 0..100 {
            sync.enqueue(SimTime::ZERO, &format!("key-{i}"), vec![i as u8])
                .unwrap();
        }
        pump(&mut net, &mut sync, &mut cloud, SimTime::ZERO, 200);
        assert_eq!(sync.pending(), 0, "all records eventually acked");
        assert_eq!(cloud.record_count(), 100);
        // Loss forces retransmissions beyond the original 100.
        assert!(sync.stats().transmissions > 100);
        assert_eq!(
            sync.stats().transmissions - sync.stats().retransmissions,
            100,
            "every record was first-transmitted exactly once"
        );
    }

    #[test]
    fn disconnection_buffers_then_drains() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        net.set_link_up(&"fog".into(), &"cloud".into(), false);
        let mut now = SimTime::ZERO;
        for i in 0..30 {
            sync.enqueue(now, &format!("key-{i}"), vec![i as u8])
                .unwrap();
            sync.sync_round(&mut net, now, 8);
            now += SimDuration::from_secs(60);
            net.advance_to(now);
            cloud.process(&mut net, now);
        }
        assert_eq!(cloud.record_count(), 0, "nothing crosses a down link");
        assert_eq!(sync.pending(), 30);

        // Uplink restored: backlog drains.
        net.set_link_up(&"fog".into(), &"cloud".into(), true);
        pump(&mut net, &mut sync, &mut cloud, now, 50);
        assert_eq!(cloud.record_count(), 30);
        assert_eq!(sync.pending(), 0);
    }

    #[test]
    fn duplicates_are_idempotent() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        sync.enqueue(SimTime::ZERO, "k", b"v".to_vec()).unwrap();
        // Transmit twice without processing acks (retransmit timer forced).
        sync.sync_round(&mut net, SimTime::ZERO, 8);
        sync.sync_round(&mut net, SimTime::from_secs(10), 8);
        net.advance_to(SimTime::from_secs(11));
        cloud.process(&mut net, SimTime::from_secs(11));
        assert_eq!(cloud.record_count(), 1);
        assert_eq!(cloud.duplicates(), 1);
    }

    fn sync_delivery(seq: u64, now: SimTime) -> Delivery {
        let record = UpdateRecord {
            seq,
            key: format!("k{seq}"),
            payload: vec![seq as u8],
            created_at: now,
        };
        Delivery {
            id: swamp_net::message::MsgId(seq),
            src: "fog".into(),
            dst: "cloud".into(),
            message: Message::new(SYNC_TOPIC, encode_record(&record)),
            sent_at: now,
            delivered_at: now,
        }
    }

    #[test]
    fn in_order_store_holds_gaps_until_they_fill() {
        let mut net = Network::new(1);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect("fog", "cloud", LinkSpec::farm_lan());
        let mut store = CloudStore::in_order("cloud", SimDuration::from_secs(600));

        // Seqs 0, 2, 3 arrive; 1 is still in flight (retransmitting).
        let t = SimTime::from_secs(1);
        store.process_deliveries(&mut net, t, [0, 2, 3].map(|s| sync_delivery(s, t)));
        let ready = store.drain_ready(t);
        assert_eq!(ready.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0]);
        assert_eq!(store.held_back(), 2);
        // All three were accepted (and acked) regardless of release order.
        assert_eq!(store.record_count(), 3);

        // The gap fills: the whole contiguous run releases, in seq order.
        let t2 = SimTime::from_secs(5);
        store.process_deliveries(&mut net, t2, [sync_delivery(1, t2)]);
        let ready = store.drain_ready(t2);
        assert_eq!(
            ready.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(store.held_back(), 0);
    }

    #[test]
    fn in_order_store_skips_a_dead_gap_after_max_hold() {
        let mut net = Network::new(1);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect("fog", "cloud", LinkSpec::farm_lan());
        let mut store = CloudStore::in_order("cloud", SimDuration::from_secs(600));

        // Seq 0 never arrives (dropped at the sender pre-transmission).
        let t = SimTime::from_secs(1);
        store.process_deliveries(&mut net, t, [1, 2].map(|s| sync_delivery(s, t)));
        assert!(store.drain_ready(t).is_empty());
        assert!(store.drain_ready(SimTime::from_secs(500)).is_empty());
        // Past the hold cap the stream unblocks in order.
        let ready = store.drain_ready(SimTime::from_secs(700));
        assert_eq!(ready.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn plain_store_drain_ready_is_arrival_order() {
        let mut net = Network::new(1);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect("fog", "cloud", LinkSpec::farm_lan());
        let mut store = CloudStore::new("cloud");
        let t = SimTime::from_secs(1);
        store.process_deliveries(&mut net, t, [2, 0].map(|s| sync_delivery(s, t)));
        let ready = store.drain_ready(t);
        assert_eq!(ready.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(store.held_back(), 0);
        // The cursor advanced: nothing is double-released.
        assert!(store.drain_ready(t).is_empty());
    }

    #[test]
    fn duplicate_acks_never_double_advance_stats() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        sync.enqueue(SimTime::ZERO, "k", b"v".to_vec()).unwrap();
        sync.sync_round(&mut net, SimTime::ZERO, 8);
        net.advance_to(SimTime::from_secs(1));
        cloud.process(&mut net, SimTime::from_secs(1));
        net.advance_to(SimTime::from_secs(2));
        let d = net.poll(&"fog".into()).unwrap();
        assert_eq!(d.message.topic, ACK_TOPIC);

        let now = SimTime::from_secs(2);
        let first = sync.process_ack(now, &d.message.payload).unwrap();
        assert_eq!(first.released, 1);
        assert_eq!(sync.stats().acked, 1);

        // The same ack replayed (e.g. an injected wire duplicate) is
        // suppressed: stats.acked does not advance.
        let second = sync.process_ack(now, &d.message.payload).unwrap();
        assert_eq!(second.released, 0);
        assert_eq!(second.duplicate, 1);
        assert_eq!(sync.stats().acked, 1);
        assert_eq!(sync.stats().duplicate_acks, 1);

        // An ack for a seq this engine never buffered is merely unknown.
        let stray = sync.process_ack(now, &encode_acks(&[999])).unwrap();
        assert_eq!(stray.unknown, 1);
        assert_eq!(sync.stats().acked, 1);
    }

    #[test]
    fn malformed_ack_is_a_typed_error() {
        let (_, mut sync, _) = setup(0.0);
        assert_eq!(
            sync.process_ack(SimTime::ZERO, &[1, 2, 3]),
            Err(SyncError::MalformedAck { len: 3 })
        );
    }

    #[test]
    fn oversized_key_is_refused_before_encoding() {
        let (_, mut sync, _) = setup(0.0);
        let giant = "k".repeat(MAX_KEY_LEN + 1);
        assert_eq!(
            sync.enqueue(SimTime::ZERO, &giant, vec![]),
            Err(SyncError::KeyTooLong {
                len: MAX_KEY_LEN + 1
            })
        );
        assert_eq!(sync.pending(), 0);
        // A batch containing one bad key enqueues nothing.
        let items: Vec<(&str, Vec<u8>)> = vec![("ok", vec![]), (&giant, vec![])];
        assert!(matches!(
            sync.enqueue_batch(SimTime::ZERO, items),
            Err(SyncError::KeyTooLong { .. })
        ));
        assert_eq!(sync.pending(), 0);
    }

    #[test]
    fn bounded_buffer_drop_oldest() {
        let mut sync = FogSync::builder("fog", "cloud")
            .capacity(3)
            .drop_policy(DropPolicy::Oldest)
            .build();
        for i in 0..5 {
            assert!(sync
                .enqueue(SimTime::ZERO, &format!("k{i}"), vec![])
                .is_ok());
        }
        assert_eq!(sync.pending(), 3);
        assert_eq!(sync.stats().dropped, 2);
        // Oldest (k0, k1) gone; k2..k4 retained.
        let keys: Vec<String> = sync
            .records
            .values()
            .map(|p| p.record.key.clone())
            .collect();
        assert_eq!(keys, vec!["k2", "k3", "k4"]);
    }

    #[test]
    fn released_window_stays_bounded_over_a_deep_drain() {
        // Regression: the duplicate-ack dedup window must not retain one
        // seq per released record — a 1M-record drain keeps O(window).
        let total: u64 = 1_000_000;
        let mut sync = FogSync::builder("fog", "cloud")
            .capacity(total as usize)
            .build();
        let now = SimTime::ZERO;
        for i in 0..total {
            sync.enqueue(now, "k", vec![(i & 0xff) as u8]).unwrap();
        }
        // Ack straight through the engine (no network needed): batches of
        // 4096 seqs per payload, covering every record.
        let mut released = 0usize;
        let mut seq = 0u64;
        while seq < total {
            let hi = (seq + 4096).min(total);
            let payload = encode_acks(&(seq..hi).collect::<Vec<u64>>());
            released += sync.process_ack(now, &payload).unwrap().released;
            seq = hi;
        }
        assert_eq!(released, total as usize);
        assert_eq!(sync.pending(), 0);
        assert!(
            sync.released_recent.len() <= RELEASED_WINDOW,
            "dedup window leaked: {} retained seqs",
            sync.released_recent.len()
        );
        assert_eq!(
            sync.released_floor,
            total - RELEASED_WINDOW as u64,
            "watermark advanced past the aged-out releases"
        );
        // Classification across the watermark: recent seqs are exact
        // duplicates, aged-out seqs fall below the floor (still duplicate),
        // and a seq the engine never saw is unknown.
        let dup_recent = sync.process_ack(now, &encode_acks(&[total - 1])).unwrap();
        assert_eq!(dup_recent.duplicate, 1);
        let dup_aged = sync.process_ack(now, &encode_acks(&[0])).unwrap();
        assert_eq!(dup_aged.duplicate, 1);
        let stray = sync.process_ack(now, &encode_acks(&[total + 7])).unwrap();
        assert_eq!(stray.unknown, 1);
    }

    #[test]
    fn bounded_buffer_drop_newest() {
        let mut sync = FogSync::builder("fog", "cloud")
            .capacity(2)
            .drop_policy(DropPolicy::Newest)
            .build();
        assert!(sync.enqueue(SimTime::ZERO, "k0", vec![]).is_ok());
        assert!(sync.enqueue(SimTime::ZERO, "k1", vec![]).is_ok());
        assert_eq!(
            sync.enqueue(SimTime::ZERO, "k2", vec![]),
            Err(SyncError::BufferFull { capacity: 2 })
        );
        assert_eq!(sync.pending(), 2);
        assert_eq!(sync.stats().dropped, 1);
    }

    #[test]
    fn latest_reflects_newest_record_per_key() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        sync.enqueue(SimTime::ZERO, "probe", b"old".to_vec())
            .unwrap();
        sync.enqueue(SimTime::from_secs(1), "probe", b"new".to_vec())
            .unwrap();
        pump(&mut net, &mut sync, &mut cloud, SimTime::from_secs(1), 20);
        assert_eq!(cloud.latest("probe").unwrap().payload, b"new");
        assert_eq!(cloud.record_count(), 2);
        assert_eq!(cloud.history().len(), 2);
    }

    #[test]
    fn enqueue_batch_matches_loop_and_applies_drop_policy() {
        let mut sync = FogSync::builder("fog", "cloud")
            .capacity(3)
            .drop_policy(DropPolicy::Newest)
            .build();
        let items: Vec<(&str, Vec<u8>)> = (0..5).map(|i| ("k", vec![i as u8])).collect();
        let accepted = sync.enqueue_batch(SimTime::ZERO, items).unwrap();
        assert_eq!(accepted, 3, "capacity 3, Newest policy refuses overflow");
        assert_eq!(sync.pending(), 3);
        assert_eq!(sync.stats().dropped, 2);
    }

    #[test]
    fn drain_new_hands_out_each_record_once() {
        let (mut net, mut sync, mut cloud) = setup(0.0);
        assert!(cloud.drain_new().is_empty());
        for i in 0..4 {
            sync.enqueue(SimTime::ZERO, &format!("k{i}"), vec![i as u8])
                .unwrap();
        }
        pump(&mut net, &mut sync, &mut cloud, SimTime::ZERO, 20);
        let first: Vec<u64> = cloud.drain_new().iter().map(|r| r.seq).collect();
        assert_eq!(first.len(), 4);
        assert!(cloud.drain_new().is_empty(), "cursor advanced");

        sync.enqueue(SimTime::from_secs(60), "k9", vec![9]).unwrap();
        pump(&mut net, &mut sync, &mut cloud, SimTime::from_secs(60), 20);
        let second: Vec<&str> = cloud.drain_new().iter().map(|r| r.key.as_str()).collect();
        assert_eq!(second, ["k9"], "only the newly accepted record");
    }

    #[test]
    fn batch_limit_respected() {
        let (mut net, mut sync, _) = setup(0.0);
        for i in 0..20 {
            sync.enqueue(SimTime::ZERO, &format!("k{i}"), vec![])
                .unwrap();
        }
        let sent = sync.sync_round(&mut net, SimTime::ZERO, 5);
        assert_eq!(sent, 5);
        assert_eq!(sync.stats().transmissions, 5);
    }

    #[test]
    fn in_flight_window_bounds_unacked_records() {
        let (mut net, _, _) = setup(0.0);
        let mut sync = FogSync::builder("fog", "cloud")
            .base_timeout(SimDuration::from_secs(5))
            .max_in_flight(4)
            .jitter(0.0)
            .build();
        for i in 0..20 {
            sync.enqueue(SimTime::ZERO, &format!("k{i}"), vec![])
                .unwrap();
        }
        // No acks will arrive (we never run the cloud side): the window
        // pins the engine at 4 unacked records regardless of rounds.
        let sent = sync.sync_round(&mut net, SimTime::ZERO, 64);
        assert_eq!(sent, 4);
        assert_eq!(sync.in_flight(), 4);
        let sent = sync.sync_round(&mut net, SimTime::from_secs(1), 64);
        assert_eq!(sent, 0, "window full, timers not yet expired");
        // After expiry only the 4 in-flight records retransmit.
        let sent = sync.sync_round(&mut net, SimTime::from_secs(10), 64);
        assert_eq!(sent, 4);
        assert_eq!(sync.in_flight(), 4);
        assert_eq!(sync.stats().retransmissions, 4);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let (mut net, _, _) = setup(0.0);
        let mut sync = FogSync::builder("fog", "cloud")
            .base_timeout(SimDuration::from_secs(10))
            .backoff(2.0, SimDuration::from_secs(40))
            .jitter(0.0)
            .build();
        sync.enqueue(SimTime::ZERO, "k", vec![]).unwrap();

        // Attempts at t=0; retries due at +10, then +20, then +40 (cap),
        // then +40 again. Probe just before/at each boundary.
        let mut now = SimTime::ZERO;
        assert_eq!(sync.sync_round(&mut net, now, 8), 1);
        for expect_gap in [10u64, 20, 40, 40] {
            let before = now + SimDuration::from_secs(expect_gap - 1);
            assert_eq!(sync.sync_round(&mut net, before, 8), 0, "not yet due");
            now += SimDuration::from_secs(expect_gap);
            assert_eq!(
                sync.sync_round(&mut net, now, 8),
                1,
                "due at +{expect_gap}s"
            );
        }
    }

    #[test]
    fn jitter_spreads_retries_deterministically() {
        let run = |seed| {
            let mut net = Network::new(5);
            net.add_node("fog");
            net.add_node("cloud");
            net.connect("fog", "cloud", LinkSpec::farm_lan());
            let mut sync = FogSync::builder("fog", "cloud")
                .base_timeout(SimDuration::from_secs(10))
                .jitter(0.5)
                .seed(seed)
                .build();
            sync.enqueue(SimTime::ZERO, "k", vec![]).unwrap();
            sync.sync_round(&mut net, SimTime::ZERO, 8);
            // Sample the schedule by probing when the retry fires.
            let mut fired_at = 0;
            for s in 1..=20 {
                if sync.sync_round(&mut net, SimTime::from_secs(s), 8) == 1 {
                    fired_at = s;
                    break;
                }
            }
            fired_at
        };
        assert_eq!(run(1), run(1), "same seed, same schedule");
        let samples: Vec<u64> = (0..16).map(run).collect();
        assert!(
            samples.iter().any(|&s| s != samples[0]),
            "jitter varies across seeds: {samples:?}"
        );
        // All within the ±50% band around 10s.
        assert!(samples.iter().all(|&s| (5..=15).contains(&s)));
    }

    #[test]
    fn degraded_mode_walks_down_and_recovers() {
        let (mut net, _, mut cloud) = setup(0.0);
        let mut sync = FogSync::builder("fog", "cloud")
            .base_timeout(SimDuration::from_secs(5))
            .backoff(1.0, SimDuration::from_secs(5))
            .jitter(0.0)
            .degraded_thresholds(2, 4)
            .build();
        net.set_link_up(&"fog".into(), &"cloud".into(), false);
        sync.enqueue(SimTime::ZERO, "k", vec![]).unwrap();

        let mut now = SimTime::ZERO;
        sync.sync_round(&mut net, now, 8);
        assert_eq!(
            sync.mode(),
            DegradedMode::Connected,
            "first send, no strike"
        );
        for _ in 0..1 {
            now += SimDuration::from_secs(6);
            sync.sync_round(&mut net, now, 8);
        }
        assert_eq!(sync.mode(), DegradedMode::Connected, "one strike tolerated");
        now += SimDuration::from_secs(6);
        sync.sync_round(&mut net, now, 8);
        assert_eq!(sync.mode(), DegradedMode::Degraded);
        let degraded_since = sync.mode_since();
        assert_eq!(degraded_since, now);
        for _ in 0..2 {
            now += SimDuration::from_secs(6);
            sync.sync_round(&mut net, now, 8);
        }
        assert_eq!(sync.mode(), DegradedMode::Offline);

        // Heal: one delivered+acked record restores Connected.
        net.set_link_up(&"fog".into(), &"cloud".into(), true);
        now += SimDuration::from_secs(6);
        sync.sync_round(&mut net, now, 8);
        now += SimDuration::from_secs(1);
        net.advance_to(now);
        cloud.process(&mut net, now);
        now += SimDuration::from_secs(1);
        net.advance_to(now);
        let outcome = sync.poll_acks(&mut net, now);
        assert_eq!(outcome.released, 1);
        assert_eq!(sync.mode(), DegradedMode::Connected);
        assert_eq!(sync.mode_since(), now);

        // Each transition left one sync.mode event; recovery is Info.
        let snap = sync.observe();
        let transitions: Vec<String> = snap
            .events()
            .iter()
            .filter(|e| e.code == "sync.mode")
            .map(|e| e.detail.split(" @").next().unwrap_or("").to_owned())
            .collect();
        assert_eq!(
            transitions,
            [
                "connected->degraded",
                "degraded->offline",
                "offline->connected"
            ]
        );
        assert_eq!(snap.gauge("sync.mode").unwrap(), Some(0.0));
        assert_eq!(
            snap.counter("sync.timeouts").unwrap(),
            sync.stats().timeouts
        );
    }

    #[test]
    fn builder_clamps_out_of_range_parameters() {
        let mut sync = FogSync::builder("fog", "cloud")
            .capacity(0)
            .backoff(0.5, SimDuration::from_secs(10))
            .jitter(7.0)
            .max_in_flight(0)
            .degraded_thresholds(0, 0)
            .build();
        // Capacity clamped to 1: a second record evicts under Oldest.
        sync.enqueue(SimTime::ZERO, "a", vec![]).unwrap();
        sync.enqueue(SimTime::ZERO, "b", vec![]).unwrap();
        assert_eq!(sync.pending(), 1);
        assert_eq!(sync.stats().dropped, 1);
    }

    #[test]
    fn two_sources_with_colliding_seqs_both_accepted() {
        let mut net = Network::new(13);
        net.add_node("fog-a");
        net.add_node("fog-b");
        net.add_node("cloud");
        net.connect("fog-a", "cloud", LinkSpec::farm_lan());
        net.connect("fog-b", "cloud", LinkSpec::farm_lan());
        let mut a = FogSync::builder("fog-a", "cloud").jitter(0.0).build();
        let mut b = FogSync::builder("fog-b", "cloud").jitter(0.0).build();
        let mut cloud = CloudStore::new("cloud");
        // Both engines start at seq 0: per-source dedup must keep both.
        a.enqueue(SimTime::ZERO, "ka", b"va".to_vec()).unwrap();
        b.enqueue(SimTime::ZERO, "kb", b"vb".to_vec()).unwrap();
        a.sync_round(&mut net, SimTime::ZERO, 8);
        b.sync_round(&mut net, SimTime::ZERO, 8);
        net.advance_to(SimTime::from_secs(1));
        cloud.process(&mut net, SimTime::from_secs(1));
        assert_eq!(cloud.record_count(), 2);
        assert_eq!(cloud.duplicates(), 0);
    }
}
