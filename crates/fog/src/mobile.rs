//! Mobile fog nodes: drones and pivot-mounted controllers.
//!
//! The paper's architecture includes "possibly mobile fog nodes acting in
//! the field (e.g., drones or in the central pivot irrigation mechanisms)".
//! A mobile fog node differs from a farm fog node in exactly one way that
//! matters to the platform: its backhaul link is only up during *contact
//! windows* (docked at the base, within radio range). Between contacts it
//! collects and buffers; at contact it drains through the normal
//! [`crate::sync::FogSync`] machinery.

use swamp_sim::{SimDuration, SimTime};

/// A periodic contact plan: in range for `contact` out of every `period`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContactPlan {
    /// Cycle length (e.g. a 2-hour survey circuit).
    pub period: SimDuration,
    /// In-range duration at the start of each cycle.
    pub contact: SimDuration,
    /// Offset of the first cycle start.
    pub offset: SimDuration,
}

impl ContactPlan {
    /// Creates a plan.
    ///
    /// # Panics
    /// Panics unless `0 < contact <= period`.
    pub fn new(period: SimDuration, contact: SimDuration, offset: SimDuration) -> Self {
        assert!(
            !contact.is_zero() && contact <= period,
            "need 0 < contact <= period"
        );
        ContactPlan {
            period,
            contact,
            offset,
        }
    }

    /// A drone circuit: 15 minutes docked per 2-hour survey loop.
    pub fn drone_survey() -> Self {
        ContactPlan::new(
            SimDuration::from_hours(2),
            SimDuration::from_mins(15),
            SimDuration::ZERO,
        )
    }

    /// Whether the node is in contact at `t`.
    pub fn in_contact(&self, t: SimTime) -> bool {
        let t_ms = t.as_millis();
        let off = self.offset.as_millis();
        if t_ms < off {
            return false;
        }
        let phase = (t_ms - off) % self.period.as_millis();
        phase < self.contact.as_millis()
    }

    /// Start of the next contact window at or after `t`.
    pub fn next_contact(&self, t: SimTime) -> SimTime {
        if self.in_contact(t) {
            return t;
        }
        let t_ms = t.as_millis();
        let off = self.offset.as_millis();
        if t_ms < off {
            return SimTime::from_millis(off);
        }
        let period = self.period.as_millis();
        let cycles = (t_ms - off) / period + 1;
        SimTime::from_millis(off + cycles * period)
    }

    /// Duty fraction: share of time in contact.
    pub fn duty(&self) -> f64 {
        self.contact.as_millis() as f64 / self.period.as_millis() as f64
    }
}

/// Drives a network link according to a contact plan.
///
/// Call [`MobileLinkDriver::update`] as simulation time advances; it
/// toggles the link exactly when contact state changes and reports the
/// transition.
#[derive(Clone, Debug)]
pub struct MobileLinkDriver {
    plan: ContactPlan,
    last_state: Option<bool>,
}

/// A link transition reported by the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkTransition {
    /// The node came into range.
    CameUp,
    /// The node left range.
    WentDown,
}

impl MobileLinkDriver {
    /// Creates a driver for a plan.
    pub fn new(plan: ContactPlan) -> Self {
        MobileLinkDriver {
            plan,
            last_state: None,
        }
    }

    /// The plan being driven.
    pub fn plan(&self) -> &ContactPlan {
        &self.plan
    }

    /// Returns the desired link state at `t` and the transition, if one
    /// occurred since the previous call.
    pub fn update(&mut self, t: SimTime) -> (bool, Option<LinkTransition>) {
        let up = self.plan.in_contact(t);
        let transition = match self.last_state {
            Some(prev) if prev != up => Some(if up {
                LinkTransition::CameUp
            } else {
                LinkTransition::WentDown
            }),
            None => None,
            _ => None,
        };
        self.last_state = Some(up);
        (up, transition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ContactPlan {
        // 10-minute contact per hour, starting at t=0.
        ContactPlan::new(
            SimDuration::from_hours(1),
            SimDuration::from_mins(10),
            SimDuration::ZERO,
        )
    }

    #[test]
    fn contact_windows_repeat() {
        let p = plan();
        assert!(p.in_contact(SimTime::ZERO));
        assert!(p.in_contact(SimTime::from_millis(9 * 60_000)));
        assert!(!p.in_contact(SimTime::from_millis(10 * 60_000)));
        assert!(!p.in_contact(SimTime::from_mins_h(30)));
        assert!(p.in_contact(SimTime::from_hours(1)));
        assert!(p.in_contact(SimTime::from_hours(5)));
    }

    trait FromMinsH {
        fn from_mins_h(m: u64) -> SimTime;
    }
    impl FromMinsH for SimTime {
        fn from_mins_h(m: u64) -> SimTime {
            SimTime::from_millis(m * 60_000)
        }
    }

    #[test]
    fn offset_delays_first_contact() {
        let p = ContactPlan::new(
            SimDuration::from_hours(1),
            SimDuration::from_mins(10),
            SimDuration::from_mins(30),
        );
        assert!(!p.in_contact(SimTime::ZERO));
        assert!(p.in_contact(SimTime::from_mins_h(30)));
        assert_eq!(p.next_contact(SimTime::ZERO), SimTime::from_mins_h(30));
    }

    #[test]
    fn next_contact_semantics() {
        let p = plan();
        // Already in contact: now.
        assert_eq!(p.next_contact(SimTime::ZERO), SimTime::ZERO);
        // Mid-gap: next cycle start.
        assert_eq!(
            p.next_contact(SimTime::from_mins_h(30)),
            SimTime::from_hours(1)
        );
        assert_eq!(
            p.next_contact(SimTime::from_mins_h(70)),
            SimTime::from_hours(2)
        );
    }

    #[test]
    fn duty_fraction() {
        assert!((plan().duty() - 1.0 / 6.0).abs() < 1e-12);
        assert!((ContactPlan::drone_survey().duty() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn driver_reports_transitions() {
        let mut d = MobileLinkDriver::new(plan());
        let (up, tr) = d.update(SimTime::ZERO);
        assert!(up);
        assert_eq!(tr, None); // first observation, no transition
        let (up, tr) = d.update(SimTime::from_mins_h(5));
        assert!(up);
        assert_eq!(tr, None);
        let (up, tr) = d.update(SimTime::from_mins_h(15));
        assert!(!up);
        assert_eq!(tr, Some(LinkTransition::WentDown));
        let (up, tr) = d.update(SimTime::from_hours(1));
        assert!(up);
        assert_eq!(tr, Some(LinkTransition::CameUp));
    }

    #[test]
    #[should_panic(expected = "contact")]
    fn zero_contact_rejected() {
        let _ = ContactPlan::new(
            SimDuration::from_hours(1),
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
    }
}
