//! Platform availability accounting for the fog-vs-cloud-only comparison
//! (experiment E5).
//!
//! Each scheduling interval, the platform either served its function
//! (an irrigation decision was made, a query answered) or it did not.
//! The tracker attributes each served interval to where the work ran, so
//! the E5 report can show cloud-only availability collapsing during
//! Internet outages while the fog deployment rides through them.

use swamp_sim::{SimDuration, SimTime};

/// Where a service interval was handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedBy {
    /// The cloud handled it (uplink was up).
    Cloud,
    /// The local fog node handled it (uplink down or by policy).
    Fog,
}

/// Availability bookkeeping over fixed intervals.
#[derive(Clone, Debug)]
pub struct AvailabilityTracker {
    interval: SimDuration,
    served_cloud: u64,
    served_fog: u64,
    unserved: u64,
    last_interval_end: SimTime,
}

impl AvailabilityTracker {
    /// Creates a tracker with the given service interval.
    ///
    /// # Panics
    /// Panics if the interval is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        AvailabilityTracker {
            interval,
            served_cloud: 0,
            served_fog: 0,
            unserved: 0,
            last_interval_end: SimTime::ZERO,
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Records the outcome of one interval.
    pub fn record(&mut self, outcome: Option<ServedBy>) {
        match outcome {
            Some(ServedBy::Cloud) => self.served_cloud += 1,
            Some(ServedBy::Fog) => self.served_fog += 1,
            None => self.unserved += 1,
        }
        self.last_interval_end += self.interval;
    }

    /// Total intervals recorded.
    pub fn intervals(&self) -> u64 {
        self.served_cloud + self.served_fog + self.unserved
    }

    /// Fraction of intervals served (by either tier), `[0,1]`.
    pub fn availability(&self) -> f64 {
        let total = self.intervals();
        if total == 0 {
            return 1.0;
        }
        (self.served_cloud + self.served_fog) as f64 / total as f64
    }

    /// `(cloud-served, fog-served, unserved)` interval counts.
    pub fn breakdown(&self) -> (u64, u64, u64) {
        (self.served_cloud, self.served_fog, self.unserved)
    }

    /// Fraction of served intervals handled locally by the fog.
    pub fn fog_share(&self) -> f64 {
        let served = self.served_cloud + self.served_fog;
        if served == 0 {
            0.0
        } else {
            self.served_fog as f64 / served as f64
        }
    }
}

/// A schedule of uplink outages, for driving disconnection scenarios.
#[derive(Clone, Debug, Default)]
pub struct OutageSchedule {
    /// Sorted, non-overlapping outage windows `[start, end)`.
    windows: Vec<(SimTime, SimTime)>,
}

impl OutageSchedule {
    /// Creates an empty schedule (always connected).
    pub fn new() -> Self {
        OutageSchedule::default()
    }

    /// Adds an outage window.
    ///
    /// # Panics
    /// Panics if `end <= start` or the window overlaps an existing one.
    pub fn add_outage(&mut self, start: SimTime, end: SimTime) {
        assert!(start < end, "outage window must have positive length");
        for &(s, e) in &self.windows {
            assert!(end <= s || start >= e, "outage windows must not overlap");
        }
        self.windows.push((start, end));
        self.windows.sort();
    }

    /// Whether the uplink is down at `t`.
    pub fn is_down(&self, t: SimTime) -> bool {
        self.windows.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// The sorted, non-overlapping `[start, end)` windows — e.g. to feed
    /// into `swamp_net::FaultPlan::add_partitions_from` so the fault plan
    /// partitions exactly when this schedule says the uplink is down.
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }

    /// Total scheduled downtime.
    pub fn total_downtime(&self) -> SimDuration {
        self.windows
            .iter()
            .map(|&(s, e)| e.duration_since(s))
            .fold(SimDuration::ZERO, |a, d| a + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_math() {
        let mut t = AvailabilityTracker::new(SimDuration::from_hours(1));
        for _ in 0..6 {
            t.record(Some(ServedBy::Cloud));
        }
        for _ in 0..3 {
            t.record(Some(ServedBy::Fog));
        }
        t.record(None);
        assert_eq!(t.intervals(), 10);
        assert!((t.availability() - 0.9).abs() < 1e-12);
        assert_eq!(t.breakdown(), (6, 3, 1));
        assert!((t.fog_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_fully_available() {
        let t = AvailabilityTracker::new(SimDuration::from_hours(1));
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.fog_share(), 0.0);
    }

    #[test]
    fn outage_schedule_queries() {
        let mut s = OutageSchedule::new();
        s.add_outage(SimTime::from_hours(10), SimTime::from_hours(14));
        s.add_outage(SimTime::from_hours(20), SimTime::from_hours(21));
        assert!(!s.is_down(SimTime::from_hours(9)));
        assert!(s.is_down(SimTime::from_hours(10)));
        assert!(s.is_down(SimTime::from_hours(13)));
        assert!(!s.is_down(SimTime::from_hours(14))); // half-open
        assert!(s.is_down(SimTime::from_hours(20)));
        assert_eq!(s.total_downtime(), SimDuration::from_hours(5));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_outages_rejected() {
        let mut s = OutageSchedule::new();
        s.add_outage(SimTime::from_hours(1), SimTime::from_hours(3));
        s.add_outage(SimTime::from_hours(2), SimTime::from_hours(4));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_outage_rejected() {
        let mut s = OutageSchedule::new();
        s.add_outage(SimTime::from_hours(2), SimTime::from_hours(2));
    }

    #[test]
    fn cloud_only_vs_fog_during_outage() {
        // 24 hourly intervals, outage hours 6..18.
        let mut schedule = OutageSchedule::new();
        schedule.add_outage(SimTime::from_hours(6), SimTime::from_hours(18));

        let mut cloud_only = AvailabilityTracker::new(SimDuration::from_hours(1));
        let mut with_fog = AvailabilityTracker::new(SimDuration::from_hours(1));
        for h in 0..24 {
            let t = SimTime::from_hours(h);
            if schedule.is_down(t) {
                cloud_only.record(None);
                with_fog.record(Some(ServedBy::Fog));
            } else {
                cloud_only.record(Some(ServedBy::Cloud));
                with_fog.record(Some(ServedBy::Cloud));
            }
        }
        assert!((cloud_only.availability() - 0.5).abs() < 1e-12);
        assert!((with_fog.availability() - 1.0).abs() < 1e-12);
        assert!((with_fog.fog_share() - 0.5).abs() < 1e-12);
    }
}
