//! # swamp-fog — fog computing tier of the SWAMP platform
//!
//! The paper requires platform availability "even in case of Internet
//! disconnections using local components (fog computing)", in deployment
//! configurations ranging from cloud analytics through farm-premises fog
//! to "possibly mobile fog nodes acting in the field (e.g., drones or in
//! the central pivot irrigation mechanisms)". This crate provides:
//!
//! - [`sync`] — store-and-forward fog→cloud replication with bounded
//!   buffers, an ack/retransmit engine (exponential backoff with jitter,
//!   bounded in-flight window, degraded-mode state machine), and an
//!   idempotent cloud store.
//! - [`availability`] — interval-level availability accounting and outage
//!   schedules for the disconnection experiments (E5).
//! - [`mobile`] — contact-plan-driven connectivity for drone/pivot fog
//!   nodes.
//! - [`timer_wheel`] — hierarchical timer wheel backing the sync engine's
//!   O(due-timers) retry scheduling.
//!
//! ## Example: buffering through an outage
//!
//! ```
//! use swamp_fog::sync::{DropPolicy, FogSync};
//! use swamp_sim::{SimDuration, SimTime};
//!
//! let mut sync = FogSync::builder("farm-fog", "cloud")
//!     .capacity(10_000)
//!     .drop_policy(DropPolicy::Oldest)
//!     .base_timeout(SimDuration::from_secs(30))
//!     .build();
//! // Uplink down: updates keep accumulating locally.
//! for hour in 0..48 {
//!     sync.enqueue(SimTime::from_hours(hour), "probe-1", vec![hour as u8]).unwrap();
//! }
//! assert_eq!(sync.pending(), 48);
//! ```

// The replication path must not panic on reachable errors (fallible APIs
// return `SyncError`); remaining `expect`s document invariants. Scoped to
// the library build so tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod availability;
pub mod mobile;
pub mod sync;
pub mod timer_wheel;

pub use availability::{AvailabilityTracker, OutageSchedule, ServedBy};
pub use mobile::{ContactPlan, MobileLinkDriver};
pub use sync::{
    AckOutcome, CloudStore, DegradedMode, DropPolicy, FogSync, FogSyncBuilder, SyncError, SyncStats,
};
