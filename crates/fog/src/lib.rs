//! # swamp-fog — fog computing tier of the SWAMP platform
//!
//! The paper requires platform availability "even in case of Internet
//! disconnections using local components (fog computing)", in deployment
//! configurations ranging from cloud analytics through farm-premises fog
//! to "possibly mobile fog nodes acting in the field (e.g., drones or in
//! the central pivot irrigation mechanisms)". This crate provides:
//!
//! - [`sync`] — store-and-forward fog→cloud replication with bounded
//!   buffers, ack/retransmit, and an idempotent cloud store.
//! - [`availability`] — interval-level availability accounting and outage
//!   schedules for the disconnection experiments (E5).
//! - [`mobile`] — contact-plan-driven connectivity for drone/pivot fog
//!   nodes.
//!
//! ## Example: buffering through an outage
//!
//! ```
//! use swamp_fog::sync::{DropPolicy, FogSync};
//! use swamp_sim::{SimDuration, SimTime};
//!
//! let mut sync = FogSync::new("farm-fog", "cloud", 10_000,
//!                             DropPolicy::Oldest, SimDuration::from_secs(30));
//! // Uplink down: updates keep accumulating locally.
//! for hour in 0..48 {
//!     sync.enqueue(SimTime::from_hours(hour), "probe-1", vec![hour as u8]);
//! }
//! assert_eq!(sync.pending(), 48);
//! ```

pub mod availability;
pub mod mobile;
pub mod sync;

pub use availability::{AvailabilityTracker, OutageSchedule, ServedBy};
pub use mobile::{ContactPlan, MobileLinkDriver};
pub use sync::{CloudStore, DropPolicy, FogSync, SyncStats};
