//! Property-based tests: arbitrary JSON values and entities round-trip
//! through serialization, and the parser never panics on arbitrary input.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_codec::json::Json;
use swamp_codec::ngsi::{AttrValue, Attribute, Entity};

/// Strategy for arbitrary (finite-number) JSON values up to a small depth.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite doubles only: JSON has no NaN/inf.
        (-1e12f64..1e12f64).prop_map(Json::Number),
        "[a-zA-Z0-9 _\\-\\.\u{00e9}\u{4e16}]{0,12}".prop_map(Json::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Json::Object),
        ]
    })
}

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-1e9f64..1e9f64).prop_map(AttrValue::Number),
        "[a-zA-Z0-9 ]{0,16}".prop_map(AttrValue::Text),
        any::<bool>().prop_map(AttrValue::Flag),
        ((-90.0f64..90.0), (-180.0f64..180.0)).prop_map(|(a, b)| AttrValue::GeoPoint(a, b)),
        prop::collection::vec(-1e6f64..1e6f64, 0..8).prop_map(AttrValue::NumberList),
    ]
}

proptest! {
    #[test]
    fn json_compact_roundtrip(v in arb_json()) {
        let text = v.to_compact_string();
        let parsed = Json::parse(&text).expect("reparse compact");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn json_pretty_roundtrip(v in arb_json()) {
        let text = v.to_pretty_string();
        let parsed = Json::parse(&text).expect("reparse pretty");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        // Result ignored: the property is the absence of a panic.
        let _ = Json::parse(&s);
    }

    #[test]
    fn parser_never_panics_on_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = Json::parse(s);
        }
    }

    #[test]
    fn entity_roundtrip(
        id in "[a-z:0-9]{1,20}",
        ty in "[A-Za-z]{1,12}",
        attrs in prop::collection::btree_map(
            "[a-z_]{1,10}",
            (arb_attr_value(), prop::option::of(0u64..10_000_000)),
            0..8,
        ),
    ) {
        let mut e = Entity::new(id.as_str(), ty);
        for (name, (value, ts)) in attrs {
            let mut a = Attribute::new(value);
            if let Some(ts) = ts {
                a = a.observed_at(ts);
            }
            e.set_attribute(name, a);
        }
        let wire = e.to_json().to_compact_string();
        let back = Entity::from_json(&Json::parse(&wire).unwrap()).unwrap();
        prop_assert_eq!(back, e);
    }
}
