//! A self-contained JSON (RFC 8259) value type, parser and writer.
//!
//! Objects use `BTreeMap` so serialization order is deterministic — important
//! both for reproducible tests and for the hash-chained ledger in
//! `swamp-security`, which hashes serialized JSON.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser; guards against stack
/// exhaustion from adversarial inputs (the platform parses messages from
/// untrusted field devices).
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
///
/// Numbers are stored as `f64`, like most dynamic JSON models; the NGSI layer
/// never needs integers beyond 2^53.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

/// Error produced by [`Json::parse`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseJsonError {}

impl Json {
    /// Parses a JSON document. The entire input must be consumed (trailing
    /// whitespace is allowed).
    ///
    /// # Errors
    /// Returns [`ParseJsonError`] on malformed input, trailing garbage, or
    /// nesting deeper than [`MAX_DEPTH`].
    pub fn parse(input: &str) -> Result<Json, ParseJsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Convenience constructor for an object from key/value pairs.
    pub fn object<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Returns the value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key on an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes with no extra whitespace.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes human-readably with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Number(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Array(iter.into_iter().map(Into::into).collect())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/inf. Emitting them would produce an unparseable
        // document, a worse failure than the information loss of `null`
        // (faulty sensors are exactly where non-finite values originate).
        out.push_str("null");
        return;
    }
    if n == 0.0 {
        // Canonical zero: JSON has no signed zero, so `-0.0` must not
        // print as `-0` (the std formatter would).
        out.push('0');
    } else {
        // Shortest roundtrip representation from the std formatter;
        // integral values already print without a fractional part.
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseJsonError {
        ParseJsonError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(b))))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", char::from(c)))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low
                            // surrogate and combine.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the input.
                    if b < 0x80 {
                        out.push(char::from(b));
                    } else {
                        let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8 lead byte"))?;
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a single 0, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Number(n))
    }
}

fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_compact_string()).expect("roundtrip parse")
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-3.25").unwrap(), Json::Number(-3.25));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Number(1000.0));
        assert_eq!(Json::parse("2.5E-2").unwrap(), Json::Number(0.025));
        assert_eq!(
            Json::parse("\"hi\"").unwrap(),
            Json::String("hi".to_owned())
        );
    }

    #[test]
    fn parses_containers() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \t\n{ \"k\" :\r 1 } \n").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{} x").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            ".5",
            "1e",
            "+1",
            "nul",
            "tru",
            "\"",
            "\"\\q\"",
            "\"\\u12\"",
            "[,]",
            "{,}",
            "--1",
            "NaN",
            "Infinity",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ \u{08}\u{0C}\r café 💧";
        let v = Json::String(s.to_owned());
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""Aé""#).unwrap(),
            Json::String("Aé".to_owned())
        );
        // Surrogate pair for U+1F4A7 (droplet).
        assert_eq!(
            Json::parse(r#""💧""#).unwrap(),
            Json::String("💧".to_owned())
        );
    }

    #[test]
    fn rejects_bad_surrogates() {
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\udca7""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_raw_control_chars() {
        assert!(Json::parse("\"a\u{01}b\"").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(Json::Number(5.0).to_compact_string(), "5");
        assert_eq!(Json::Number(-5.0).to_compact_string(), "-5");
        assert_eq!(Json::Number(0.5).to_compact_string(), "0.5");
        assert_eq!(Json::Number(1e16).to_compact_string(), "10000000000000000");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        // A faulty sensor must not be able to produce an unparseable doc.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::object([("v", Json::Number(bad))]);
            let text = doc.to_compact_string();
            assert_eq!(text, r#"{"v":null}"#);
            assert!(Json::parse(&text).is_ok());
        }
    }

    #[test]
    fn object_keys_sorted_in_output() {
        let v = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.to_compact_string(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn pretty_print_parses_back() {
        let v = Json::object([
            ("name", Json::from("swamp")),
            (
                "pilots",
                [1i64, 2, 3, 4].iter().map(|&x| Json::from(x)).collect(),
            ),
            ("nested", Json::object([("k", Json::Null)])),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(Default::default())),
        ]);
        let pretty = v.to_pretty_string();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 1.5, "s": "x", "b": true, "a": []}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Null.as_f64(), None);
    }

    #[test]
    fn error_reports_offset() {
        let err = Json::parse(r#"{"a": bad}"#).unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"));
    }

    #[test]
    fn utf8_multibyte_passthrough() {
        let v = Json::parse("\"солома 稻草\"").unwrap();
        assert_eq!(v.as_str(), Some("солома 稻草"));
    }
}
