//! The NGSI-like context data model used by the SWAMP context broker.
//!
//! FIWARE's Orion broker models the world as *entities* (a soil probe, a
//! center pivot, a farm) carrying named, typed *attributes* (soil moisture,
//! angular position, owner), each with optional metadata and a timestamp.
//! SWAMP reproduces that model: [`Entity`] round-trips losslessly through
//! [`Json`], which is what travels over the simulated network.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;

/// A globally unique entity identifier (e.g. `urn:swamp:matopiba:probe:07`).
///
/// Newtype so device ids, farm ids and user ids cannot be mixed up with
/// arbitrary strings in platform APIs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(String);

impl EntityId {
    /// Creates an id.
    ///
    /// # Panics
    /// Panics if `id` is empty or has surrounding whitespace; use
    /// [`EntityId::try_new`] for fallible construction.
    pub fn new(id: impl Into<String>) -> Self {
        Self::try_new(id).expect("invalid entity id")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    /// Returns [`InvalidEntityId`] if the id is empty or has surrounding
    /// whitespace (ids appear in wire messages and policy rules where
    /// whitespace would be invisible).
    pub fn try_new(id: impl Into<String>) -> Result<Self, InvalidEntityId> {
        let id = id.into();
        if id.is_empty() || id.trim() != id {
            return Err(InvalidEntityId(id));
        }
        Ok(EntityId(id))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EntityId({:?})", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for EntityId {
    fn from(s: &str) -> Self {
        EntityId::new(s)
    }
}

impl From<String> for EntityId {
    fn from(s: String) -> Self {
        EntityId::new(s)
    }
}

impl AsRef<str> for EntityId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Error for malformed entity ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidEntityId(String);

impl fmt::Display for InvalidEntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid entity id {:?}: must be non-empty without surrounding whitespace",
            self.0
        )
    }
}
impl std::error::Error for InvalidEntityId {}

/// The value of an attribute: a restricted, strongly typed subset of JSON.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// A finite numeric measurement or setting.
    Number(f64),
    /// A textual value (enum-like states, zone names, …).
    Text(String),
    /// A boolean flag (valve open, pump running, …).
    Flag(bool),
    /// A geographic position (latitude, longitude) in degrees.
    GeoPoint(f64, f64),
    /// A vector of numbers (per-zone rates, spectra, …).
    NumberList(Vec<f64>),
    /// Arbitrary structured payload (kept as JSON).
    Structured(Json),
}

impl AttrValue {
    /// Numeric value, if this is a `Number`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Text value, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Flag value, if this is `Flag`.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            AttrValue::Flag(b) => Some(*b),
            _ => None,
        }
    }

    /// Geo point, if this is `GeoPoint`.
    pub fn as_geo(&self) -> Option<(f64, f64)> {
        match self {
            AttrValue::GeoPoint(lat, lon) => Some((*lat, *lon)),
            _ => None,
        }
    }

    /// Number list, if this is `NumberList`.
    pub fn as_number_list(&self) -> Option<&[f64]> {
        match self {
            AttrValue::NumberList(v) => Some(v),
            _ => None,
        }
    }

    /// Encodes the value as JSON.
    pub fn to_json(&self) -> Json {
        match self {
            AttrValue::Number(n) => Json::Number(*n),
            AttrValue::Text(s) => Json::String(s.clone()),
            AttrValue::Flag(b) => Json::Bool(*b),
            AttrValue::GeoPoint(lat, lon) => Json::object([
                ("type", Json::from("geo:point")),
                ("lat", Json::Number(*lat)),
                ("lon", Json::Number(*lon)),
            ]),
            AttrValue::NumberList(v) => Json::Array(v.iter().map(|&n| Json::Number(n)).collect()),
            AttrValue::Structured(j) => j.clone(),
        }
    }

    /// Decodes a value from JSON, inferring the most specific variant.
    pub fn from_json(j: &Json) -> AttrValue {
        match j {
            Json::Number(n) => AttrValue::Number(*n),
            Json::String(s) => AttrValue::Text(s.clone()),
            Json::Bool(b) => AttrValue::Flag(*b),
            Json::Object(o) if o.get("type").and_then(Json::as_str) == Some("geo:point") => {
                let lat = o.get("lat").and_then(Json::as_f64).unwrap_or(0.0);
                let lon = o.get("lon").and_then(Json::as_f64).unwrap_or(0.0);
                AttrValue::GeoPoint(lat, lon)
            }
            Json::Array(items) if items.iter().all(|i| i.as_f64().is_some()) => {
                AttrValue::NumberList(items.iter().filter_map(Json::as_f64).collect())
            }
            other => AttrValue::Structured(other.clone()),
        }
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> Self {
        AttrValue::Number(n)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Flag(b)
    }
}
impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Text(s)
    }
}
impl From<Vec<f64>> for AttrValue {
    fn from(v: Vec<f64>) -> Self {
        AttrValue::NumberList(v)
    }
}

/// One named attribute of an entity.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribute {
    /// The attribute value.
    pub value: AttrValue,
    /// Milliseconds of virtual time at which the value was observed, if any.
    pub observed_at_ms: Option<u64>,
    /// Free-form metadata (unit, precision, provenance, …).
    pub metadata: BTreeMap<String, String>,
}

impl Attribute {
    /// Creates an attribute with no timestamp or metadata.
    pub fn new(value: impl Into<AttrValue>) -> Self {
        Attribute {
            value: value.into(),
            observed_at_ms: None,
            metadata: BTreeMap::new(),
        }
    }

    /// Sets the observation timestamp (builder style).
    pub fn observed_at(mut self, ms: u64) -> Self {
        self.observed_at_ms = Some(ms);
        self
    }

    /// Adds one metadata entry (builder style).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Encodes as a JSON object `{value, observedAt?, metadata?}`.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("value".to_owned(), self.value.to_json());
        if let Some(ts) = self.observed_at_ms {
            obj.insert("observedAt".to_owned(), Json::Number(ts as f64));
        }
        if !self.metadata.is_empty() {
            obj.insert(
                "metadata".to_owned(),
                Json::Object(
                    self.metadata
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::String(v.clone())))
                        .collect(),
                ),
            );
        }
        Json::Object(obj)
    }

    /// Decodes from the JSON produced by [`Attribute::to_json`].
    ///
    /// # Errors
    /// Returns [`EntityCodecError`] if the `value` field is missing or
    /// metadata values are not strings.
    pub fn from_json(j: &Json) -> Result<Attribute, EntityCodecError> {
        let value = j
            .get("value")
            .ok_or_else(|| EntityCodecError::missing("value"))?;
        let observed_at_ms = j.get("observedAt").and_then(Json::as_f64).map(|f| f as u64);
        let mut metadata = BTreeMap::new();
        if let Some(meta) = j.get("metadata").and_then(Json::as_object) {
            for (k, v) in meta {
                let s = v
                    .as_str()
                    .ok_or_else(|| EntityCodecError::bad("metadata values must be strings"))?;
                metadata.insert(k.clone(), s.to_owned());
            }
        }
        Ok(Attribute {
            value: AttrValue::from_json(value),
            observed_at_ms,
            metadata,
        })
    }
}

/// An NGSI-like context entity: id + type + attribute map.
///
/// # Example
/// ```
/// use swamp_codec::ngsi::{Entity, AttrValue};
/// let mut pivot = Entity::new("urn:swamp:pivot:1", "CenterPivot");
/// pivot.set("angle_deg", AttrValue::Number(123.0));
/// assert_eq!(pivot.number("angle_deg"), Some(123.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Entity {
    id: EntityId,
    entity_type: String,
    attributes: BTreeMap<String, Attribute>,
}

impl Entity {
    /// Creates an entity with no attributes.
    ///
    /// # Panics
    /// Panics if `id` is not a valid [`EntityId`].
    pub fn new(id: impl Into<EntityId>, entity_type: impl Into<String>) -> Self {
        Entity {
            id: id.into(),
            entity_type: entity_type.into(),
            attributes: BTreeMap::new(),
        }
    }

    /// The entity id.
    pub fn id(&self) -> &EntityId {
        &self.id
    }

    /// The entity type (e.g. `"SoilProbe"`).
    pub fn entity_type(&self) -> &str {
        &self.entity_type
    }

    /// Sets (or replaces) an attribute with a bare value.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<AttrValue>) {
        self.attributes
            .insert(name.into(), Attribute::new(value.into()));
    }

    /// Sets (or replaces) a full attribute (value + timestamp + metadata).
    pub fn set_attribute(&mut self, name: impl Into<String>, attr: Attribute) {
        self.attributes.insert(name.into(), attr);
    }

    /// Removes an attribute, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Attribute> {
        self.attributes.remove(name)
    }

    /// Looks up an attribute.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.get(name)
    }

    /// Shortcut: numeric value of an attribute.
    pub fn number(&self, name: &str) -> Option<f64> {
        self.attributes.get(name).and_then(|a| a.value.as_number())
    }

    /// Shortcut: text value of an attribute.
    pub fn text(&self, name: &str) -> Option<&str> {
        self.attributes.get(name).and_then(|a| a.value.as_text())
    }

    /// Shortcut: flag value of an attribute.
    pub fn flag(&self, name: &str) -> Option<bool> {
        self.attributes.get(name).and_then(|a| a.value.as_flag())
    }

    /// Iterates attributes in name order.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, &Attribute)> {
        self.attributes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the entity has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Merges another entity's attributes into this one (NGSI "update":
    /// incoming attributes overwrite same-named existing ones).
    ///
    /// # Panics
    /// Panics in debug builds if ids differ — merging across entities is a
    /// logic error.
    pub fn merge_from(&mut self, other: &Entity) {
        debug_assert_eq!(self.id, other.id, "merge_from across different entities");
        for (k, v) in &other.attributes {
            self.attributes.insert(k.clone(), v.clone());
        }
    }

    /// Encodes as the NGSI-like JSON wire form.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("id".to_owned(), Json::String(self.id.as_str().to_owned()));
        obj.insert("type".to_owned(), Json::String(self.entity_type.clone()));
        let attrs: BTreeMap<String, Json> = self
            .attributes
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        obj.insert("attrs".to_owned(), Json::Object(attrs));
        Json::Object(obj)
    }

    /// Decodes from the JSON produced by [`Entity::to_json`].
    ///
    /// # Errors
    /// Returns [`EntityCodecError`] if required fields are missing or of the
    /// wrong shape.
    pub fn from_json(j: &Json) -> Result<Entity, EntityCodecError> {
        let id = j
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| EntityCodecError::missing("id"))?;
        let id = EntityId::try_new(id).map_err(|e| EntityCodecError::bad(&e.to_string()))?;
        let entity_type = j
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| EntityCodecError::missing("type"))?
            .to_owned();
        let mut attributes = BTreeMap::new();
        if let Some(attrs) = j.get("attrs").and_then(Json::as_object) {
            for (name, aj) in attrs {
                attributes.insert(name.clone(), Attribute::from_json(aj)?);
            }
        }
        Ok(Entity {
            id,
            entity_type,
            attributes,
        })
    }
}

/// Error from [`Entity::from_json`] / [`Attribute::from_json`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntityCodecError(String);

impl EntityCodecError {
    fn missing(field: &str) -> Self {
        EntityCodecError(format!("missing field '{field}'"))
    }
    fn bad(msg: &str) -> Self {
        EntityCodecError(msg.to_owned())
    }
}

impl fmt::Display for EntityCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid entity encoding: {}", self.0)
    }
}
impl std::error::Error for EntityCodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entity() -> Entity {
        let mut e = Entity::new("urn:swamp:probe:1", "SoilProbe");
        e.set("moisture_vwc", 0.27);
        e.set_attribute(
            "temperature_c",
            Attribute::new(21.5)
                .observed_at(3_600_000)
                .with_meta("unit", "celsius")
                .with_meta("depth_cm", "30"),
        );
        e.set("location", AttrValue::GeoPoint(-12.15, -45.0));
        e.set("zones", vec![1.0, 0.8, 0.6]);
        e.set("status", "active");
        e.set("armed", true);
        e
    }

    #[test]
    fn entity_json_roundtrip() {
        let e = sample_entity();
        let wire = e.to_json().to_compact_string();
        let parsed = Json::parse(&wire).unwrap();
        let back = Entity::from_json(&parsed).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn accessors_work() {
        let e = sample_entity();
        assert_eq!(e.number("moisture_vwc"), Some(0.27));
        assert_eq!(e.text("status"), Some("active"));
        assert_eq!(e.flag("armed"), Some(true));
        assert_eq!(
            e.attribute("location").unwrap().value.as_geo(),
            Some((-12.15, -45.0))
        );
        assert_eq!(
            e.attribute("zones").unwrap().value.as_number_list(),
            Some(&[1.0, 0.8, 0.6][..])
        );
        assert_eq!(e.number("missing"), None);
        assert_eq!(e.number("status"), None); // wrong type
        assert_eq!(e.len(), 6);
        assert!(!e.is_empty());
    }

    #[test]
    fn attribute_metadata_roundtrips() {
        let e = sample_entity();
        let t = e.attribute("temperature_c").unwrap();
        assert_eq!(t.observed_at_ms, Some(3_600_000));
        assert_eq!(t.metadata.get("unit").map(String::as_str), Some("celsius"));

        let j = t.to_json();
        let back = Attribute::from_json(&j).unwrap();
        assert_eq!(&back, t);
    }

    #[test]
    fn merge_overwrites_and_adds() {
        let mut a = Entity::new("urn:x", "T");
        a.set("k1", 1.0);
        a.set("k2", 2.0);
        let mut b = Entity::new("urn:x", "T");
        b.set("k2", 20.0);
        b.set("k3", 3.0);
        a.merge_from(&b);
        assert_eq!(a.number("k1"), Some(1.0));
        assert_eq!(a.number("k2"), Some(20.0));
        assert_eq!(a.number("k3"), Some(3.0));
    }

    #[test]
    fn remove_returns_attribute() {
        let mut e = sample_entity();
        let removed = e.remove("armed").unwrap();
        assert_eq!(removed.value.as_flag(), Some(true));
        assert!(e.remove("armed").is_none());
    }

    #[test]
    fn entity_id_validation() {
        assert!(EntityId::try_new("ok").is_ok());
        assert!(EntityId::try_new("").is_err());
        assert!(EntityId::try_new(" pad").is_err());
        assert!(EntityId::try_new("pad ").is_err());
        let err = EntityId::try_new("").unwrap_err();
        assert!(err.to_string().contains("non-empty"));
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Entity::from_json(&Json::parse(r#"{"type":"T"}"#).unwrap()).is_err());
        assert!(Entity::from_json(&Json::parse(r#"{"id":"x"}"#).unwrap()).is_err());
        assert!(Entity::from_json(&Json::parse(r#"{"id":"","type":"T"}"#).unwrap()).is_err());
        // Attribute without a value field.
        let bad = Json::parse(r#"{"id":"x","type":"T","attrs":{"a":{}}}"#).unwrap();
        assert!(Entity::from_json(&bad).is_err());
        // Non-string metadata.
        let bad =
            Json::parse(r#"{"id":"x","type":"T","attrs":{"a":{"value":1,"metadata":{"u":5}}}}"#)
                .unwrap();
        assert!(Entity::from_json(&bad).is_err());
    }

    #[test]
    fn attr_value_json_inference() {
        assert_eq!(
            AttrValue::from_json(&Json::Number(1.5)),
            AttrValue::Number(1.5)
        );
        assert_eq!(
            AttrValue::from_json(&Json::parse("[1,2]").unwrap()),
            AttrValue::NumberList(vec![1.0, 2.0])
        );
        // Mixed array stays structured.
        let mixed = Json::parse(r#"[1,"a"]"#).unwrap();
        assert_eq!(
            AttrValue::from_json(&mixed),
            AttrValue::Structured(mixed.clone())
        );
        // geo:point object decodes to GeoPoint.
        let geo = AttrValue::GeoPoint(1.0, 2.0);
        assert_eq!(AttrValue::from_json(&geo.to_json()), geo);
    }

    #[test]
    fn structured_roundtrip() {
        let j = Json::parse(r#"{"nested":{"deep":[true,null]}}"#).unwrap();
        let v = AttrValue::Structured(j.clone());
        assert_eq!(AttrValue::from_json(&v.to_json()), v);
    }
}
