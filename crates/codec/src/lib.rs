//! # swamp-codec — data representation for the SWAMP platform
//!
//! FIWARE's context broker speaks NGSI, a JSON-based entity/attribute data
//! model. SWAMP reproduces that substrate from scratch:
//!
//! - [`json`] — a complete JSON value type, parser and writer (no external
//!   JSON crate is in the approved dependency set, and the broker needs a
//!   real wire format, so we implement RFC 8259 here).
//! - [`ngsi`] — the NGSI-like context data model: [`ngsi::Entity`] with typed
//!   attributes and metadata, round-trippable through [`json::Json`].
//!
//! ## Example
//!
//! ```
//! use swamp_codec::json::Json;
//! use swamp_codec::ngsi::{Entity, AttrValue};
//!
//! let mut e = Entity::new("urn:swamp:soil:001", "SoilProbe");
//! e.set("moisture_vwc", AttrValue::Number(0.23));
//! e.set("zone", AttrValue::Text("NE-quadrant".into()));
//!
//! let wire = e.to_json().to_string();
//! let parsed = Json::parse(&wire).unwrap();
//! let back = Entity::from_json(&parsed).unwrap();
//! assert_eq!(back, e);
//! ```

pub mod json;
pub mod ngsi;

pub use json::Json;
pub use ngsi::{AttrValue, Attribute, Entity, EntityId};
