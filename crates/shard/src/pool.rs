//! The worker pool: advances isolated shards on scoped threads.
//!
//! Shards are fully isolated [`Platform`]s — disjoint fabrics, brokers,
//! stores and RNG streams — so within one round, pumping shard `i` and
//! shard `j` are independent operations whose results cannot depend on
//! execution order or interleaving. The pool exploits exactly that: the
//! shard vector is split into one contiguous chunk per worker, each worker
//! advances its shards on its own `std::thread::scope` thread, and the
//! scope's implicit join is the **merge barrier** — control returns to the
//! caller only when every shard has finished its round, after which the
//! caller (`ShardedPlatform::pump`) runs the cross-shard aggregation pass
//! serially in shard-id order. Nothing downstream of the barrier can
//! observe which worker finished first, so the fingerprint (merged
//! history + cloud record set + summed counters) and the labelled obs
//! export stay byte-identical to the serial schedule; the differential
//! suite in `crates/pilots/tests/shard_differential.rs` proves it at
//! worker counts {1, 2, 8}.
//!
//! No new runtime dependency: `std::thread::scope` borrows `&mut [Platform]`
//! chunks directly (this is what forces `Platform: Send`, pinned by the
//! compile-time audit in `crates/shard/tests/send_sync.rs`). Per-shard
//! ingested counts are written into disjoint chunks of a result vector and
//! summed after the barrier, so the total is order-independent too.

use swamp_codec::ngsi::Entity;
use swamp_core::platform::Platform;
use swamp_sim::SimTime;

/// Splits `shards` into one contiguous chunk per worker and pumps every
/// shard once at `now`, returning the summed ingested count. `stagger_ms`
/// (test seam; normally empty) delays shard `i`'s pump by `stagger_ms[i]`
/// wall-clock milliseconds to skew worker finish order — output must not
/// change, which is what the merge-barrier ordering test asserts.
pub(crate) fn pump_round(
    shards: &mut [Platform],
    workers: usize,
    now: SimTime,
    stagger_ms: &[u64],
) -> usize {
    let n = shards.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return shards.iter_mut().map(|s| s.pump(now)).sum();
    }
    let chunk = n.div_ceil(workers);
    let mut counts = vec![0usize; n];
    std::thread::scope(|scope| {
        for (chunk_idx, (shard_chunk, count_chunk)) in shards
            .chunks_mut(chunk)
            .zip(counts.chunks_mut(chunk))
            .enumerate()
        {
            scope.spawn(move || {
                for (off, (shard, count)) in shard_chunk
                    .iter_mut()
                    .zip(count_chunk.iter_mut())
                    .enumerate()
                {
                    sleep_stagger(stagger_ms, chunk_idx * chunk + off);
                    *count = shard.pump(now);
                }
            });
        }
        // Leaving the scope joins every worker: the merge barrier.
    });
    counts.iter().sum()
}

/// Applies pre-partitioned entity batches (`batches[i]` targets shard `i`)
/// across the worker pool, returning the summed applied count. Empty
/// batches are skipped without entering the shard's ingest span, exactly
/// like the serial path.
pub(crate) fn ingest_round(
    shards: &mut [Platform],
    workers: usize,
    now: SimTime,
    batches: Vec<Vec<Entity>>,
) -> usize {
    let n = shards.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return shards
            .iter_mut()
            .zip(batches)
            .map(|(s, b)| {
                if b.is_empty() {
                    0
                } else {
                    s.ingest_entities(now, b)
                }
            })
            .sum();
    }
    let chunk = n.div_ceil(workers);
    let mut counts = vec![0usize; n];
    let mut batches = batches;
    std::thread::scope(|scope| {
        let mut rest_shards: &mut [Platform] = shards;
        let mut rest_counts: &mut [usize] = &mut counts;
        while !rest_shards.is_empty() {
            let take = chunk.min(rest_shards.len());
            let (shard_chunk, shards_tail) = rest_shards.split_at_mut(take);
            let (count_chunk, counts_tail) = rest_counts.split_at_mut(take);
            rest_shards = shards_tail;
            rest_counts = counts_tail;
            let batch_chunk: Vec<Vec<Entity>> = batches.drain(..take).collect();
            scope.spawn(move || {
                for ((shard, count), batch) in shard_chunk
                    .iter_mut()
                    .zip(count_chunk.iter_mut())
                    .zip(batch_chunk)
                {
                    if !batch.is_empty() {
                        *count = shard.ingest_entities(now, batch);
                    }
                }
            });
        }
    });
    counts.iter().sum()
}

/// Sleeps the test-seam stagger for global shard index `idx`, if one is
/// configured. Wall-clock only — never observable in any exported state.
fn sleep_stagger(stagger_ms: &[u64], idx: usize) {
    if let Some(ms) = stagger_ms.get(idx).copied() {
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}
