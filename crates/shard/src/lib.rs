//! # swamp-shard — the SWAMP scale-out tier
//!
//! The paper deploys one SWAMP platform per pilot (CBEC, Intercrop,
//! Guaspari, MATOPIBA); this crate runs *several farms at once* by
//! partitioning the deployment into per-farm **shards**. Each shard owns a
//! full [`Platform`] — its own network fabric, broker, history store and
//! fog→cloud sync engine — so shards never contend and a fault on one
//! farm's uplink cannot stall another's ingestion.
//!
//! Three pieces make the partitioning safe:
//!
//! - **Stable routing** ([`swamp_core::shard::route_device`]): a pure
//!   FNV-1a hash of the device id picks the shard, so assignment survives
//!   re-registration and restart, and a device's telemetry entities
//!   ([`swamp_core::shard::route_entity`]) follow it.
//! - **Deterministic scheduling**: with one worker
//!   ([`PlatformBuilder::workers`]), shards are pumped in the
//!   [`ShardScheduler`]'s seeded round-robin rotation — tick-based, no
//!   wall clock. With more workers, each shard advances its round on a
//!   scoped worker thread ([`pool`]) and the scope join is a barrier
//!   before aggregation. Because shards are fully isolated, both
//!   schedules produce byte-identical state; a sharded run replays
//!   bit-for-bit from its seed at any worker count.
//! - **Cross-shard aggregation**: after the round barrier, every shard's
//!   cloud replica drains — *in shard-id order* — into a dedicated
//!   aggregation fabric and a global [`CloudStore`] inbox via the
//!   *existing* [`CloudStore::process_deliveries`] wire path (records
//!   are re-encoded with [`UpdateRecord::encode`], so the aggregate store
//!   dedups and acks exactly as a first-hand cloud would).
//!
//! The headline correctness property — proven by the differential harness
//! in `crates/pilots/tests/shard_differential.rs` — is that **sharding is
//! an implementation detail**: for any seeded workload, an N-shard run and
//! a 1-shard run produce identical merged history, identical
//! cloud-applied record sets and identical summed ingest/sync counters.

// The scale-out tier must not panic on reachable errors; remaining
// `expect`s document invariants.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod pool;
pub mod scheduler;

pub use scheduler::ShardScheduler;
pub use swamp_core::shard::shard_seed;

use swamp_codec::ngsi::Entity;
use swamp_core::drive::Drive;
use swamp_core::platform::{DeploymentConfig, Platform, PlatformBuilder};
use swamp_core::query::{QueryRequest, QueryResponse};
use swamp_core::shard::{route_device, route_entity, ShardIndex};
use swamp_core::Error;
use swamp_fog::sync::{CloudStore, UpdateRecord, SYNC_TOPIC};
use swamp_net::link::LinkSpec;
use swamp_net::message::{Message, NodeId};
use swamp_net::network::Network;
use swamp_obs::{Counter, Gauge, Obs, ObsReport, ObsSnapshot};
use swamp_sensors::device::DeviceKind;
use swamp_sim::{SimDuration, SimTime};

/// Node name of shard `i`'s uplink proxy on the aggregation fabric.
fn shard_proxy(i: ShardIndex) -> String {
    format!("shard{i}")
}

/// Node name of the aggregate cloud inbox on the aggregation fabric.
const AGG_NODE: &str = "cloud-agg";

/// Typed handles for the tier's own instruments.
struct ShardInstruments {
    forwarded: Counter,
    acked: Counter,
    send_refused: Counter,
    query_fanout: Counter,
    shard_count: Gauge,
}

impl ShardInstruments {
    fn register(obs: &mut Obs) -> ShardInstruments {
        ShardInstruments {
            forwarded: obs.counter("shardfwd.records"),
            acked: obs.counter("shardfwd.acked"),
            send_refused: obs.counter("shardfwd.send_refused"),
            query_fanout: obs.counter("query.fanout"),
            shard_count: obs.gauge("shard.count"),
        }
    }
}

/// A deployment partitioned into per-farm shards.
///
/// Build one from a [`PlatformBuilder`] with
/// [`PlatformBuilder::shards`] configured; every builder knob (deployment,
/// sync tuning, fault plan, uplink outages) applies to *each* shard, and
/// one fault plan is shared — cloned into every shard's fabric — so a
/// scheduled regional outage hits all farms alike.
///
/// # Example
/// ```
/// use swamp_core::platform::{DeploymentConfig, Platform};
/// use swamp_shard::ShardedPlatform;
/// use swamp_sensors::device::DeviceKind;
/// use swamp_sim::SimTime;
///
/// let builder = Platform::builder(DeploymentConfig::FarmFog).seed(7).shards(3);
/// let mut sp = ShardedPlatform::build(&builder);
/// let shard = sp
///     .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:demo")
///     .unwrap();
/// assert!(shard < 3);
/// ```
pub struct ShardedPlatform {
    shards: Vec<Platform>,
    seeds: Vec<u64>,
    workers: usize,
    /// Test seam for the merge-barrier ordering test: wall-clock
    /// milliseconds to delay each shard's parallel pump by (never
    /// observable in exported state). Empty in production.
    stagger_ms: Vec<u64>,
    scheduler: ShardScheduler,
    agg_net: Network,
    agg_store: CloudStore,
    agg_node: NodeId,
    proxies: Vec<NodeId>,
    /// Per-shard forward cursor into the replica's append-only applied
    /// history (`drain_new` is owned by the shard's own cloud-context
    /// mirror, so the tier keeps its own read position).
    forwarded_upto: Vec<usize>,
    obs: Obs,
    ins: ShardInstruments,
    base_seed: u64,
    config: DeploymentConfig,
}

impl ShardedPlatform {
    /// Builds `builder.shard_count()` platform shards plus the aggregation
    /// tier. Shard `i` gets the derived seed [`shard_seed`]`(base, i)`,
    /// the fabric namespace `shard<i>`, and a clone of the builder's fault
    /// plan and outage schedule.
    ///
    /// Takes the builder by reference: every shard is cloned from the same
    /// intact configuration through [`PlatformBuilder::build_shard`], and
    /// the caller keeps the builder — e.g. to also build the 1-shard
    /// serial baseline the differential suite compares against.
    pub fn build(builder: &PlatformBuilder) -> ShardedPlatform {
        let n = builder.shard_count();
        let base_seed = builder.configured_seed();
        let config = builder.deployment();

        let mut shards = Vec::with_capacity(n);
        let mut seeds = Vec::with_capacity(n);
        for i in 0..n {
            shards.push(builder.build_shard(i));
            seeds.push(shard_seed(base_seed, i));
        }

        // The aggregation fabric: one zero-loss datacenter link per shard
        // proxy into the global inbox. Faults never apply here — shard
        // uplinks already modelled them; this tier models the cloud's own
        // backbone.
        let mut agg_net = Network::new(base_seed ^ 0x0061_6767_5f6e_6574); // "agg_net"
        agg_net.set_namespace("agg");
        let agg_node = agg_net.add_node(AGG_NODE);
        let mut proxies = Vec::with_capacity(n);
        for i in 0..n {
            let proxy = agg_net.add_node(shard_proxy(i).as_str());
            agg_net.connect(proxy.clone(), agg_node.clone(), LinkSpec::cloud_backbone());
            proxies.push(proxy);
        }

        let mut obs = Obs::new();
        let ins = ShardInstruments::register(&mut obs);
        obs.set(ins.shard_count, n as f64);

        ShardedPlatform {
            shards,
            seeds,
            workers: builder.worker_count(),
            stagger_ms: Vec::new(),
            scheduler: ShardScheduler::new(base_seed, n),
            agg_net,
            agg_store: CloudStore::new(AGG_NODE),
            agg_node,
            proxies,
            forwarded_upto: vec![0; n],
            obs,
            ins,
            base_seed,
            config,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of worker threads rounds run on (1 = the serial scheduler;
    /// see [`PlatformBuilder::workers`]).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Overrides the worker-thread count on a built deployment. The
    /// schedule is behavior-invariant (serial ≡ parallel, proven by the
    /// shard differential suite), so this only trades wall-clock for
    /// cores — benches flip it between timed cells without rebuilding.
    pub fn set_workers(&mut self, n: usize) {
        self.workers = n.max(1);
    }

    /// Test seam for the merge-barrier ordering test: delays shard `i`'s
    /// parallel-mode pump by `stagger_ms[i]` wall-clock milliseconds, so a
    /// test can force shard 0 to finish last and shard N−1 first. Output
    /// must be unaffected — the delays are invisible to simulated time and
    /// to every exported snapshot.
    #[doc(hidden)]
    pub fn set_round_stagger_for_tests(&mut self, stagger_ms: Vec<u64>) {
        self.stagger_ms = stagger_ms;
    }

    /// The deployment configuration every shard runs.
    pub fn config(&self) -> DeploymentConfig {
        self.config
    }

    /// The shard a device id routes to.
    pub fn shard_of(&self, device_id: &str) -> ShardIndex {
        route_device(device_id, self.shards.len())
    }

    /// Shared access to one shard's platform.
    pub fn shard(&self, i: ShardIndex) -> Option<&Platform> {
        self.shards.get(i)
    }

    /// Mutable access to one shard's platform (fault drills, direct
    /// publishes).
    pub fn shard_mut(&mut self, i: ShardIndex) -> Option<&mut Platform> {
        self.shards.get_mut(i)
    }

    /// Iterates the shards in index order.
    pub fn shards(&self) -> impl Iterator<Item = &Platform> {
        self.shards.iter()
    }

    /// The scheduler's completed round count.
    pub fn rounds(&self) -> u64 {
        self.scheduler.ticks()
    }

    /// Registers a device on the shard its id routes to, returning that
    /// shard's index.
    ///
    /// # Errors
    /// [`Error::Registry`] if the id is already registered on its shard
    /// (routing is stable, so re-registration always lands on the same
    /// shard and is caught there).
    pub fn register_device(
        &mut self,
        now: SimTime,
        device_id: &str,
        kind: DeviceKind,
        owner: &str,
    ) -> Result<ShardIndex, Error> {
        let idx = self.shard_of(device_id);
        self.shards[idx].register_device(now, device_id, kind, owner)?;
        Ok(idx)
    }

    /// Device-side publish, routed to the device's shard.
    ///
    /// # Errors
    /// [`Error::Send`] if the shard's network refuses the send.
    pub fn device_publish(
        &mut self,
        now: SimTime,
        device_id: &str,
        entity: &Entity,
    ) -> Result<ShardIndex, Error> {
        let idx = self.shard_of(device_id);
        self.shards[idx].device_publish(now, device_id, entity)?;
        Ok(idx)
    }

    /// Applies a batch of already-validated entity updates, partitioned to
    /// each entity's shard by [`route_entity`] (device URNs follow their
    /// device). Returns the number of updates applied.
    ///
    /// With more than one worker configured, the per-shard batches apply
    /// across the worker pool — shards are disjoint, so the applied count
    /// and every shard's state are identical to the serial order.
    pub fn ingest_entities(
        &mut self,
        now: SimTime,
        entities: impl IntoIterator<Item = Entity>,
    ) -> usize {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Entity>> = (0..n).map(|_| Vec::new()).collect();
        for entity in entities {
            per_shard[route_entity(entity.id().as_str(), n)].push(entity);
        }
        if self.workers > 1 && n > 1 {
            return pool::ingest_round(&mut self.shards, self.workers, now, per_shard);
        }
        let mut applied = 0;
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                applied += self.shards[idx].ingest_entities(now, batch);
            }
        }
        applied
    }

    /// Advances every shard one round, then runs one aggregation pass.
    /// Returns the number of entity updates ingested across all shards.
    ///
    /// With one worker, shards pump serially in this round's scheduler
    /// rotation. With more, each shard's round runs on a worker thread
    /// ([`pool`]) and the scope join is the merge barrier; the rotation
    /// still ticks so [`ShardedPlatform::rounds`] counts identically.
    /// Either way the aggregation pass that follows merges applied-record
    /// batches in shard-id order, so both schedules produce byte-identical
    /// fingerprints and obs exports.
    pub fn pump(&mut self, now: SimTime) -> usize {
        let order = self.scheduler.next_round();
        let ingested = if self.workers > 1 && self.shards.len() > 1 {
            pool::pump_round(&mut self.shards, self.workers, now, &self.stagger_ms)
        } else {
            let mut sum = 0;
            for idx in order {
                sum += self.shards[idx].pump(now);
            }
            sum
        };
        self.aggregate(now);
        ingested
    }

    /// One aggregation pass: drains each shard replica's newly applied
    /// records, re-encodes them onto the aggregation fabric, and feeds
    /// everything that has arrived into the global [`CloudStore`] inbox.
    /// Records sent this pass arrive one backbone latency later (next
    /// pass); [`ShardedPlatform::flush_aggregation`] settles the tail.
    pub fn aggregate(&mut self, now: SimTime) {
        // Forward phase: per-shard replica → aggregation fabric. The
        // replica's applied history is append-only, so a cursor per shard
        // picks up exactly the records applied since the last pass
        // (without stealing `drain_new` from the shard's own
        // cloud-context mirror).
        for idx in 0..self.shards.len() {
            let records: Vec<UpdateRecord> = match self.shards[idx].cloud_replica() {
                Some(replica) => {
                    let history = replica.history();
                    let new = history[self.forwarded_upto[idx].min(history.len())..].to_vec();
                    self.forwarded_upto[idx] = history.len();
                    new
                }
                None => Vec::new(),
            };
            for record in records {
                let ok = self
                    .agg_net
                    .send(
                        now,
                        self.proxies[idx].clone(),
                        self.agg_node.clone(),
                        Message::new(SYNC_TOPIC, record.encode()),
                    )
                    .is_ok();
                if ok {
                    self.obs.inc(self.ins.forwarded);
                } else {
                    // Zero-loss backbone: refusals mean a config bug, but
                    // the tier degrades to a counter rather than a panic.
                    self.obs.inc(self.ins.send_refused);
                }
            }
        }
        // Delivery phase: whatever the backbone has delivered by `now`.
        self.agg_net.advance_to(now);
        let deliveries = self.agg_net.drain(&self.agg_node.clone());
        self.agg_store
            .process_deliveries(&mut self.agg_net, now, deliveries);
        // The store acks each proxy; drain those acks so inboxes stay
        // bounded (the proxies have no retry engine to feed them to).
        for proxy in self.proxies.clone() {
            let acked = self.agg_net.drain(&proxy).len() as u64;
            self.obs.add(self.ins.acked, acked);
        }
    }

    /// Settles the aggregation fabric: advances simulated time in 1-second
    /// steps until no message is in flight, processing arrivals each step.
    /// Returns the horizon reached. Call after the last
    /// [`ShardedPlatform::pump`] to make the aggregate store reflect every
    /// record the shards have applied.
    pub fn flush_aggregation(&mut self, now: SimTime) -> SimTime {
        let mut horizon = now;
        loop {
            self.aggregate(horizon);
            if self.agg_net.in_flight() == 0 {
                return horizon;
            }
            horizon = horizon.saturating_add(SimDuration::from_secs(1));
        }
    }

    /// The aggregate cloud store built from every shard's replicated
    /// records.
    pub fn aggregate_store(&self) -> &CloudStore {
        &self.agg_store
    }

    /// Answers a typed read by fanning it out to every shard **in
    /// shard-id order** and folding the answers with
    /// [`QueryResponse::merge`] — the same barrier discipline the pump's
    /// merge step follows, so a query observes a consistent post-round
    /// state. Entity routing makes per-series reads single-owner; series
    /// dumps and views merge byte-stably (disjoint key sets, shard-id
    /// fold order). Counts each fan-out leg on `query.fanout`.
    pub fn query(&mut self, req: &QueryRequest) -> QueryResponse {
        let mut merged = QueryResponse::empty_for(req);
        for shard in &mut self.shards {
            merged.merge(shard.query(req));
        }
        self.obs
            .add(self.ins.query_fanout, self.shards.len() as u64);
        merged
    }

    /// Freezes every shard's history tails into columnar segments (in
    /// shard-id order; see [`Platform::compact_history`]). Returns the
    /// total segments created.
    pub fn compact_history(&mut self) -> usize {
        self.shards.iter_mut().map(Platform::compact_history).sum()
    }

    /// One merged snapshot across the whole tier: every shard's
    /// [`Platform::observe`] (counters add, so `ingest.*`/`sync.*` totals
    /// are fleet-wide), the aggregation fabric and store, and the tier's
    /// own `shardfwd.*`/`shard.count` instruments. Byte-stable: shards
    /// merge in index order and [`ObsSnapshot`] serialization is sorted.
    pub fn observe(&self) -> ObsSnapshot {
        let mut snap = self.obs.snapshot();
        for shard in &self.shards {
            snap.merge(&shard.observe());
        }
        snap.merge(&self.agg_net.observe());
        snap.merge(&self.agg_store.observe());
        snap
    }

    /// Per-shard labelled reports plus the merged tier report: one
    /// [`ObsReport`] labelled `<base>/shard<i>` per shard (carrying that
    /// shard's derived seed) followed by `<base>/merged` (base seed,
    /// merged snapshot from [`ShardedPlatform::observe`]). Label order is
    /// deterministic, so serializing the vec is byte-stable run-to-run.
    pub fn observe_labelled(&self, base: &str) -> Vec<ObsReport> {
        let mut reports: Vec<ObsReport> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                ObsReport::new(&format!("{base}/shard{i}"), self.seeds[i], shard.observe())
            })
            .collect();
        reports.push(ObsReport::new(
            &format!("{base}/merged"),
            self.base_seed,
            self.observe(),
        ));
        reports
    }
}

impl Drive for ShardedPlatform {
    fn round(&mut self, now: SimTime) -> usize {
        self.pump(now)
    }

    fn ingest(&mut self, now: SimTime, batch: Vec<Entity>) -> usize {
        self.ingest_entities(now, batch)
    }

    fn observe(&self) -> ObsSnapshot {
        ShardedPlatform::observe(self)
    }

    fn observe_labelled(&self, base: &str) -> Vec<ObsReport> {
        ShardedPlatform::observe_labelled(self, base)
    }

    fn query(&mut self, req: &QueryRequest) -> QueryResponse {
        ShardedPlatform::query(self, req)
    }
}

impl std::fmt::Debug for ShardedPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPlatform")
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .field("rounds", &self.scheduler.ticks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> ShardedPlatform {
        ShardedPlatform::build(
            &Platform::builder(DeploymentConfig::FarmFog)
                .seed(seed)
                .shards(n),
        )
    }

    fn probe_update(i: usize, seq: f64) -> Entity {
        let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
        e.set("moisture_vwc", 0.2 + (i % 10) as f64 * 0.01);
        e.set("seq", seq);
        e
    }

    #[test]
    fn shard_zero_matches_plain_platform_seed() {
        assert_eq!(shard_seed(42, 0), 42);
        assert_ne!(shard_seed(42, 1), 42);
    }

    #[test]
    fn devices_route_to_owning_shard() {
        let mut sp = build(4, 7);
        let idx = sp
            .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:t")
            .unwrap();
        assert_eq!(idx, sp.shard_of("probe-1"));
        // Re-registration lands on the same shard and errors there.
        assert!(sp
            .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:t")
            .is_err());
    }

    #[test]
    fn ingest_partitions_and_aggregates() {
        let mut sp = build(3, 42);
        let updates: Vec<Entity> = (0..30).map(|i| probe_update(i, 0.0)).collect();
        let applied = sp.ingest_entities(SimTime::from_secs(1), updates);
        assert_eq!(applied, 30);
        // Per-shard history totals sum to the batch (2 samples per update).
        let total: u64 = sp.shards().map(|s| s.history.len()).sum();
        assert_eq!(total, 60);
        // Pump until replication lands, then settle aggregation.
        let mut now = SimTime::from_secs(1);
        for _ in 0..50 {
            now = now.saturating_add(SimDuration::from_secs(60));
            sp.pump(now);
        }
        sp.flush_aggregation(now);
        assert_eq!(sp.aggregate_store().history().len(), 30);
        let snap = sp.observe();
        assert_eq!(
            snap.counter("cloud.accepted").unwrap(),
            60,
            "30 per-shard + 30 agg"
        );
        assert_eq!(snap.counter("shardfwd.records").unwrap(), 30);
        assert_eq!(snap.counter("shardfwd.send_refused").unwrap(), 0);
    }

    #[test]
    fn builder_survives_shard_fanout_with_fault_plan_intact() {
        // Regression (seed-cloning footgun): the fan-out path used to
        // consume one builder clone per shard, so a caller could end up
        // building later shards — or a serial baseline — from a builder
        // whose fault plan had already been moved out. `build(&builder)`
        // must leave the builder reusable with its full configuration.
        let mut schedule = swamp_fog::availability::OutageSchedule::new();
        schedule.add_outage(SimTime::from_secs(10), SimTime::from_secs(300));
        let builder = Platform::builder(DeploymentConfig::FarmFog)
            .seed(42)
            .shards(3)
            .uplink_outages(&schedule);

        let run = |sp: &mut ShardedPlatform| {
            let updates: Vec<Entity> = (0..12).map(|i| probe_update(i, 0.0)).collect();
            sp.ingest_entities(SimTime::from_secs(1), updates);
            let mut now = SimTime::from_secs(1);
            for _ in 0..10 {
                now = now.saturating_add(SimDuration::from_secs(60));
                sp.pump(now);
            }
            ObsReport::array_to_json_string(&sp.observe_labelled("t"))
        };

        let mut first = ShardedPlatform::build(&builder);
        let mut second = ShardedPlatform::build(&builder);
        let a = run(&mut first);
        let b = run(&mut second);
        assert_eq!(a, b, "same builder must build identical deployments");
        // The outage window reached every shard's fabric both times: the
        // scheduled partition fired during the pumped window.
        assert!(
            first.observe().counter("net.fault.partitioned").unwrap() > 0,
            "fault plan must survive the fan-out"
        );
    }

    #[test]
    fn worker_knob_is_clamped_and_reported() {
        let sp = ShardedPlatform::build(
            &Platform::builder(DeploymentConfig::FarmFog)
                .seed(1)
                .shards(2)
                .workers(0),
        );
        assert_eq!(sp.workers(), 1, "workers(0) clamps to the serial schedule");
        let mut sp = build(2, 1);
        sp.set_workers(8);
        assert_eq!(sp.workers(), 8);
    }

    #[test]
    fn labelled_reports_are_deterministic() {
        let run = |_| {
            let mut sp = build(2, 42);
            let updates: Vec<Entity> = (0..8).map(|i| probe_update(i, 0.0)).collect();
            sp.ingest_entities(SimTime::from_secs(1), updates);
            let mut now = SimTime::from_secs(1);
            for _ in 0..20 {
                now = now.saturating_add(SimDuration::from_secs(60));
                sp.pump(now);
            }
            sp.flush_aggregation(now);
            ObsReport::array_to_json_string(&sp.observe_labelled("t"))
        };
        assert_eq!(
            run(0),
            run(1),
            "two seed-42 runs must serialize identically"
        );
    }
}
