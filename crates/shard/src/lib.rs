//! # swamp-shard — the SWAMP scale-out tier
//!
//! The paper deploys one SWAMP platform per pilot (CBEC, Intercrop,
//! Guaspari, MATOPIBA); this crate runs *several farms at once* by
//! partitioning the deployment into per-farm **shards**. Each shard owns a
//! full [`Platform`] — its own network fabric, broker, history store and
//! fog→cloud sync engine — so shards never contend and a fault on one
//! farm's uplink cannot stall another's ingestion.
//!
//! Three pieces make the partitioning safe:
//!
//! - **Stable routing** ([`swamp_core::shard::route_device`]): a pure
//!   FNV-1a hash of the device id picks the shard, so assignment survives
//!   re-registration and restart, and a device's telemetry entities
//!   ([`swamp_core::shard::route_entity`]) follow it.
//! - **Deterministic scheduling** ([`ShardScheduler`]): shards are pumped
//!   in a seeded round-robin rotation — tick-based, no wall clock — so a
//!   sharded run replays bit-for-bit from its seed.
//! - **Cross-shard aggregation**: every shard's cloud replica drains into
//!   a dedicated aggregation fabric and a global [`CloudStore`] inbox via
//!   the *existing* [`CloudStore::process_deliveries`] wire path (records
//!   are re-encoded with [`UpdateRecord::encode`], so the aggregate store
//!   dedups and acks exactly as a first-hand cloud would).
//!
//! The headline correctness property — proven by the differential harness
//! in `crates/pilots/tests/shard_differential.rs` — is that **sharding is
//! an implementation detail**: for any seeded workload, an N-shard run and
//! a 1-shard run produce identical merged history, identical
//! cloud-applied record sets and identical summed ingest/sync counters.

// The scale-out tier must not panic on reachable errors; remaining
// `expect`s document invariants.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod scheduler;

pub use scheduler::ShardScheduler;

use swamp_codec::ngsi::Entity;
use swamp_core::platform::{DeploymentConfig, Platform, PlatformBuilder};
use swamp_core::shard::{route_device, route_entity, ShardIndex};
use swamp_core::Error;
use swamp_fog::sync::{CloudStore, UpdateRecord, SYNC_TOPIC};
use swamp_net::link::LinkSpec;
use swamp_net::message::{Message, NodeId};
use swamp_net::network::Network;
use swamp_obs::{Counter, Gauge, Obs, ObsReport, ObsSnapshot};
use swamp_sensors::device::DeviceKind;
use swamp_sim::{SimDuration, SimTime};

/// Mixes a shard index into the deployment's base seed. Shard 0 keeps the
/// base seed unchanged, which makes a 1-shard [`ShardedPlatform`]
/// bit-identical to a plain [`Platform`] built from the same builder.
pub fn shard_seed(base: u64, shard: ShardIndex) -> u64 {
    base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Node name of shard `i`'s uplink proxy on the aggregation fabric.
fn shard_proxy(i: ShardIndex) -> String {
    format!("shard{i}")
}

/// Node name of the aggregate cloud inbox on the aggregation fabric.
const AGG_NODE: &str = "cloud-agg";

/// Typed handles for the tier's own instruments.
struct ShardInstruments {
    forwarded: Counter,
    acked: Counter,
    send_refused: Counter,
    shard_count: Gauge,
}

impl ShardInstruments {
    fn register(obs: &mut Obs) -> ShardInstruments {
        ShardInstruments {
            forwarded: obs.counter("shardfwd.records"),
            acked: obs.counter("shardfwd.acked"),
            send_refused: obs.counter("shardfwd.send_refused"),
            shard_count: obs.gauge("shard.count"),
        }
    }
}

/// A deployment partitioned into per-farm shards.
///
/// Build one from a [`PlatformBuilder`] with
/// [`PlatformBuilder::shards`] configured; every builder knob (deployment,
/// sync tuning, fault plan, uplink outages) applies to *each* shard, and
/// one fault plan is shared — cloned into every shard's fabric — so a
/// scheduled regional outage hits all farms alike.
///
/// # Example
/// ```
/// use swamp_core::platform::{DeploymentConfig, Platform};
/// use swamp_shard::ShardedPlatform;
/// use swamp_sensors::device::DeviceKind;
/// use swamp_sim::SimTime;
///
/// let builder = Platform::builder(DeploymentConfig::FarmFog).seed(7).shards(3);
/// let mut sp = ShardedPlatform::build(builder);
/// let shard = sp
///     .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:demo")
///     .unwrap();
/// assert!(shard < 3);
/// ```
pub struct ShardedPlatform {
    shards: Vec<Platform>,
    seeds: Vec<u64>,
    scheduler: ShardScheduler,
    agg_net: Network,
    agg_store: CloudStore,
    agg_node: NodeId,
    proxies: Vec<NodeId>,
    /// Per-shard forward cursor into the replica's append-only applied
    /// history (`drain_new` is owned by the shard's own cloud-context
    /// mirror, so the tier keeps its own read position).
    forwarded_upto: Vec<usize>,
    obs: Obs,
    ins: ShardInstruments,
    base_seed: u64,
    config: DeploymentConfig,
}

impl ShardedPlatform {
    /// Builds `builder.shard_count()` platform shards plus the aggregation
    /// tier. Shard `i` gets the derived seed [`shard_seed`]`(base, i)`,
    /// the fabric namespace `shard<i>`, and a clone of the builder's fault
    /// plan and outage schedule.
    pub fn build(builder: PlatformBuilder) -> ShardedPlatform {
        let n = builder.shard_count();
        let base_seed = builder.configured_seed();
        let config = builder.deployment();

        let mut shards = Vec::with_capacity(n);
        let mut seeds = Vec::with_capacity(n);
        for i in 0..n {
            let seed = shard_seed(base_seed, i);
            let mut shard = builder.clone().seed(seed).build();
            shard.set_net_namespace(shard_proxy(i));
            shards.push(shard);
            seeds.push(seed);
        }

        // The aggregation fabric: one zero-loss datacenter link per shard
        // proxy into the global inbox. Faults never apply here — shard
        // uplinks already modelled them; this tier models the cloud's own
        // backbone.
        let mut agg_net = Network::new(base_seed ^ 0x0061_6767_5f6e_6574); // "agg_net"
        agg_net.set_namespace("agg");
        let agg_node = agg_net.add_node(AGG_NODE);
        let mut proxies = Vec::with_capacity(n);
        for i in 0..n {
            let proxy = agg_net.add_node(shard_proxy(i).as_str());
            agg_net.connect(proxy.clone(), agg_node.clone(), LinkSpec::cloud_backbone());
            proxies.push(proxy);
        }

        let mut obs = Obs::new();
        let ins = ShardInstruments::register(&mut obs);
        obs.set(ins.shard_count, n as f64);

        ShardedPlatform {
            shards,
            seeds,
            scheduler: ShardScheduler::new(base_seed, n),
            agg_net,
            agg_store: CloudStore::new(AGG_NODE),
            agg_node,
            proxies,
            forwarded_upto: vec![0; n],
            obs,
            ins,
            base_seed,
            config,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The deployment configuration every shard runs.
    pub fn config(&self) -> DeploymentConfig {
        self.config
    }

    /// The shard a device id routes to.
    pub fn shard_of(&self, device_id: &str) -> ShardIndex {
        route_device(device_id, self.shards.len())
    }

    /// Shared access to one shard's platform.
    pub fn shard(&self, i: ShardIndex) -> Option<&Platform> {
        self.shards.get(i)
    }

    /// Mutable access to one shard's platform (fault drills, direct
    /// publishes).
    pub fn shard_mut(&mut self, i: ShardIndex) -> Option<&mut Platform> {
        self.shards.get_mut(i)
    }

    /// Iterates the shards in index order.
    pub fn shards(&self) -> impl Iterator<Item = &Platform> {
        self.shards.iter()
    }

    /// The scheduler's completed round count.
    pub fn rounds(&self) -> u64 {
        self.scheduler.ticks()
    }

    /// Registers a device on the shard its id routes to, returning that
    /// shard's index.
    ///
    /// # Errors
    /// [`Error::Registry`] if the id is already registered on its shard
    /// (routing is stable, so re-registration always lands on the same
    /// shard and is caught there).
    pub fn register_device(
        &mut self,
        now: SimTime,
        device_id: &str,
        kind: DeviceKind,
        owner: &str,
    ) -> Result<ShardIndex, Error> {
        let idx = self.shard_of(device_id);
        self.shards[idx].register_device(now, device_id, kind, owner)?;
        Ok(idx)
    }

    /// Device-side publish, routed to the device's shard.
    ///
    /// # Errors
    /// [`Error::Send`] if the shard's network refuses the send.
    pub fn device_publish(
        &mut self,
        now: SimTime,
        device_id: &str,
        entity: &Entity,
    ) -> Result<ShardIndex, Error> {
        let idx = self.shard_of(device_id);
        self.shards[idx].device_publish(now, device_id, entity)?;
        Ok(idx)
    }

    /// Applies a batch of already-validated entity updates, partitioned to
    /// each entity's shard by [`route_entity`] (device URNs follow their
    /// device). Returns the number of updates applied.
    pub fn ingest_entities(
        &mut self,
        now: SimTime,
        entities: impl IntoIterator<Item = Entity>,
    ) -> usize {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Entity>> = (0..n).map(|_| Vec::new()).collect();
        for entity in entities {
            per_shard[route_entity(entity.id().as_str(), n)].push(entity);
        }
        let mut applied = 0;
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                applied += self.shards[idx].ingest_entities(now, batch);
            }
        }
        applied
    }

    /// Pumps every shard once, in this round's scheduler rotation, then
    /// runs one aggregation pass. Returns the number of entity updates
    /// ingested across all shards.
    pub fn pump(&mut self, now: SimTime) -> usize {
        let mut ingested = 0;
        for idx in self.scheduler.next_round() {
            ingested += self.shards[idx].pump(now);
        }
        self.aggregate(now);
        ingested
    }

    /// One aggregation pass: drains each shard replica's newly applied
    /// records, re-encodes them onto the aggregation fabric, and feeds
    /// everything that has arrived into the global [`CloudStore`] inbox.
    /// Records sent this pass arrive one backbone latency later (next
    /// pass); [`ShardedPlatform::flush_aggregation`] settles the tail.
    pub fn aggregate(&mut self, now: SimTime) {
        // Forward phase: per-shard replica → aggregation fabric. The
        // replica's applied history is append-only, so a cursor per shard
        // picks up exactly the records applied since the last pass
        // (without stealing `drain_new` from the shard's own
        // cloud-context mirror).
        for idx in 0..self.shards.len() {
            let records: Vec<UpdateRecord> = match self.shards[idx].cloud_replica() {
                Some(replica) => {
                    let history = replica.history();
                    let new = history[self.forwarded_upto[idx].min(history.len())..].to_vec();
                    self.forwarded_upto[idx] = history.len();
                    new
                }
                None => Vec::new(),
            };
            for record in records {
                let ok = self
                    .agg_net
                    .send(
                        now,
                        self.proxies[idx].clone(),
                        self.agg_node.clone(),
                        Message::new(SYNC_TOPIC, record.encode()),
                    )
                    .is_ok();
                if ok {
                    self.obs.inc(self.ins.forwarded);
                } else {
                    // Zero-loss backbone: refusals mean a config bug, but
                    // the tier degrades to a counter rather than a panic.
                    self.obs.inc(self.ins.send_refused);
                }
            }
        }
        // Delivery phase: whatever the backbone has delivered by `now`.
        self.agg_net.advance_to(now);
        let deliveries = self.agg_net.drain(&self.agg_node.clone());
        self.agg_store
            .process_deliveries(&mut self.agg_net, now, deliveries);
        // The store acks each proxy; drain those acks so inboxes stay
        // bounded (the proxies have no retry engine to feed them to).
        for proxy in self.proxies.clone() {
            let acked = self.agg_net.drain(&proxy).len() as u64;
            self.obs.add(self.ins.acked, acked);
        }
    }

    /// Settles the aggregation fabric: advances simulated time in 1-second
    /// steps until no message is in flight, processing arrivals each step.
    /// Returns the horizon reached. Call after the last
    /// [`ShardedPlatform::pump`] to make the aggregate store reflect every
    /// record the shards have applied.
    pub fn flush_aggregation(&mut self, now: SimTime) -> SimTime {
        let mut horizon = now;
        loop {
            self.aggregate(horizon);
            if self.agg_net.in_flight() == 0 {
                return horizon;
            }
            horizon = horizon.saturating_add(SimDuration::from_secs(1));
        }
    }

    /// The aggregate cloud store built from every shard's replicated
    /// records.
    pub fn aggregate_store(&self) -> &CloudStore {
        &self.agg_store
    }

    /// One merged snapshot across the whole tier: every shard's
    /// [`Platform::observe`] (counters add, so `ingest.*`/`sync.*` totals
    /// are fleet-wide), the aggregation fabric and store, and the tier's
    /// own `shardfwd.*`/`shard.count` instruments. Byte-stable: shards
    /// merge in index order and [`ObsSnapshot`] serialization is sorted.
    pub fn observe(&self) -> ObsSnapshot {
        let mut snap = self.obs.snapshot();
        for shard in &self.shards {
            snap.merge(&shard.observe());
        }
        snap.merge(&self.agg_net.observe());
        snap.merge(&self.agg_store.observe());
        snap
    }

    /// Per-shard labelled reports plus the merged tier report: one
    /// [`ObsReport`] labelled `<base>/shard<i>` per shard (carrying that
    /// shard's derived seed) followed by `<base>/merged` (base seed,
    /// merged snapshot from [`ShardedPlatform::observe`]). Label order is
    /// deterministic, so serializing the vec is byte-stable run-to-run.
    pub fn observe_labelled(&self, base: &str) -> Vec<ObsReport> {
        let mut reports: Vec<ObsReport> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                ObsReport::new(&format!("{base}/shard{i}"), self.seeds[i], shard.observe())
            })
            .collect();
        reports.push(ObsReport::new(
            &format!("{base}/merged"),
            self.base_seed,
            self.observe(),
        ));
        reports
    }
}

impl std::fmt::Debug for ShardedPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPlatform")
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .field("rounds", &self.scheduler.ticks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> ShardedPlatform {
        ShardedPlatform::build(
            Platform::builder(DeploymentConfig::FarmFog)
                .seed(seed)
                .shards(n),
        )
    }

    fn probe_update(i: usize, seq: f64) -> Entity {
        let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
        e.set("moisture_vwc", 0.2 + (i % 10) as f64 * 0.01);
        e.set("seq", seq);
        e
    }

    #[test]
    fn shard_zero_matches_plain_platform_seed() {
        assert_eq!(shard_seed(42, 0), 42);
        assert_ne!(shard_seed(42, 1), 42);
    }

    #[test]
    fn devices_route_to_owning_shard() {
        let mut sp = build(4, 7);
        let idx = sp
            .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:t")
            .unwrap();
        assert_eq!(idx, sp.shard_of("probe-1"));
        // Re-registration lands on the same shard and errors there.
        assert!(sp
            .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:t")
            .is_err());
    }

    #[test]
    fn ingest_partitions_and_aggregates() {
        let mut sp = build(3, 42);
        let updates: Vec<Entity> = (0..30).map(|i| probe_update(i, 0.0)).collect();
        let applied = sp.ingest_entities(SimTime::from_secs(1), updates);
        assert_eq!(applied, 30);
        // Per-shard history totals sum to the batch (2 samples per update).
        let total: u64 = sp.shards().map(|s| s.history().len()).sum();
        assert_eq!(total, 60);
        // Pump until replication lands, then settle aggregation.
        let mut now = SimTime::from_secs(1);
        for _ in 0..50 {
            now = now.saturating_add(SimDuration::from_secs(60));
            sp.pump(now);
        }
        sp.flush_aggregation(now);
        assert_eq!(sp.aggregate_store().history().len(), 30);
        let snap = sp.observe();
        assert_eq!(
            snap.counter("cloud.accepted").unwrap(),
            60,
            "30 per-shard + 30 agg"
        );
        assert_eq!(snap.counter("shardfwd.records").unwrap(), 30);
        assert_eq!(snap.counter("shardfwd.send_refused").unwrap(), 0);
    }

    #[test]
    fn labelled_reports_are_deterministic() {
        let run = |_| {
            let mut sp = build(2, 42);
            let updates: Vec<Entity> = (0..8).map(|i| probe_update(i, 0.0)).collect();
            sp.ingest_entities(SimTime::from_secs(1), updates);
            let mut now = SimTime::from_secs(1);
            for _ in 0..20 {
                now = now.saturating_add(SimDuration::from_secs(60));
                sp.pump(now);
            }
            sp.flush_aggregation(now);
            ObsReport::array_to_json_string(&sp.observe_labelled("t"))
        };
        assert_eq!(
            run(0),
            run(1),
            "two seed-42 runs must serialize identically"
        );
    }
}
