//! Deterministic round-robin shard scheduling.
//!
//! The scale-out tier pumps its shards one at a time; the scheduler fixes
//! *which order*, deterministically. It is seeded (two deployments with
//! different seeds start their rotations at different shards, so no shard
//! is structurally "first") and tick-based (each pump round advances one
//! tick of simulated scheduling state — no wall clock anywhere, which
//! keeps the tier analyzer-clean and replayable).
//!
//! Fairness invariant: over any window of `n` consecutive rounds, every
//! shard is pumped exactly `n` times and leads the rotation exactly once.

use swamp_core::shard::ShardIndex;
use swamp_sim::SimRng;

/// Deterministic, seeded round-robin scheduler over `n` shards.
///
/// # Example
/// ```
/// use swamp_shard::ShardScheduler;
/// let mut s = ShardScheduler::new(42, 3);
/// let first = s.next_round();
/// assert_eq!(first.len(), 3);
/// // Each round is a rotation of 0..3; the leader advances by one.
/// let second = s.next_round();
/// assert_eq!(second[0], (first[0] + 1) % 3);
/// ```
#[derive(Clone, Debug)]
pub struct ShardScheduler {
    n: usize,
    /// Shard that leads the next round.
    cursor: ShardIndex,
    /// Completed rounds.
    tick: u64,
}

impl ShardScheduler {
    /// Creates a scheduler over `n` shards (`n = 0` is clamped to 1, like
    /// the routing function). The seed only picks the initial rotation
    /// offset; all later state is a pure function of the tick count.
    pub fn new(seed: u64, n: usize) -> Self {
        let n = n.max(1);
        let offset = SimRng::seed_from(seed).split("shard-sched").below(n as u64) as usize;
        ShardScheduler {
            n,
            cursor: offset,
            tick: 0,
        }
    }

    /// Number of shards scheduled over.
    pub fn shard_count(&self) -> usize {
        self.n
    }

    /// Completed scheduling rounds.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The shard that will lead the next round.
    pub fn leader(&self) -> ShardIndex {
        self.cursor
    }

    /// Returns the pump order for one round — a rotation of `0..n`
    /// starting at the current leader — then advances the leader by one
    /// and counts the tick.
    pub fn next_round(&mut self) -> Vec<ShardIndex> {
        let order: Vec<ShardIndex> = (0..self.n).map(|i| (self.cursor + i) % self.n).collect();
        self.cursor = (self.cursor + 1) % self.n;
        self.tick += 1;
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_are_rotations_and_fair() {
        let mut s = ShardScheduler::new(7, 4);
        let mut pumped = [0u32; 4];
        let mut leaders = [0u32; 4];
        for _ in 0..4 {
            let round = s.next_round();
            assert_eq!(round.len(), 4);
            leaders[round[0]] += 1;
            for i in &round {
                pumped[*i] += 1;
            }
            // A rotation: consecutive elements differ by 1 mod n.
            for w in round.windows(2) {
                assert_eq!(w[1], (w[0] + 1) % 4);
            }
        }
        assert_eq!(pumped, [4, 4, 4, 4]);
        assert_eq!(
            leaders,
            [1, 1, 1, 1],
            "each shard leads exactly once per n rounds"
        );
        assert_eq!(s.ticks(), 4);
    }

    #[test]
    fn seeded_and_deterministic() {
        let mut a = ShardScheduler::new(42, 8);
        let mut b = ShardScheduler::new(42, 8);
        for _ in 0..20 {
            assert_eq!(a.next_round(), b.next_round());
        }
        // Different seeds may start at different offsets, but stay legal.
        let c = ShardScheduler::new(1, 8);
        assert!(c.leader() < 8);
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let mut s = ShardScheduler::new(3, 0);
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.next_round(), vec![0]);
    }
}
