//! Compile-time Send/Sync audit of the platform stack.
//!
//! The worker pool moves `&mut Platform` borrows across scoped threads, so
//! `Platform: Send` is a hard requirement of the parallel scheduler — and a
//! fragile one: a single `Rc`, `RefCell` or raw-pointer field added anywhere
//! in the ownership tree (broker, history store, fog sync, obs registry,
//! network fabric) would silently revoke it and break the build far from
//! the offending change. These zero-sized assertions pin the auto traits at
//! compile time, `static_assertions`-style but with no dependency: if any
//! listed type loses `Send`/`Sync`, *this file* fails to compile with the
//! type named in the error.
//!
//! Audit result (recorded in DESIGN.md §14): every platform component is
//! built from owned data plus `Arc`-shared immutable state, so the whole
//! stack is both `Send` and `Sync` with no `unsafe impl` anywhere.

use swamp_core::broker::ContextBroker;
use swamp_core::history::HistoryStore;
use swamp_core::platform::{Platform, PlatformBuilder};
use swamp_core::registry::DeviceRegistry;
use swamp_core::service::IrrigationService;
use swamp_fog::sync::{CloudStore, FogSync};
use swamp_net::network::Network;
use swamp_obs::Obs;
use swamp_shard::ShardedPlatform;

const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}

// Evaluated at compile time; the test body only forces the consts to be
// monomorphised so `cargo test` exercises them even under `--no-run`.
const _: () = {
    // The types the worker pool actually moves across threads.
    assert_send::<Platform>();
    assert_send::<ShardedPlatform>();
    assert_send::<PlatformBuilder>();
    // Every component in Platform's ownership tree, independently — so a
    // regression names the exact subsystem, not just `Platform`.
    assert_send::<Network>();
    assert_send::<FogSync>();
    assert_send::<CloudStore>();
    assert_send::<ContextBroker>();
    assert_send::<HistoryStore>();
    assert_send::<DeviceRegistry>();
    assert_send::<IrrigationService>();
    assert_send::<Obs>();
    // Sync is not required by the pool (each worker owns its chunk
    // exclusively) but it documents that shared `&Platform` reads — e.g.
    // `observe()` from a monitoring thread — would also be sound.
    assert_sync::<Platform>();
    assert_sync::<ShardedPlatform>();
    assert_sync::<Network>();
    assert_sync::<FogSync>();
    assert_sync::<CloudStore>();
    assert_sync::<ContextBroker>();
    assert_sync::<HistoryStore>();
    assert_sync::<DeviceRegistry>();
    assert_sync::<IrrigationService>();
    assert_sync::<Obs>();
};

#[test]
fn platform_stack_is_send_and_sync() {
    // The audit itself happened at compile time (the `const _` block
    // above); a runtime smoke check proves a Platform really can cross a
    // thread boundary and come back usable.
    let platform = Platform::builder(swamp_core::platform::DeploymentConfig::FarmFog)
        .seed(42)
        .build();
    let handle = std::thread::spawn(move || {
        let mut p = platform;
        p.pump(swamp_sim::SimTime::from_secs(60));
        p.observe().counter("ingest.accepted").unwrap_or_default()
    });
    assert_eq!(handle.join().expect("worker thread panicked"), 0);
}
