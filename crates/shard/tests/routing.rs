//! Always-on property tests for the `device_id → shard` routing function
//! (ISSUE 5 satellite: totality, stability under re-registration, and
//! balance over 10k random ids — in plain CI, not gated behind
//! `proptest-tests`). A proptest twin at the bottom re-states the same
//! properties for environments where the registry is reachable.

use swamp_core::platform::{DeploymentConfig, Platform};
use swamp_core::shard::{route_device, route_entity, routing_key, DEVICE_URN_PREFIX};
use swamp_sensors::device::DeviceKind;
use swamp_shard::ShardedPlatform;
use swamp_sim::{SimRng, SimTime};

/// Generates a population of pseudo-random device ids of varied shapes:
/// short names, hex ids, dotted site prefixes — what real fleets mix.
fn random_ids(seed: u64, count: usize) -> Vec<String> {
    let mut rng = SimRng::seed_from(seed).split("routing-ids");
    (0..count)
        .map(|i| match rng.below(4) {
            0 => format!("probe-{i}"),
            1 => format!("dev-{:016x}", rng.next_u64()),
            2 => format!("farm{}.sensor.{i}", rng.below(32)),
            _ => format!("urn-suffix-{}-{i}", rng.below(1000)),
        })
        .collect()
}

#[test]
fn routing_is_total_for_every_shard_count() {
    let ids = random_ids(42, 1000);
    for n in [1usize, 2, 3, 5, 8, 16, 64] {
        for id in &ids {
            assert!(route_device(id, n) < n, "{id} must land inside 0..{n}");
        }
    }
    // Degenerate inputs still route.
    assert_eq!(route_device("", 1), 0);
    assert!(route_device("", 7) < 7);
    assert_eq!(route_device("x", 0), 0, "0 shards clamp to 1");
}

#[test]
fn routing_is_stable_under_re_registration() {
    // Pure function of the id bytes: registering, unregistering and
    // re-registering devices (in any order, on any platform instance)
    // cannot move them, because routing consults no state.
    let ids = random_ids(7, 500);
    for n in [3usize, 8] {
        let first: Vec<_> = ids.iter().map(|id| route_device(id, n)).collect();
        // Re-evaluate in reverse order and interleaved with other lookups.
        for (i, id) in ids.iter().enumerate().rev() {
            assert_eq!(route_device(id, n), first[i]);
            assert_eq!(
                route_device(&ids[(i * 31) % ids.len()], n),
                first[(i * 31) % ids.len()]
            );
        }
    }
    // End-to-end: a ShardedPlatform rejects a duplicate registration on
    // the *same* shard the first one landed on.
    let mut sp = ShardedPlatform::build(
        &Platform::builder(DeploymentConfig::FarmFog)
            .seed(1)
            .shards(5),
    );
    let first = sp
        .register_device(SimTime::ZERO, "probe-9", DeviceKind::SoilProbe, "owner:a")
        .expect("fresh registration succeeds");
    assert!(sp
        .register_device(SimTime::ZERO, "probe-9", DeviceKind::SoilProbe, "owner:a")
        .is_err());
    assert_eq!(sp.shard_of("probe-9"), first);
}

#[test]
fn routing_balances_within_2x_over_10k_ids() {
    for (seed, n) in [(42u64, 4usize), (42, 8), (7, 16), (1234, 8)] {
        let ids = random_ids(seed, 10_000);
        let mut load = vec![0u64; n];
        for id in &ids {
            load[route_device(id, n)] += 1;
        }
        let max = *load.iter().max().expect("non-empty");
        let min = *load.iter().min().expect("non-empty");
        assert!(min > 0, "seed {seed}, {n} shards: some shard got nothing");
        assert!(
            max <= 2 * min,
            "seed {seed}, {n} shards: max/min load {max}/{min} exceeds 2x"
        );
    }
}

#[test]
fn entity_routing_follows_device_routing() {
    let ids = random_ids(99, 1000);
    for n in [1usize, 3, 8] {
        for id in &ids {
            let urn = format!("{DEVICE_URN_PREFIX}{id}");
            assert_eq!(route_entity(&urn, n), route_device(id, n));
        }
    }
}

#[test]
fn routing_key_distinguishes_realistic_fleets() {
    // No collisions among 10k realistic ids (64-bit FNV over short
    // strings; a collision here would silently co-locate two devices,
    // which is legal but should be vanishingly rare).
    let ids = random_ids(42, 10_000);
    let mut keys: Vec<u64> = ids.iter().map(|id| routing_key(id)).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), ids.len(), "routing keys collided");
}

/// Proptest twin (registry-dependent; see the workspace Cargo.toml note on
/// restoring the proptest dependency).
#[cfg(feature = "proptest-tests")]
mod proptest_twin {
    use proptest::prelude::*;
    use swamp_core::shard::{route_device, route_entity, DEVICE_URN_PREFIX};

    proptest! {
        #[test]
        fn total_and_stable(id in ".{0,64}", n in 1usize..64) {
            let a = route_device(&id, n);
            prop_assert!(a < n);
            prop_assert_eq!(a, route_device(&id, n));
            prop_assert_eq!(
                route_entity(&format!("{DEVICE_URN_PREFIX}{id}"), n),
                a
            );
        }
    }
}
