//! Merge-barrier ordering proof (ISSUE 7 satellite).
//!
//! The parallel scheduler must be unobservable: whatever order the worker
//! threads *finish* a round in, the cross-shard aggregation pass runs only
//! after the barrier and always in shard-id order, so the aggregate
//! CloudStore's record stream and the labelled obs export are byte-identical
//! to the serial schedule. To make the proof sharp rather than lucky, the
//! test drives the wall-clock stagger seam
//! (`set_round_stagger_for_tests`): shard 0 is made the *slowest* worker
//! and shard N−1 the fastest, inverting the natural finish order — if the
//! merge depended on completion order at all, shard N−1's records would
//! jump the queue and the history comparison below would fail.

use swamp_codec::ngsi::Entity;
use swamp_core::platform::{DeploymentConfig, Platform, PlatformBuilder};
use swamp_obs::ObsReport;
use swamp_sensors::device::DeviceKind;
use swamp_shard::ShardedPlatform;
use swamp_sim::{SimDuration, SimTime};

const SHARDS: usize = 8;
const DEVICES: usize = 64;

fn builder(seed: u64) -> PlatformBuilder {
    Platform::builder(DeploymentConfig::FarmFog)
        .seed(seed)
        .shards(SHARDS)
}

fn probe_update(i: usize, seq: f64) -> Entity {
    let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
    e.set("moisture_vwc", 0.2 + (i % 10) as f64 * 0.01);
    e.set("seq", seq);
    e
}

/// Drives a fixed seeded workload — registrations, per-round publishes,
/// direct ingest batches — and returns the full observable fingerprint:
/// the aggregate store's record stream *in order* plus the labelled
/// export.
fn run_workload(sp: &mut ShardedPlatform) -> (Vec<Vec<u8>>, String) {
    let t0 = SimTime::from_secs(1);
    for i in 0..DEVICES {
        sp.register_device(
            t0,
            &format!("probe-{i}"),
            DeviceKind::SoilProbe,
            "owner:par",
        )
        .expect("registration succeeds");
    }
    let mut now = t0;
    for round in 0..12u64 {
        for i in 0..DEVICES {
            let _ = sp.device_publish(now, &format!("probe-{i}"), &probe_update(i, round as f64));
        }
        if round % 3 == 0 {
            let batch: Vec<Entity> = (0..DEVICES)
                .map(|i| probe_update(i, 1000.0 + round as f64))
                .collect();
            sp.ingest_entities(now, batch);
        }
        now = now.saturating_add(SimDuration::from_secs(60));
        sp.pump(now);
    }
    // Drain in-flight replication so the fingerprint covers every record.
    for _ in 0..20 {
        now = now.saturating_add(SimDuration::from_secs(60));
        sp.pump(now);
    }
    let history: Vec<Vec<u8>> = sp
        .aggregate_store()
        .history()
        .iter()
        .map(|r| r.encode())
        .collect();
    let export = ObsReport::array_to_json_string(&sp.observe_labelled("par"));
    (history, export)
}

#[test]
fn skewed_parallel_rounds_merge_in_shard_id_order() {
    let mut serial = ShardedPlatform::build(&builder(42));
    assert_eq!(serial.workers(), 1);
    let (serial_history, serial_export) = run_workload(&mut serial);
    assert!(
        !serial_history.is_empty(),
        "workload must replicate records to the aggregate store"
    );

    for workers in [2usize, 8] {
        let mut parallel = ShardedPlatform::build(&builder(42));
        parallel.set_workers(workers);
        // Invert the natural finish order: shard 0 sleeps longest, shard
        // N−1 not at all, so workers complete in reverse shard order.
        let stagger: Vec<u64> = (0..SHARDS).map(|i| ((SHARDS - 1 - i) * 5) as u64).collect();
        parallel.set_round_stagger_for_tests(stagger);
        let (par_history, par_export) = run_workload(&mut parallel);

        assert_eq!(
            par_history.len(),
            serial_history.len(),
            "{workers} workers: aggregate record count diverged"
        );
        for (i, (s, p)) in serial_history.iter().zip(&par_history).enumerate() {
            assert_eq!(
                s, p,
                "{workers} workers: aggregate record {i} diverged from the serial schedule"
            );
        }
        assert_eq!(
            par_export, serial_export,
            "{workers} workers: labelled obs export diverged from the serial schedule"
        );
    }
}

#[test]
fn round_counter_ticks_identically_under_parallel_schedule() {
    // `rounds()` feeds the labelled export; the parallel scheduler must
    // tick it exactly like the serial one even though it ignores the
    // rotation order.
    let mut serial = ShardedPlatform::build(&builder(7));
    let mut parallel = ShardedPlatform::build(&builder(7));
    parallel.set_workers(4);
    for r in 1..=5u64 {
        let t = SimTime::from_secs(60 * r);
        serial.pump(t);
        parallel.pump(t);
        assert_eq!(serial.rounds(), parallel.rounds());
        assert_eq!(serial.rounds(), r);
    }
}
