//! Property-based tests for the crypto substrate.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_crypto::aead::{NonceSequence, SecretKey};
use swamp_crypto::hmac::{constant_time_eq, hmac_sha256};
use swamp_crypto::sha256::Sha256;

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn seal_open_roundtrip(
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        aad in prop::collection::vec(any::<u8>(), 0..32),
        plaintext in prop::collection::vec(any::<u8>(), 0..256),
        sender in any::<u32>(),
    ) {
        let key = SecretKey::derive(&ikm, "proptest");
        let mut nonces = NonceSequence::new(sender);
        let frame = key.seal(&nonces.next_nonce(), &aad, &plaintext);
        let opened = key.open(&aad, &frame).expect("roundtrip");
        prop_assert_eq!(opened, plaintext);
    }

    #[test]
    fn any_single_bitflip_is_rejected(
        plaintext in prop::collection::vec(any::<u8>(), 1..64),
        flip_bit in 0usize..8,
    ) {
        let key = SecretKey::derive(b"k", "flip");
        let mut nonces = NonceSequence::new(0);
        let frame = key.seal(&nonces.next_nonce(), b"", &plaintext);
        for byte_idx in 0..frame.len() {
            let mut tampered = frame.clone();
            tampered[byte_idx] ^= 1 << flip_bit;
            prop_assert!(
                key.open(b"", &tampered).is_err(),
                "bitflip at byte {} accepted", byte_idx
            );
        }
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in prop::collection::vec(any::<u8>(), 0..128),
        msg in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let t1 = hmac_sha256(&key, &msg);
        let t2 = hmac_sha256(&key, &msg);
        prop_assert_eq!(t1, t2);
        let mut key2 = key.clone();
        key2.push(0x01);
        prop_assert_ne!(t1, hmac_sha256(&key2, &msg));
    }

    #[test]
    fn constant_time_eq_matches_plain_eq(
        a in prop::collection::vec(any::<u8>(), 0..32),
        b in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assert_eq!(constant_time_eq(&a, &b), a == b);
    }

    #[test]
    fn truncation_always_rejected(
        plaintext in prop::collection::vec(any::<u8>(), 0..64),
        cut in 1usize..16,
    ) {
        let key = SecretKey::derive(b"k", "trunc");
        let mut nonces = NonceSequence::new(0);
        let frame = key.seal(&nonces.next_nonce(), b"", &plaintext);
        let cut = cut.min(frame.len());
        prop_assert!(key.open(b"", &frame[..frame.len() - cut]).is_err());
    }
}
