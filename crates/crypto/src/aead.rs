//! Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//!
//! This is the "state of the practice cryptography" the paper mandates for
//! confidentiality of farm data. We compose the two from-scratch primitives
//! in this crate rather than implementing Poly1305, trading a little speed
//! for a much smaller trusted codebase; the security argument
//! (encrypt-then-MAC with independent keys) is standard.
//!
//! The sealed frame layout is: `nonce (12) || ciphertext || tag (32)`.

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::hmac::{constant_time_eq, hkdf, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// Overhead added by [`SecretKey::seal`]: nonce plus tag.
pub const SEAL_OVERHEAD: usize = NONCE_LEN + DIGEST_LEN;

/// Error returned when opening a sealed frame fails.
///
/// Deliberately carries no detail: distinguishing "bad MAC" from "truncated"
/// would hand an oracle to an active attacker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenError;

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("authenticated decryption failed")
    }
}
impl std::error::Error for OpenError {}

/// A 256-bit symmetric key from which independent encryption and MAC keys
/// are derived via HKDF.
#[derive(Clone)]
pub struct SecretKey {
    enc_key: [u8; KEY_LEN],
    mac_key: [u8; KEY_LEN],
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey { <redacted> }")
    }
}

impl SecretKey {
    /// Derives a key from raw input keying material and a context label.
    ///
    /// The label separates uses (e.g. `"link:probe-07"` vs `"token-signing"`)
    /// so a leaked key in one context cannot be replayed in another.
    pub fn derive(ikm: &[u8], label: &str) -> Self {
        let okm = hkdf(b"swamp-aead-v1", ikm, label.as_bytes(), KEY_LEN * 2);
        let mut enc_key = [0u8; KEY_LEN];
        let mut mac_key = [0u8; KEY_LEN];
        enc_key.copy_from_slice(&okm[..KEY_LEN]);
        mac_key.copy_from_slice(&okm[KEY_LEN..]);
        SecretKey { enc_key, mac_key }
    }

    /// Encrypts and authenticates `plaintext` with the given unique `nonce`
    /// and additional authenticated data `aad`.
    ///
    /// The caller is responsible for nonce uniqueness per key; the network
    /// layer uses a per-device message counter.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + SEAL_OVERHEAD);
        out.extend_from_slice(nonce);
        let ct_start = out.len();
        out.extend_from_slice(plaintext);
        ChaCha20::new(&self.enc_key, nonce).apply_keystream(1, &mut out[ct_start..]);
        let tag = self.tag(nonce, aad, &out[ct_start..]);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts a frame produced by [`SecretKey::seal`].
    ///
    /// # Errors
    /// Returns [`OpenError`] if the frame is truncated, the tag does not
    /// verify, or the AAD differs from the one used at seal time.
    pub fn open(&self, aad: &[u8], frame: &[u8]) -> Result<Vec<u8>, OpenError> {
        if frame.len() < SEAL_OVERHEAD {
            return Err(OpenError);
        }
        let (nonce_bytes, rest) = frame.split_at(NONCE_LEN);
        let (ciphertext, tag) = rest.split_at(rest.len() - DIGEST_LEN);
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(nonce_bytes);

        let expected = self.tag(&nonce, aad, ciphertext);
        if !constant_time_eq(&expected, tag) {
            return Err(OpenError);
        }

        let mut plaintext = ciphertext.to_vec();
        ChaCha20::new(&self.enc_key, &nonce).apply_keystream(1, &mut plaintext);
        Ok(plaintext)
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; DIGEST_LEN] {
        let mut mac = HmacSha256::new(&self.mac_key);
        // Unambiguous framing: lengths prefixed so (aad, ct) pairs can't collide.
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        mac.update(nonce);
        mac.update(ciphertext);
        mac.finalize()
    }
}

/// A monotonically increasing nonce source for one key.
///
/// # Example
/// ```
/// use swamp_crypto::aead::NonceSequence;
/// let mut seq = NonceSequence::new(7);
/// let a = seq.next_nonce();
/// let b = seq.next_nonce();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NonceSequence {
    sender_id: u32,
    counter: u64,
}

impl NonceSequence {
    /// Creates a sequence namespaced by a sender id, so two devices sharing
    /// a (mis-provisioned) key still never collide nonces.
    pub fn new(sender_id: u32) -> Self {
        NonceSequence {
            sender_id,
            counter: 0,
        }
    }

    /// Returns the next unique nonce.
    pub fn next_nonce(&mut self) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..4].copy_from_slice(&self.sender_id.to_be_bytes());
        nonce[4..].copy_from_slice(&self.counter.to_be_bytes());
        self.counter += 1;
        nonce
    }

    /// How many nonces have been issued.
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SecretKey {
        SecretKey::derive(b"pilot shared secret", "link:test")
    }

    #[test]
    fn seal_open_roundtrip() {
        let k = key();
        let nonce = [1u8; NONCE_LEN];
        let frame = k.seal(&nonce, b"hdr", b"soil moisture 0.23");
        assert_eq!(frame.len(), 18 + SEAL_OVERHEAD);
        let plain = k.open(b"hdr", &frame).unwrap();
        assert_eq!(plain, b"soil moisture 0.23");
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let k = key();
        let frame = k.seal(&[0u8; NONCE_LEN], b"", b"");
        assert_eq!(k.open(b"", &frame).unwrap(), b"");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = key();
        let mut frame = k.seal(&[2u8; NONCE_LEN], b"", b"open valve 3");
        frame[NONCE_LEN] ^= 0x01;
        assert_eq!(k.open(b"", &frame), Err(OpenError));
    }

    #[test]
    fn tampered_tag_rejected() {
        let k = key();
        let mut frame = k.seal(&[2u8; NONCE_LEN], b"", b"x");
        let last = frame.len() - 1;
        frame[last] ^= 0x80;
        assert_eq!(k.open(b"", &frame), Err(OpenError));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let k = key();
        let mut frame = k.seal(&[2u8; NONCE_LEN], b"", b"x");
        frame[0] ^= 0x01;
        assert_eq!(k.open(b"", &frame), Err(OpenError));
    }

    #[test]
    fn wrong_aad_rejected() {
        let k = key();
        let frame = k.seal(&[3u8; NONCE_LEN], b"device:7", b"m");
        assert!(k.open(b"device:7", &frame).is_ok());
        assert_eq!(k.open(b"device:8", &frame), Err(OpenError));
    }

    #[test]
    fn wrong_key_rejected() {
        let frame = key().seal(&[4u8; NONCE_LEN], b"", b"m");
        let other = SecretKey::derive(b"different secret", "link:test");
        assert_eq!(other.open(b"", &frame), Err(OpenError));
    }

    #[test]
    fn truncated_frames_rejected() {
        let k = key();
        let frame = k.seal(&[5u8; NONCE_LEN], b"", b"hello");
        for len in 0..SEAL_OVERHEAD {
            assert_eq!(k.open(b"", &frame[..len]), Err(OpenError), "len {len}");
        }
    }

    #[test]
    fn label_separation() {
        let a = SecretKey::derive(b"ikm", "link:a");
        let b = SecretKey::derive(b"ikm", "link:b");
        let frame = a.seal(&[6u8; NONCE_LEN], b"", b"m");
        assert_eq!(b.open(b"", &frame), Err(OpenError));
    }

    #[test]
    fn nonce_sequence_unique_and_namespaced() {
        let mut a = NonceSequence::new(1);
        let mut b = NonceSequence::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.next_nonce()));
            assert!(seen.insert(b.next_nonce()));
        }
        assert_eq!(a.issued(), 100);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let k = key();
        let frame = k.seal(&[9u8; NONCE_LEN], b"", b"AAAAAAAAAAAAAAAA");
        assert!(!frame.windows(16).any(|w| w == b"AAAAAAAAAAAAAAAA"));
    }
}
