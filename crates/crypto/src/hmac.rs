//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869), built on the from-scratch
//! SHA-256 in this crate. These are the MAC and key-derivation primitives
//! used for link security, token signing and the ledger in `swamp-security`.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per RFC 2104.
///
/// # Example
/// ```
/// use swamp_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(swamp_crypto::sha256::to_hex(&tag),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8");
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let hashed = Sha256::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut inner_key = [0u8; BLOCK_LEN];
        let mut outer_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key[i] = key_block[i] ^ 0x36;
            outer_key[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_key);
        HmacSha256 { inner, outer_key }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, message: &[u8]) {
        self.inner.update(message);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time equality for MACs and tokens.
///
/// A naive `==` on byte slices short-circuits at the first mismatch, leaking
/// how many prefix bytes matched — exactly the side channel a forging
/// adversary needs. This comparison always examines every byte.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// HKDF-Extract (RFC 5869 §2.2): derives a pseudorandom key from input
/// keying material and an optional salt.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869 §2.3): expands a pseudorandom key into `len` bytes
/// of output keying material bound to `info`.
///
/// # Panics
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(
        len <= 255 * DIGEST_LEN,
        "HKDF-Expand output too long: {len}"
    );
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finalize().to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        counter += 1;
    }
    out
}

/// One-call HKDF: extract then expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131]; // longer than block size -> hashed first
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"hello world"));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }

    // RFC 5869 test case 1.
    #[test]
    fn hkdf_rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn hkdf_rfc5869_case3() {
        let ikm = [0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn hkdf_lengths() {
        let okm = hkdf(b"s", b"ikm", b"info", 100);
        assert_eq!(okm.len(), 100);
        let okm0 = hkdf(b"s", b"ikm", b"info", 0);
        assert!(okm0.is_empty());
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn hkdf_expand_rejects_oversize() {
        let prk = hkdf_extract(b"s", b"ikm");
        let _ = hkdf_expand(&prk, b"", 255 * 32 + 1);
    }
}
