//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! The paper requires "state of the practice cryptography" for data
//! confidentiality on the sensor-to-platform links; ChaCha20 is the natural
//! software cipher for constrained devices (no AES hardware in the field).
//! Verified against the RFC 8439 test vectors.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// A ChaCha20 cipher instance bound to one key/nonce pair.
///
/// Encryption and decryption are the same XOR-keystream operation.
///
/// # Example
/// ```
/// use swamp_crypto::chacha20::ChaCha20;
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut ct = b"telemetry: vwc=0.23".to_vec();
/// ChaCha20::new(&key, &nonce).apply_keystream(0, &mut ct);
/// assert_ne!(&ct, b"telemetry: vwc=0.23");
/// ChaCha20::new(&key, &nonce).apply_keystream(0, &mut ct);
/// assert_eq!(&ct, b"telemetry: vwc=0.23");
/// ```
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaCha20 {{ key: <redacted> }}")
    }
}

impl ChaCha20 {
    /// Creates a cipher for the given 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// XORs the keystream (starting at block counter `counter`) into `data`,
    /// encrypting or decrypting in place.
    pub fn apply_keystream(&self, counter: u32, data: &mut [u8]) {
        let mut block_counter = counter;
        for chunk in data.chunks_mut(64) {
            let keystream = self.block(block_counter);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
            block_counter = block_counter.wrapping_add(1);
        }
    }

    /// Produces one 64-byte keystream block.
    fn block(&self, counter: u32) -> [u8; 64] {
        // "expand 32-byte k" constant.
        let mut state = [
            0x61707865u32,
            0x3320646e,
            0x79622d32,
            0x6b206574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter,
            self.nonce[0],
            self.nonce[1],
            self.nonce[2],
        ];
        let initial = state;

        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }

        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key = rfc_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&key, &nonce);
        let block = cipher.block(1);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key = rfc_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        ChaCha20::new(&key, &nonce).apply_keystream(1, &mut data);
        assert_eq!(
            to_hex(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0xAB; 32];
        let nonce = [0xCD; 12];
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut data = plain.clone();
            ChaCha20::new(&key, &nonce).apply_keystream(0, &mut data);
            if len > 8 {
                assert_ne!(data, plain, "len {len} should be scrambled");
            }
            ChaCha20::new(&key, &nonce).apply_keystream(0, &mut data);
            assert_eq!(data, plain, "len {len} roundtrip");
        }
    }

    #[test]
    fn counter_continuation_matches_whole() {
        // Encrypting 128 bytes at counter 0 equals encrypting two 64-byte
        // halves at counters 0 and 1.
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let plain = [0x55u8; 128];
        let mut whole = plain.to_vec();
        ChaCha20::new(&key, &nonce).apply_keystream(0, &mut whole);
        let mut a = plain[..64].to_vec();
        let mut b = plain[64..].to_vec();
        let c = ChaCha20::new(&key, &nonce);
        c.apply_keystream(0, &mut a);
        c.apply_keystream(1, &mut b);
        a.extend_from_slice(&b);
        assert_eq!(whole, a);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [3u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ChaCha20::new(&key, &[0u8; 12]).apply_keystream(0, &mut a);
        ChaCha20::new(&key, &[1u8; 12]).apply_keystream(0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_key() {
        let c = ChaCha20::new(&[9u8; 32], &[0u8; 12]);
        assert!(format!("{c:?}").contains("redacted"));
    }
}
