//! Per-device key management.
//!
//! The SWAMP platform provisions each field device with a device key derived
//! from a pilot master secret. The keystore is the platform-side registry:
//! it derives, rotates and revokes device keys, and hands out the
//! [`SecretKey`] used to open frames from a given device.

use std::collections::BTreeMap;

use crate::aead::SecretKey;

/// Epoch counter for key rotation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyEpoch(pub u32);

/// Result of looking up a device key.
#[derive(Clone, Debug)]
pub struct DeviceKey {
    /// The derived secret key for this device and epoch.
    pub key: SecretKey,
    /// The epoch the key belongs to.
    pub epoch: KeyEpoch,
}

/// Error when a device is unknown or revoked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeystoreError {
    /// The device id was never provisioned.
    UnknownDevice(String),
    /// The device was revoked (compromise or decommissioning).
    Revoked(String),
}

impl std::fmt::Display for KeystoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeystoreError::UnknownDevice(id) => write!(f, "unknown device {id:?}"),
            KeystoreError::Revoked(id) => write!(f, "device {id:?} is revoked"),
        }
    }
}
impl std::error::Error for KeystoreError {}

#[derive(Clone, Debug)]
struct DeviceRecord {
    epoch: KeyEpoch,
    revoked: bool,
}

/// Platform-side key registry, rooted in a pilot master secret.
///
/// # Example
/// ```
/// use swamp_crypto::keystore::Keystore;
/// let mut ks = Keystore::new(b"pilot-master-secret");
/// ks.provision("probe-07");
/// let dk = ks.device_key("probe-07").unwrap();
/// assert_eq!(dk.epoch.0, 0);
/// ```
#[derive(Clone, Debug)]
pub struct Keystore {
    master: Vec<u8>,
    devices: BTreeMap<String, DeviceRecord>,
}

impl Keystore {
    /// Creates a keystore rooted in `master_secret`.
    pub fn new(master_secret: &[u8]) -> Self {
        Keystore {
            master: master_secret.to_vec(),
            devices: BTreeMap::new(),
        }
    }

    /// Provisions a device at epoch 0. Re-provisioning an existing device is
    /// a no-op (its epoch and revocation state are preserved).
    pub fn provision(&mut self, device_id: &str) {
        self.devices
            .entry(device_id.to_owned())
            .or_insert(DeviceRecord {
                epoch: KeyEpoch(0),
                revoked: false,
            });
    }

    /// Number of provisioned (non-revoked) devices.
    pub fn active_devices(&self) -> usize {
        self.devices.values().filter(|d| !d.revoked).count()
    }

    /// Looks up the current key for a device.
    ///
    /// # Errors
    /// [`KeystoreError::UnknownDevice`] if never provisioned,
    /// [`KeystoreError::Revoked`] if revoked.
    pub fn device_key(&self, device_id: &str) -> Result<DeviceKey, KeystoreError> {
        let rec = self
            .devices
            .get(device_id)
            .ok_or_else(|| KeystoreError::UnknownDevice(device_id.to_owned()))?;
        if rec.revoked {
            return Err(KeystoreError::Revoked(device_id.to_owned()));
        }
        Ok(DeviceKey {
            key: self.derive(device_id, rec.epoch),
            epoch: rec.epoch,
        })
    }

    /// Derives the key a device itself would hold for a given epoch; used by
    /// the simulator to give the device side its copy.
    pub fn derive(&self, device_id: &str, epoch: KeyEpoch) -> SecretKey {
        let label = format!("device:{device_id}:epoch:{}", epoch.0);
        SecretKey::derive(&self.master, &label)
    }

    /// Rotates a device to the next epoch, returning the new epoch.
    ///
    /// # Errors
    /// Same conditions as [`Keystore::device_key`].
    pub fn rotate(&mut self, device_id: &str) -> Result<KeyEpoch, KeystoreError> {
        let rec = self
            .devices
            .get_mut(device_id)
            .ok_or_else(|| KeystoreError::UnknownDevice(device_id.to_owned()))?;
        if rec.revoked {
            return Err(KeystoreError::Revoked(device_id.to_owned()));
        }
        rec.epoch = KeyEpoch(rec.epoch.0 + 1);
        Ok(rec.epoch)
    }

    /// Revokes a device (e.g. after compromise detection). Idempotent.
    pub fn revoke(&mut self, device_id: &str) {
        if let Some(rec) = self.devices.get_mut(device_id) {
            rec.revoked = true;
        }
    }

    /// Whether the device is currently revoked.
    pub fn is_revoked(&self, device_id: &str) -> bool {
        self.devices.get(device_id).is_some_and(|r| r.revoked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aead::NonceSequence;

    #[test]
    fn provision_and_lookup() {
        let mut ks = Keystore::new(b"m");
        ks.provision("d1");
        let dk = ks.device_key("d1").unwrap();
        assert_eq!(dk.epoch, KeyEpoch(0));
        assert_eq!(ks.active_devices(), 1);
    }

    #[test]
    fn unknown_device_errors() {
        let ks = Keystore::new(b"m");
        assert!(matches!(
            ks.device_key("ghost"),
            Err(KeystoreError::UnknownDevice(id)) if id == "ghost"
        ));
    }

    #[test]
    fn platform_and_device_keys_interoperate() {
        let mut ks = Keystore::new(b"m");
        ks.provision("probe");
        let platform_side = ks.device_key("probe").unwrap();
        let device_side = ks.derive("probe", KeyEpoch(0));
        let mut nonces = NonceSequence::new(1);
        let frame = device_side.seal(&nonces.next_nonce(), b"", b"vwc=0.2");
        assert_eq!(platform_side.key.open(b"", &frame).unwrap(), b"vwc=0.2");
    }

    #[test]
    fn rotation_invalidates_old_epoch() {
        let mut ks = Keystore::new(b"m");
        ks.provision("d");
        let old = ks.device_key("d").unwrap();
        assert_eq!(ks.rotate("d").unwrap(), KeyEpoch(1));
        let new = ks.device_key("d").unwrap();
        assert_eq!(new.epoch, KeyEpoch(1));
        // A frame sealed under the old key no longer opens under the new one.
        let frame = old.key.seal(&[0u8; 12], b"", b"stale");
        assert!(new.key.open(b"", &frame).is_err());
    }

    #[test]
    fn revocation_blocks_access() {
        let mut ks = Keystore::new(b"m");
        ks.provision("d");
        ks.revoke("d");
        assert!(ks.is_revoked("d"));
        assert!(matches!(
            ks.device_key("d"),
            Err(KeystoreError::Revoked(id)) if id == "d"
        ));
        assert_eq!(ks.rotate("d"), Err(KeystoreError::Revoked("d".into())));
        assert_eq!(ks.active_devices(), 0);
        // Idempotent.
        ks.revoke("d");
        assert!(ks.is_revoked("d"));
    }

    #[test]
    fn reprovision_preserves_state() {
        let mut ks = Keystore::new(b"m");
        ks.provision("d");
        ks.rotate("d").unwrap();
        ks.provision("d"); // no-op
        assert_eq!(ks.device_key("d").unwrap().epoch, KeyEpoch(1));
    }

    #[test]
    fn different_devices_different_keys() {
        let mut ks = Keystore::new(b"m");
        ks.provision("a");
        ks.provision("b");
        let ka = ks.device_key("a").unwrap();
        let kb = ks.device_key("b").unwrap();
        let frame = ka.key.seal(&[0u8; 12], b"", b"m");
        assert!(kb.key.open(b"", &frame).is_err());
    }

    #[test]
    fn different_masters_different_keys() {
        let mut k1 = Keystore::new(b"m1");
        let mut k2 = Keystore::new(b"m2");
        k1.provision("d");
        k2.provision("d");
        let frame = k1.device_key("d").unwrap().key.seal(&[0u8; 12], b"", b"m");
        assert!(k2.device_key("d").unwrap().key.open(b"", &frame).is_err());
    }

    #[test]
    fn revoke_unknown_is_noop() {
        let mut ks = Keystore::new(b"m");
        ks.revoke("ghost");
        assert!(!ks.is_revoked("ghost"));
    }
}
