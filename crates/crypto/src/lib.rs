//! # swamp-crypto — from-scratch cryptographic substrate for SWAMP
//!
//! The paper requires that "the confidentiality of the data must be provided
//! using state of the practice cryptography" and that wireless links use
//! existing security protocols. No cryptography crate is in the approved
//! dependency set, so SWAMP implements the needed primitives from scratch,
//! each verified against its RFC/FIPS test vectors:
//!
//! - [`sha256`] — SHA-256 (FIPS 180-4).
//! - [`hmac`] — HMAC-SHA256 (RFC 2104), HKDF (RFC 5869), constant-time
//!   comparison.
//! - [`chacha20`] — the ChaCha20 stream cipher (RFC 8439).
//! - [`aead`] — authenticated encryption (encrypt-then-MAC composition) and
//!   nonce management: what device links actually use.
//! - [`keystore`] — per-device key derivation, rotation and revocation.
//!
//! **Scope note:** these implementations are written for clarity and
//! correctness in a research simulator. They are *not* hardened against
//! hardware side channels and should not be lifted into unrelated
//! production systems.
//!
//! ## Example
//!
//! ```
//! use swamp_crypto::aead::{NonceSequence, SecretKey};
//!
//! let key = SecretKey::derive(b"pilot master secret", "link:probe-07");
//! let mut nonces = NonceSequence::new(7);
//!
//! let frame = key.seal(&nonces.next_nonce(), b"probe-07", b"vwc=0.23");
//! let plain = key.open(b"probe-07", &frame)?;
//! assert_eq!(plain, b"vwc=0.23");
//! # Ok::<(), swamp_crypto::aead::OpenError>(())
//! ```

pub mod aead;
pub mod chacha20;
pub mod hmac;
pub mod keystore;
pub mod sha256;

pub use aead::{NonceSequence, OpenError, SecretKey};
pub use keystore::{Keystore, KeystoreError};
pub use sha256::Sha256;
