//! SWAMP benchmark support crate (see benches/).
