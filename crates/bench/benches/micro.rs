//! Substrate microbenchmarks: the primitives whose per-operation cost the
//! platform numbers (E7/E8/E9/E11) decompose into — hashing, AEAD,
//! JSON/NGSI codec, broker updates, token validation and ledger verify.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use swamp_codec::json::Json;
use swamp_codec::ngsi::Entity;
use swamp_core::broker::{ContextBroker, SubscriptionFilter};
use swamp_crypto::aead::{NonceSequence, SecretKey};
use swamp_crypto::sha256::Sha256;
use swamp_security::identity::IdentityProvider;
use swamp_security::ledger::{Ledger, LifecycleEvent, LifecycleKind};
use swamp_sim::{SimDuration, SimTime};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(Sha256::digest(black_box(&data))))
        });
    }
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = SecretKey::derive(b"bench", "micro");
    for size in [64usize, 1024] {
        let data = vec![0x55u8; size];
        let mut nonces = NonceSequence::new(1);
        let nonce = nonces.next_nonce();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("seal_{size}B"), |b| {
            b.iter(|| black_box(key.seal(black_box(&nonce), b"aad", black_box(&data))))
        });
        let sealed = key.seal(&nonce, b"aad", &data);
        group.bench_function(format!("open_{size}B"), |b| {
            b.iter(|| black_box(key.open(b"aad", black_box(&sealed)).unwrap()))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let mut entity = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
    entity.set("moisture_vwc", 0.2431);
    entity.set("temperature_c", 19.5);
    entity.set("battery_fraction", 0.91);
    entity.set("seq", 12345.0);
    let wire = entity.to_json().to_compact_string();
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("entity_encode", |b| {
        b.iter(|| black_box(black_box(&entity).to_json().to_compact_string()))
    });
    group.bench_function("entity_decode", |b| {
        b.iter(|| {
            let json = Json::parse(black_box(&wire)).unwrap();
            black_box(Entity::from_json(&json).unwrap())
        })
    });
    group.finish();
}

fn bench_broker(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_broker");
    group.bench_function("upsert_with_100_subscriptions", |b| {
        let mut broker = ContextBroker::new();
        for i in 0..100 {
            broker.subscribe(SubscriptionFilter {
                entity_type: Some("SoilProbe".into()),
                id_prefix: Some(format!("urn:swamp:farm{}:", i % 10)),
                watched_attrs: vec![],
            });
        }
        let mut v = 0.0f64;
        b.iter(|| {
            v += 0.001;
            let mut e = Entity::new("urn:swamp:farm3:probe", "SoilProbe");
            e.set("moisture_vwc", v);
            black_box(broker.upsert(SimTime::ZERO, e));
        })
    });
    group.finish();
}

fn bench_identity(c: &mut Criterion) {
    let mut group = c.benchmark_group("identity");
    let mut idm = IdentityProvider::new(b"bench", SimDuration::from_hours(1));
    idm.register_client("gw", "secret", &["context:write"]);
    let token = idm
        .client_credentials_grant(SimTime::ZERO, "gw", "secret", &["context:write"])
        .unwrap();
    group.bench_function("validate_token", |b| {
        b.iter(|| black_box(idm.validate(SimTime::ZERO, black_box(&token)).unwrap()))
    });
    group.bench_function("client_credentials_grant", |b| {
        b.iter(|| {
            black_box(
                idm.client_credentials_grant(
                    SimTime::ZERO,
                    "gw",
                    "secret",
                    &["context:write"],
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_ledger(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger");
    group.sample_size(20);
    let mut ledger = Ledger::new();
    ledger.register_authority("a", b"key");
    for block in 0..100u64 {
        let events = (0..10)
            .map(|i| LifecycleEvent {
                device_id: format!("dev-{block}-{i}"),
                kind: LifecycleKind::Provisioned {
                    owner: "owner:bench".into(),
                },
                at: SimTime::from_secs(block),
            })
            .collect();
        ledger.append("a", SimTime::from_secs(block), events).unwrap();
    }
    group.bench_function("verify_100_blocks_1000_events", |b| {
        b.iter(|| {
            ledger.verify().unwrap();
            black_box(())
        })
    });
    group.bench_function("device_state_replay", |b| {
        b.iter(|| black_box(ledger.device_state(black_box("dev-50-5"))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_aead,
    bench_codec,
    bench_broker,
    bench_identity,
    bench_ledger
);
criterion_main!(benches);
