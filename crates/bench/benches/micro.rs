//! Substrate microbenchmarks: the primitives whose per-operation cost the
//! platform numbers (E7/E8/E9/E11) decompose into — hashing, AEAD,
//! JSON/NGSI codec, broker updates, token validation and ledger verify.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use swamp_codec::json::Json;
use swamp_codec::ngsi::Entity;
use swamp_core::broker::{ContextBroker, SubscriptionFilter};
use swamp_core::history::HistoryStore;
use swamp_crypto::aead::{NonceSequence, SecretKey};
use swamp_crypto::sha256::Sha256;
use swamp_security::identity::IdentityProvider;
use swamp_security::ledger::{Ledger, LifecycleEvent, LifecycleKind};
use swamp_sim::{SimDuration, SimTime};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(Sha256::digest(black_box(&data))))
        });
    }
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = SecretKey::derive(b"bench", "micro");
    for size in [64usize, 1024] {
        let data = vec![0x55u8; size];
        let mut nonces = NonceSequence::new(1);
        let nonce = nonces.next_nonce();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("seal_{size}B"), |b| {
            b.iter(|| black_box(key.seal(black_box(&nonce), b"aad", black_box(&data))))
        });
        let sealed = key.seal(&nonce, b"aad", &data);
        group.bench_function(format!("open_{size}B"), |b| {
            b.iter(|| black_box(key.open(b"aad", black_box(&sealed)).unwrap()))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let mut entity = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
    entity.set("moisture_vwc", 0.2431);
    entity.set("temperature_c", 19.5);
    entity.set("battery_fraction", 0.91);
    entity.set("seq", 12345.0);
    let wire = entity.to_json().to_compact_string();
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("entity_encode", |b| {
        b.iter(|| black_box(black_box(&entity).to_json().to_compact_string()))
    });
    group.bench_function("entity_decode", |b| {
        b.iter(|| {
            let json = Json::parse(black_box(&wire)).unwrap();
            black_box(Entity::from_json(&json).unwrap())
        })
    });
    group.finish();
}

fn bench_broker(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_broker");
    group.bench_function("upsert_with_100_subscriptions", |b| {
        let mut broker = ContextBroker::new();
        for i in 0..100 {
            broker.subscribe(SubscriptionFilter {
                entity_type: Some("SoilProbe".into()),
                id_prefix: Some(format!("urn:swamp:farm{}:", i % 10)),
                watched_attrs: vec![],
            });
        }
        let mut v = 0.0f64;
        b.iter(|| {
            v += 0.001;
            let mut e = Entity::new("urn:swamp:farm3:probe", "SoilProbe");
            e.set("moisture_vwc", v);
            black_box(broker.upsert(SimTime::ZERO, e));
        })
    });
    group.finish();
}

/// Zero-copy fan-out: one upsert delivered to N matching subscribers.
/// All N notifications share one `Arc<Entity>` snapshot, so per-iteration
/// cost should grow by one cheap Arc clone per extra subscriber, not one
/// entity deep-clone.
fn bench_broker_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_fanout");
    for subs in [1usize, 16, 256] {
        group.throughput(Throughput::Elements(subs as u64));
        group.bench_function(format!("upsert_drain_{subs}_subscribers"), |b| {
            let mut broker = ContextBroker::new();
            let subscription_ids: Vec<_> = (0..subs)
                .map(|_| {
                    broker.subscribe(SubscriptionFilter {
                        entity_type: Some("SoilProbe".into()),
                        id_prefix: None,
                        watched_attrs: vec![],
                    })
                })
                .collect();
            let mut drained = Vec::new();
            let mut v = 0.0f64;
            b.iter(|| {
                v += 0.001;
                let mut e = Entity::new("urn:swamp:farm1:probe", "SoilProbe");
                e.set("moisture_vwc", v);
                broker.upsert(SimTime::ZERO, e);
                for id in &subscription_ids {
                    broker.drain_notifications_into(*id, &mut drained).unwrap();
                }
                black_box(drained.len());
                drained.clear();
            })
        });
    }
    group.finish();
}

/// Batched ingestion against the routing index: 1000 mostly-unmatched
/// subscriptions, 100-update batches. The index means each upsert only
/// tests the subscriptions bucketed under its entity type.
fn bench_upsert_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_upsert_batch");
    const BATCH: usize = 100;
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("batch_100_with_1000_subscriptions", |b| {
        let mut broker = ContextBroker::new();
        let mut service_sub = None;
        for i in 0..1000 {
            // 999 subscriptions watch other entity types and are never
            // candidates; one watches SoilProbe and matches every update.
            let sub = broker.subscribe(SubscriptionFilter {
                entity_type: Some(if i == 0 {
                    "SoilProbe".into()
                } else {
                    format!("OtherKind{i}")
                }),
                id_prefix: None,
                watched_attrs: vec![],
            });
            if i == 0 {
                service_sub = Some(sub);
            }
        }
        let service_sub = service_sub.unwrap();
        let mut drained = Vec::new();
        let mut v = 0.0f64;
        b.iter(|| {
            v += 0.001;
            let batch = (0..BATCH).map(|i| {
                let mut e = Entity::new(format!("urn:swamp:farm1:probe-{i}"), "SoilProbe");
                e.set("moisture_vwc", v);
                e
            });
            black_box(broker.upsert_batch(SimTime::ZERO, batch));
            broker
                .drain_notifications_into(service_sub, &mut drained)
                .unwrap();
            black_box(drained.len());
            drained.clear();
        })
    });
    group.finish();
}

/// Steady-state history append: the series key is interned after the first
/// append, so the hot loop does a borrowed-key lookup plus a Vec push —
/// no String allocation per sample.
fn bench_history_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("history");
    group.bench_function("append_steady_state", |b| {
        let mut store = HistoryStore::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            store.append(
                black_box("urn:swamp:farm1:probe-1"),
                black_box("moisture_vwc"),
                SimTime::from_millis(t),
                0.25,
            );
        });
        black_box(store.len());
    });
    group.bench_function("append_via_interned_id", |b| {
        let mut store = HistoryStore::new();
        let id = store.intern("urn:swamp:farm1:probe-1", "moisture_vwc");
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            store.append_to(black_box(id), SimTime::from_millis(t), 0.25);
        });
        black_box(store.len());
    });
    group.finish();
}

fn bench_identity(c: &mut Criterion) {
    let mut group = c.benchmark_group("identity");
    let mut idm = IdentityProvider::new(b"bench", SimDuration::from_hours(1));
    idm.register_client("gw", "secret", &["context:write"]);
    let token = idm
        .client_credentials_grant(SimTime::ZERO, "gw", "secret", &["context:write"])
        .unwrap();
    group.bench_function("validate_token", |b| {
        b.iter(|| black_box(idm.validate(SimTime::ZERO, black_box(&token)).unwrap()))
    });
    group.bench_function("client_credentials_grant", |b| {
        b.iter(|| {
            black_box(
                idm.client_credentials_grant(SimTime::ZERO, "gw", "secret", &["context:write"])
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_ledger(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger");
    group.sample_size(20);
    let mut ledger = Ledger::new();
    ledger.register_authority("a", b"key");
    for block in 0..100u64 {
        let events = (0..10)
            .map(|i| LifecycleEvent {
                device_id: format!("dev-{block}-{i}"),
                kind: LifecycleKind::Provisioned {
                    owner: "owner:bench".into(),
                },
                at: SimTime::from_secs(block),
            })
            .collect();
        ledger
            .append("a", SimTime::from_secs(block), events)
            .unwrap();
    }
    group.bench_function("verify_100_blocks_1000_events", |b| {
        b.iter(|| {
            ledger.verify().unwrap();
            black_box(())
        })
    });
    group.bench_function("device_state_replay", |b| {
        b.iter(|| black_box(ledger.device_state(black_box("dev-50-5"))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_aead,
    bench_codec,
    bench_broker,
    bench_broker_fanout,
    bench_upsert_batch,
    bench_history_append,
    bench_identity,
    bench_ledger
);
criterion_main!(benches);
