//! Bench target for E5: fog availability under outages (see EXPERIMENTS.md). Regenerates the table and
//! measures the cost of producing it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_fog");
    group.sample_size(10);
    group.bench_function("run", |b| {
        b.iter(|| {
            black_box(swamp_pilots::experiments::e5_fog_availability(black_box(
                42,
            )))
        })
    });
    group.finish();

    // Print the regenerated table once so `cargo bench` output documents it.
    let result = swamp_pilots::experiments::e5_fog_availability(42);
    println!("{}", result.report());
}

criterion_group!(benches, bench);
criterion_main!(benches);
