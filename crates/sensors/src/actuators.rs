//! Actuator models: valves, pumps and the center-pivot irrigation machine.
//!
//! These are the devices the paper worries about an attacker seizing: "if an
//! attacker takes control of the actuators, the irrigation and water
//! distribution is compromised". The models expose exactly the command
//! surface (open/close, start/stop, sector speed plan) that the platform —
//! or an attacker who defeats authorization — drives.

use swamp_sim::{SimDuration, SimTime};

use crate::device::DeviceId;

/// A solenoid irrigation valve with actuation latency.
#[derive(Clone, Debug)]
pub struct Valve {
    id: DeviceId,
    open: bool,
    /// Commanded state that takes effect at `transition_at`.
    pending: Option<(bool, SimTime)>,
    actuation_delay: SimDuration,
    transitions: u64,
}

impl Valve {
    /// Creates a closed valve with a 2-second actuation delay.
    pub fn new(id: impl Into<DeviceId>) -> Self {
        Valve {
            id: id.into(),
            open: false,
            pending: None,
            actuation_delay: SimDuration::from_secs(2),
            transitions: 0,
        }
    }

    /// The valve's device id.
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// Commands the valve at `now`; the state changes after the actuation
    /// delay. Re-commanding supersedes a pending transition.
    pub fn command(&mut self, now: SimTime, open: bool) {
        if open != self.open {
            self.pending = Some((open, now + self.actuation_delay));
        } else {
            self.pending = None;
        }
    }

    /// Applies any due transition and reports the state at `now`.
    pub fn state_at(&mut self, now: SimTime) -> bool {
        if let Some((target, at)) = self.pending {
            if now >= at {
                self.open = target;
                self.pending = None;
                self.transitions += 1;
            }
        }
        self.open
    }

    /// Lifetime transition count (wear indicator, also an anomaly signal:
    /// an attacker toggling a valve shows up here).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

/// An irrigation pump with flow capacity and electrical power draw.
#[derive(Clone, Debug)]
pub struct Pump {
    id: DeviceId,
    running: bool,
    flow_m3_per_h: f64,
    power_kw: f64,
    energy_kwh: f64,
    last_change: SimTime,
}

impl Pump {
    /// Creates a stopped pump.
    ///
    /// # Panics
    /// Panics if flow or power are not positive.
    pub fn new(id: impl Into<DeviceId>, flow_m3_per_h: f64, power_kw: f64) -> Self {
        assert!(flow_m3_per_h > 0.0 && power_kw > 0.0);
        Pump {
            id: id.into(),
            running: false,
            flow_m3_per_h,
            power_kw,
            energy_kwh: 0.0,
            last_change: SimTime::ZERO,
        }
    }

    /// The pump's device id.
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// Whether the pump is currently running.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Rated flow while running, m³/h.
    pub fn flow_m3_per_h(&self) -> f64 {
        self.flow_m3_per_h
    }

    /// Starts or stops the pump at `now`, accruing energy for the elapsed
    /// running interval.
    pub fn set_running(&mut self, now: SimTime, running: bool) {
        if self.running {
            let dt = now.saturating_duration_since(self.last_change);
            self.energy_kwh += self.power_kw * dt.as_hours_f64();
        }
        self.running = running;
        self.last_change = now;
    }

    /// Total electrical energy consumed, kWh (including the current run up
    /// to `now`).
    pub fn energy_kwh(&self, now: SimTime) -> f64 {
        let mut e = self.energy_kwh;
        if self.running {
            e += self.power_kw
                * now
                    .saturating_duration_since(self.last_change)
                    .as_hours_f64();
        }
        e
    }

    /// Volume delivered over an interval while running, m³.
    pub fn volume_over(&self, duration: SimDuration) -> f64 {
        if self.running {
            self.flow_m3_per_h * duration.as_hours_f64()
        } else {
            0.0
        }
    }
}

/// A center-pivot irrigation machine with per-sector variable-rate control.
///
/// The pivot arm sweeps the circle; its angular speed sets the water depth
/// applied (slower ⇒ deeper). A VRI plan assigns each angular sector a speed
/// fraction; depth scales inversely. This is the mechanism behind the
/// MATOPIBA pilot (experiment E1).
///
/// # Example
/// ```
/// use swamp_sensors::actuators::CenterPivot;
/// use swamp_sim::{SimDuration, SimTime};
/// let mut pivot = CenterPivot::new("pivot-1", 8, 12.0, 20.0);
/// pivot.set_sector_speeds(vec![1.0; 8]).unwrap();
/// pivot.start(SimTime::ZERO);
/// let applied = pivot.advance(SimTime::ZERO + SimDuration::from_hours(6));
/// assert!(applied.iter().sum::<f64>() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct CenterPivot {
    id: DeviceId,
    sectors: usize,
    /// Hours for a full revolution at 100% speed.
    base_revolution_h: f64,
    /// Water depth applied at 100% speed, mm.
    base_depth_mm: f64,
    /// Per-sector speed fraction in (0, 1].
    sector_speeds: Vec<f64>,
    angle_deg: f64,
    running: bool,
    last_advance: SimTime,
    total_applied_mm: Vec<f64>,
}

/// Error from an invalid VRI speed plan.
#[derive(Clone, Debug, PartialEq)]
pub struct InvalidSpeedPlan(pub String);

impl std::fmt::Display for InvalidSpeedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid VRI speed plan: {}", self.0)
    }
}
impl std::error::Error for InvalidSpeedPlan {}

impl CenterPivot {
    /// Creates a stopped pivot at angle 0.
    ///
    /// # Panics
    /// Panics if `sectors == 0` or the physical parameters are not positive.
    pub fn new(
        id: impl Into<DeviceId>,
        sectors: usize,
        base_revolution_h: f64,
        base_depth_mm: f64,
    ) -> Self {
        assert!(sectors > 0, "need at least one sector");
        assert!(base_revolution_h > 0.0 && base_depth_mm > 0.0);
        CenterPivot {
            id: id.into(),
            sectors,
            base_revolution_h,
            base_depth_mm,
            sector_speeds: vec![1.0; sectors],
            angle_deg: 0.0,
            running: false,
            last_advance: SimTime::ZERO,
            total_applied_mm: vec![0.0; sectors],
        }
    }

    /// The pivot's device id.
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// Number of VRI sectors.
    pub fn sectors(&self) -> usize {
        self.sectors
    }

    /// Current boom angle, degrees `[0, 360)`.
    pub fn angle_deg(&self) -> f64 {
        self.angle_deg
    }

    /// Whether the machine is moving/watering.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Water depth applied per pass in a sector at its configured speed, mm.
    pub fn sector_depth_mm(&self, sector: usize) -> f64 {
        self.base_depth_mm / self.sector_speeds[sector]
    }

    /// Installs a VRI plan: one speed fraction per sector.
    ///
    /// # Errors
    /// Rejects plans with the wrong sector count or speeds outside
    /// `(0.05, 1.0]` (a stopped sector would flood).
    pub fn set_sector_speeds(&mut self, speeds: Vec<f64>) -> Result<(), InvalidSpeedPlan> {
        if speeds.len() != self.sectors {
            return Err(InvalidSpeedPlan(format!(
                "expected {} sectors, got {}",
                self.sectors,
                speeds.len()
            )));
        }
        if let Some(bad) = speeds.iter().find(|s| !(0.05..=1.0).contains(*s)) {
            return Err(InvalidSpeedPlan(format!("speed {bad} outside (0.05, 1.0]")));
        }
        self.sector_speeds = speeds;
        Ok(())
    }

    /// Starts the machine at `now`.
    pub fn start(&mut self, now: SimTime) {
        self.advance(now);
        self.running = true;
        self.last_advance = now;
    }

    /// Stops the machine at `now` (applying water for the elapsed interval
    /// first).
    pub fn stop(&mut self, now: SimTime) -> Vec<f64> {
        let applied = self.advance(now);
        self.running = false;
        applied
    }

    /// Advances the simulation to `now`, returning the water depth (mm)
    /// applied to each sector during the interval.
    pub fn advance(&mut self, now: SimTime) -> Vec<f64> {
        let mut applied = vec![0.0; self.sectors];
        if !self.running || now <= self.last_advance {
            self.last_advance = now.max(self.last_advance);
            return applied;
        }
        let mut remaining_h = now.duration_since(self.last_advance).as_hours_f64();
        self.last_advance = now;
        let sector_span = 360.0 / self.sectors as f64;
        let base_deg_per_h = 360.0 / self.base_revolution_h;

        // Walk sector boundaries, applying depth ∝ time spent per sector.
        let mut iterations = 0u32;
        while remaining_h > 1e-12 {
            iterations += 1;
            assert!(
                iterations < 10_000_000,
                "pivot advance stalled: angle={} remaining_h={} sectors={}",
                self.angle_deg,
                remaining_h,
                self.sectors
            );
            let sector = ((self.angle_deg / sector_span) as usize) % self.sectors;
            let speed = self.sector_speeds[sector];
            let deg_per_h = base_deg_per_h * speed;
            let next_boundary = (self.angle_deg / sector_span).floor() * sector_span + sector_span;
            let deg_to_boundary = next_boundary - self.angle_deg;
            // Float rounding can leave the angle a hair short of a boundary
            // (e.g. 3·(360/7) computed as 154.28571428571428 while
            // angle/span floors to 2): the residual sweep underflows and the
            // loop would stall. Nudge strictly past the boundary instead —
            // the 1e-9° skip is ~3e-12 of a revolution, far below any
            // physical meaning.
            if deg_to_boundary < 1e-9 {
                self.angle_deg = (next_boundary + 1e-9) % 360.0;
                continue;
            }
            let h_to_boundary = deg_to_boundary / deg_per_h;
            let h = h_to_boundary.min(remaining_h);
            let swept_deg = deg_per_h * h;

            // Depth applied to the swept arc: base depth / speed, prorated
            // by the fraction of the sector swept.
            let frac_of_sector = swept_deg / sector_span;
            let depth = self.base_depth_mm / speed * frac_of_sector;
            applied[sector] += depth;
            self.total_applied_mm[sector] += depth;

            self.angle_deg = (self.angle_deg + swept_deg) % 360.0;
            remaining_h -= h;
        }
        applied
    }

    /// Lifetime applied depth per sector, mm.
    pub fn total_applied_mm(&self) -> &[f64] {
        &self.total_applied_mm
    }

    /// Hours for a full revolution under the current plan.
    pub fn revolution_hours(&self) -> f64 {
        let sector_span_frac = 1.0 / self.sectors as f64;
        self.sector_speeds
            .iter()
            .map(|s| self.base_revolution_h * sector_span_frac / s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn valve_actuates_after_delay() {
        let mut v = Valve::new("v1");
        assert!(!v.state_at(SimTime::ZERO));
        v.command(SimTime::ZERO, true);
        assert!(!v.state_at(SimTime::ZERO + SimDuration::from_secs(1)));
        assert!(v.state_at(SimTime::ZERO + SimDuration::from_secs(2)));
        assert_eq!(v.transitions(), 1);
    }

    #[test]
    fn valve_redundant_command_is_noop() {
        let mut v = Valve::new("v1");
        v.command(SimTime::ZERO, false); // already closed
        assert!(!v.state_at(t(1)));
        assert_eq!(v.transitions(), 0);
    }

    #[test]
    fn valve_supersede_pending() {
        let mut v = Valve::new("v1");
        v.command(SimTime::ZERO, true);
        v.command(SimTime::ZERO + SimDuration::from_secs(1), false); // cancel
        assert!(!v.state_at(t(1)));
        assert_eq!(v.transitions(), 0);
    }

    #[test]
    fn pump_energy_accrues_while_running() {
        let mut p = Pump::new("pump", 100.0, 30.0);
        p.set_running(SimTime::ZERO, true);
        assert!((p.energy_kwh(t(2)) - 60.0).abs() < 1e-9);
        p.set_running(t(2), false);
        assert!((p.energy_kwh(t(10)) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn pump_volume_only_while_running() {
        let mut p = Pump::new("pump", 50.0, 10.0);
        assert_eq!(p.volume_over(SimDuration::from_hours(1)), 0.0);
        p.set_running(SimTime::ZERO, true);
        assert!((p.volume_over(SimDuration::from_hours(2)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pivot_uniform_pass_applies_base_depth() {
        let mut pivot = CenterPivot::new("p", 4, 12.0, 20.0);
        pivot.start(SimTime::ZERO);
        let applied = pivot.advance(t(12)); // one full revolution
        for (i, d) in applied.iter().enumerate() {
            assert!((d - 20.0).abs() < 1e-6, "sector {i} depth {d}");
        }
        assert!(pivot.angle_deg().abs() < 1e-6);
    }

    #[test]
    fn vri_slow_sector_gets_more_water() {
        let mut pivot = CenterPivot::new("p", 4, 12.0, 20.0);
        pivot.set_sector_speeds(vec![1.0, 0.5, 1.0, 1.0]).unwrap();
        pivot.start(SimTime::ZERO);
        // Revolution now takes 3+6+3+3 = 15 h.
        assert!((pivot.revolution_hours() - 15.0).abs() < 1e-9);
        let applied = pivot.advance(t(15));
        assert!((applied[0] - 20.0).abs() < 1e-6);
        assert!(
            (applied[1] - 40.0).abs() < 1e-6,
            "slow sector doubles depth"
        );
        assert!((applied[2] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn partial_sweep_prorates_depth() {
        let mut pivot = CenterPivot::new("p", 4, 12.0, 20.0);
        pivot.start(SimTime::ZERO);
        // 1.5 h = half of the first 3-h sector.
        let applied = pivot.advance(SimTime::ZERO + SimDuration::from_mins(90));
        assert!((applied[0] - 10.0).abs() < 1e-6);
        assert_eq!(applied[1], 0.0);
        assert!((pivot.angle_deg() - 45.0).abs() < 1e-6);
    }

    #[test]
    fn stopped_pivot_applies_nothing() {
        let mut pivot = CenterPivot::new("p", 4, 12.0, 20.0);
        let applied = pivot.advance(t(10));
        assert!(applied.iter().all(|&d| d == 0.0));
        pivot.start(t(10));
        pivot.stop(t(16));
        let applied = pivot.advance(t(30));
        assert!(applied.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn speed_plan_validation() {
        let mut pivot = CenterPivot::new("p", 4, 12.0, 20.0);
        assert!(pivot.set_sector_speeds(vec![1.0; 3]).is_err());
        assert!(pivot.set_sector_speeds(vec![0.0, 1.0, 1.0, 1.0]).is_err());
        assert!(pivot.set_sector_speeds(vec![1.5, 1.0, 1.0, 1.0]).is_err());
        assert!(pivot.set_sector_speeds(vec![0.5; 4]).is_ok());
    }

    #[test]
    fn totals_accumulate_across_passes() {
        let mut pivot = CenterPivot::new("p", 2, 10.0, 10.0);
        pivot.start(SimTime::ZERO);
        pivot.advance(t(20)); // two revolutions
        for d in pivot.total_applied_mm() {
            assert!((d - 20.0).abs() < 1e-6);
        }
    }
}
