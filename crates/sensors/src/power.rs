//! Battery/energy model for field devices.
//!
//! The paper: "security mechanisms have to be energy efficient, since many
//! IoT devices are limited in power". The battery model charges every
//! action — sampling, radio transmission, crypto — so experiments can show
//! the energy cost of security features and so devices genuinely die in
//! long availability scenarios.

use swamp_sim::{SimDuration, SimTime};

/// Energy store of a battery-powered device, tracked in millijoules.
#[derive(Clone, Debug, PartialEq)]
pub struct Battery {
    capacity_mj: f64,
    remaining_mj: f64,
    idle_drain_mw: f64,
    last_update: SimTime,
    /// Optional solar recharge rate while the sun is up (mW).
    solar_mw: f64,
}

impl Battery {
    /// Creates a full battery.
    ///
    /// # Panics
    /// Panics if capacity or drains are negative/zero where required.
    pub fn new(capacity_mj: f64, idle_drain_mw: f64) -> Self {
        assert!(capacity_mj > 0.0, "capacity must be positive");
        assert!(idle_drain_mw >= 0.0, "idle drain must be non-negative");
        Battery {
            capacity_mj,
            remaining_mj: capacity_mj,
            idle_drain_mw,
            last_update: SimTime::ZERO,
            solar_mw: 0.0,
        }
    }

    /// Typical field soil-probe battery: 2×AA lithium ≈ 18 kJ usable, with
    /// ~0.05 mW sleep drain.
    pub fn field_probe() -> Self {
        Battery::new(18_000_000.0, 0.05)
    }

    /// Adds a solar panel that recharges at `mw` during daylight (builder).
    pub fn with_solar(mut self, mw: f64) -> Self {
        assert!(mw >= 0.0);
        self.solar_mw = mw;
        self
    }

    /// Remaining charge fraction, `[0,1]`.
    pub fn fraction(&self) -> f64 {
        (self.remaining_mj / self.capacity_mj).clamp(0.0, 1.0)
    }

    /// Whether the battery is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining_mj <= 0.0
    }

    /// Advances idle drain (and solar recharge) to `now`.
    ///
    /// Daylight is approximated as the 06:00–18:00 half of each virtual day.
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let dt = now.duration_since(self.last_update);
        let drain = self.idle_drain_mw * dt.as_secs_f64(); // mW·s = mJ
                                                           // Approximate daylight share of the elapsed interval.
        let daylight_fraction = if dt >= SimDuration::from_days(1) {
            0.5
        } else {
            let h = now.hour_of_day();
            if (6..18).contains(&h) {
                1.0
            } else {
                0.0
            }
        };
        let recharge = self.solar_mw * dt.as_secs_f64() * daylight_fraction;
        self.remaining_mj = (self.remaining_mj - drain + recharge).clamp(0.0, self.capacity_mj);
        self.last_update = now;
    }

    /// Spends `mj` millijoules on an action (sample, transmit, encrypt).
    /// Returns `false` (and spends nothing) if insufficient charge remains.
    pub fn spend(&mut self, mj: f64) -> bool {
        assert!(mj >= 0.0, "cannot spend negative energy");
        if self.remaining_mj < mj {
            self.remaining_mj = 0.0;
            return false;
        }
        self.remaining_mj -= mj;
        true
    }
}

/// Energy cost constants for common device actions, in millijoules.
pub mod costs {
    /// One sensor ADC sample.
    pub const SAMPLE: f64 = 2.0;
    /// Radio transmission per millisecond of airtime (25 mW TX power).
    pub const TX_PER_MS: f64 = 0.025;
    /// Sealing one message with ChaCha20+HMAC (measured class, per 100 B).
    pub const SEAL_PER_100B: f64 = 0.05;
    /// Waking the MCU for a duty cycle.
    pub const WAKEUP: f64 = 0.5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_on_creation() {
        let b = Battery::new(1000.0, 1.0);
        assert_eq!(b.fraction(), 1.0);
        assert!(!b.is_empty());
    }

    #[test]
    fn idle_drain_over_time() {
        let mut b = Battery::new(1000.0, 1.0); // 1 mW
        b.advance_to(SimTime::from_secs(500)); // 500 mJ drained
        assert!((b.fraction() - 0.5).abs() < 1e-9);
        b.advance_to(SimTime::from_secs(2000));
        assert!(b.is_empty());
    }

    #[test]
    fn spend_depletes_and_refuses_when_empty() {
        let mut b = Battery::new(10.0, 0.0);
        assert!(b.spend(6.0));
        assert!(!b.spend(6.0));
        assert!(b.is_empty(), "failed spend zeroes the battery");
    }

    #[test]
    fn solar_recharges_during_day() {
        // Capacity large enough that the recharge is not clamped at full.
        let mut b = Battery::new(10_000_000.0, 1.0).with_solar(5.0);
        b.spend(5_000_000.0);
        // Advance across a midday minute: net +4 mW.
        let noon = SimTime::from_hours(12);
        b.advance_to(noon);
        let before = b.fraction();
        b.advance_to(noon + SimDuration::from_secs(60));
        assert!(b.fraction() > before);
    }

    #[test]
    fn no_recharge_at_night() {
        let mut b = Battery::new(1000.0, 1.0).with_solar(5.0);
        b.spend(500.0);
        let midnight = SimTime::from_days(1);
        b.advance_to(midnight);
        let before = b.fraction();
        b.advance_to(midnight + SimDuration::from_secs(60));
        assert!(b.fraction() < before);
    }

    #[test]
    fn recharge_clamped_at_capacity() {
        let mut b = Battery::new(100.0, 0.0).with_solar(100.0);
        b.advance_to(SimTime::from_hours(12));
        assert_eq!(b.fraction(), 1.0);
    }

    #[test]
    fn advance_backwards_is_noop() {
        let mut b = Battery::new(100.0, 1.0);
        b.advance_to(SimTime::from_secs(10));
        let f = b.fraction();
        b.advance_to(SimTime::from_secs(5));
        assert_eq!(b.fraction(), f);
    }

    #[test]
    fn multi_day_advance_uses_average_daylight() {
        let mut b = Battery::new(1_000_000.0, 1.0).with_solar(2.0);
        // Over exactly 2 days: drain 1 mW continuous, recharge 2 mW half time
        // ⇒ net zero.
        b.advance_to(SimTime::from_days(2));
        assert!((b.fraction() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0, 0.0);
    }
}
