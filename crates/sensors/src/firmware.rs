//! Device firmware: the sampling/encoding/energy loop that turns raw
//! readings into NGSI entity updates ready for the radio.
//!
//! The firmware is transport-agnostic: it produces [`TelemetryFrame`]s and
//! the platform layer (swamp-core) decides how to seal and ship them. What
//! the firmware owns is the *behavioral rhythm* of a device — sample period,
//! batching, energy accounting — which is exactly what the behavioral
//! anomaly baseline in `swamp-security` learns.

use swamp_codec::ngsi::{Attribute, Entity};
use swamp_sim::{SimDuration, SimTime};

use crate::device::DeviceId;
use crate::power::{costs, Battery};
use crate::probes::Reading;

/// A batch of readings encoded as one NGSI entity update.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryFrame {
    /// Originating device.
    pub device: DeviceId,
    /// Monotonic per-device sequence number.
    pub seq: u64,
    /// The entity update payload.
    pub entity: Entity,
    /// When the frame was assembled.
    pub at: SimTime,
}

/// Why the firmware refused to emit a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirmwareError {
    /// Battery exhausted.
    OutOfEnergy,
    /// Not yet time for the next sample.
    NotDue,
}

impl std::fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FirmwareError::OutOfEnergy => f.write_str("battery exhausted"),
            FirmwareError::NotDue => f.write_str("sample not due yet"),
        }
    }
}
impl std::error::Error for FirmwareError {}

/// The firmware loop state for one telemetry device.
///
/// # Example
/// ```
/// use swamp_sensors::firmware::DeviceFirmware;
/// use swamp_sensors::power::Battery;
/// use swamp_sensors::probes::Reading;
/// use swamp_sim::{SimDuration, SimTime};
///
/// let mut fw = DeviceFirmware::new(
///     "probe-1", "SoilProbe", SimDuration::from_hours(1), Battery::field_probe());
/// let reading = Reading {
///     device: "probe-1".into(), quantity: "moisture_vwc",
///     value: 0.24, at: SimTime::ZERO,
/// };
/// let frame = fw.assemble(SimTime::ZERO, &[reading]).unwrap();
/// assert_eq!(frame.seq, 0);
/// assert_eq!(frame.entity.number("moisture_vwc"), Some(0.24));
/// ```
#[derive(Clone, Debug)]
pub struct DeviceFirmware {
    device: DeviceId,
    entity_type: String,
    sample_period: SimDuration,
    battery: Battery,
    next_due: SimTime,
    seq: u64,
}

impl DeviceFirmware {
    /// Creates firmware sampling every `sample_period`.
    pub fn new(
        device: impl Into<DeviceId>,
        entity_type: impl Into<String>,
        sample_period: SimDuration,
        battery: Battery,
    ) -> Self {
        DeviceFirmware {
            device: device.into(),
            entity_type: entity_type.into(),
            sample_period,
            battery,
            next_due: SimTime::ZERO,
            seq: 0,
        }
    }

    /// The device id.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// Remaining battery fraction.
    pub fn battery_fraction(&self) -> f64 {
        self.battery.fraction()
    }

    /// Whether the device is alive.
    pub fn is_alive(&self) -> bool {
        !self.battery.is_empty()
    }

    /// Next instant a sample is due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Frames emitted so far.
    pub fn frames_emitted(&self) -> u64 {
        self.seq
    }

    /// Whether a sample is due at `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Assembles the readings into a telemetry frame, charging the battery
    /// for wakeup, sampling and sealing energy. Advances the schedule.
    ///
    /// # Errors
    /// [`FirmwareError::NotDue`] before the schedule point;
    /// [`FirmwareError::OutOfEnergy`] once the battery is exhausted (the
    /// device is then permanently dead).
    pub fn assemble(
        &mut self,
        now: SimTime,
        readings: &[Reading],
    ) -> Result<TelemetryFrame, FirmwareError> {
        if !self.is_due(now) {
            return Err(FirmwareError::NotDue);
        }
        self.battery.advance_to(now);
        let payload_estimate = 40 + readings.len() * 30;
        let energy = costs::WAKEUP
            + costs::SAMPLE * readings.len() as f64
            + costs::SEAL_PER_100B * payload_estimate as f64 / 100.0;
        if !self.battery.spend(energy) {
            return Err(FirmwareError::OutOfEnergy);
        }

        let mut entity = Entity::new(self.device.entity_urn(), self.entity_type.clone());
        for r in readings {
            entity.set_attribute(
                r.quantity,
                Attribute::new(r.value).observed_at(r.at.as_millis()),
            );
        }
        entity.set_attribute(
            "battery_fraction",
            Attribute::new(self.battery.fraction()).observed_at(now.as_millis()),
        );
        entity.set_attribute(
            "seq",
            Attribute::new(self.seq as f64).observed_at(now.as_millis()),
        );

        let frame = TelemetryFrame {
            device: self.device.clone(),
            seq: self.seq,
            entity,
            at: now,
        };
        self.seq += 1;
        self.next_due = now + self.sample_period;
        Ok(frame)
    }

    /// Charges the battery for a radio transmission of the given airtime.
    /// Returns `false` if the battery died mid-transmission.
    pub fn charge_tx(&mut self, airtime: SimDuration) -> bool {
        self.battery
            .spend(costs::TX_PER_MS * airtime.as_millis() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(q: &'static str, v: f64, at: SimTime) -> Reading {
        Reading {
            device: "d".into(),
            quantity: q,
            value: v,
            at,
        }
    }

    fn fw(period_h: u64) -> DeviceFirmware {
        DeviceFirmware::new(
            "d",
            "SoilProbe",
            SimDuration::from_hours(period_h),
            Battery::field_probe(),
        )
    }

    #[test]
    fn frame_carries_readings_and_housekeeping() {
        let mut f = fw(1);
        let frame = f
            .assemble(
                SimTime::ZERO,
                &[reading("moisture_vwc", 0.31, SimTime::ZERO)],
            )
            .unwrap();
        assert_eq!(frame.entity.number("moisture_vwc"), Some(0.31));
        assert!(frame.entity.number("battery_fraction").unwrap() > 0.99);
        assert_eq!(frame.entity.number("seq"), Some(0.0));
        assert_eq!(frame.entity.entity_type(), "SoilProbe");
        assert_eq!(frame.entity.id().as_str(), "urn:swamp:device:d");
    }

    #[test]
    fn schedule_enforced() {
        let mut f = fw(1);
        f.assemble(SimTime::ZERO, &[]).unwrap();
        let early = SimTime::from_millis(30 * 60 * 1000);
        assert_eq!(f.assemble(early, &[]), Err(FirmwareError::NotDue));
        assert!(f.assemble(SimTime::from_hours(1), &[]).is_ok());
    }

    #[test]
    fn sequence_increments() {
        let mut f = fw(1);
        for i in 0..5u64 {
            let frame = f.assemble(SimTime::from_hours(i), &[]).unwrap();
            assert_eq!(frame.seq, i);
        }
        assert_eq!(f.frames_emitted(), 5);
    }

    #[test]
    fn battery_drains_until_death() {
        let mut f = DeviceFirmware::new(
            "d",
            "SoilProbe",
            SimDuration::from_hours(1),
            Battery::new(20.0, 0.0), // tiny battery
        );
        let mut emitted = 0;
        for i in 0..100u64 {
            match f.assemble(SimTime::from_hours(i), &[]) {
                Ok(_) => emitted += 1,
                Err(FirmwareError::OutOfEnergy) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(emitted > 0 && emitted < 100, "emitted {emitted}");
        assert!(!f.is_alive());
    }

    #[test]
    fn tx_charging() {
        let mut f = fw(1);
        let before = f.battery_fraction();
        assert!(f.charge_tx(SimDuration::from_millis(200)));
        assert!(f.battery_fraction() < before);
    }

    #[test]
    fn frame_roundtrips_through_json() {
        let mut f = fw(1);
        let frame = f
            .assemble(SimTime::ZERO, &[reading("tmax_c", 25.5, SimTime::ZERO)])
            .unwrap();
        let wire = frame.entity.to_json().to_compact_string();
        let back = Entity::from_json(&swamp_codec::Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, frame.entity);
    }
}
