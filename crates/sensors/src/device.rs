//! Device identity and health state shared by all sensor/actuator models.

use std::fmt;

/// Identifies one physical device in a pilot.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(String);

impl DeviceId {
    /// Creates a device id.
    ///
    /// # Panics
    /// Panics if `id` is empty.
    pub fn new(id: impl Into<String>) -> Self {
        let id = id.into();
        assert!(!id.is_empty(), "device id must be non-empty");
        DeviceId(id)
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The NGSI entity URN this device publishes as.
    pub fn entity_urn(&self) -> String {
        format!("urn:swamp:device:{}", self.0)
    }
}

impl fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviceId({:?})", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DeviceId {
    fn from(s: &str) -> Self {
        DeviceId::new(s)
    }
}

impl AsRef<str> for DeviceId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Health of a field device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Operating normally.
    #[default]
    Healthy,
    /// Producing readings, but degraded (drift/bias beyond spec).
    Degraded,
    /// Dead (battery exhausted or hardware failure); produces nothing.
    Failed,
}

/// Kinds of devices deployed in the pilots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceKind {
    /// Capacitance soil-moisture probe.
    SoilProbe,
    /// Agro-meteorological station.
    WeatherStation,
    /// Inline flow meter on an irrigation line.
    FlowMeter,
    /// Drone-mounted multispectral (NDVI) camera.
    NdviCamera,
    /// Solenoid valve actuator.
    Valve,
    /// Irrigation pump.
    Pump,
    /// Center-pivot irrigation machine.
    CenterPivot,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::SoilProbe => "SoilProbe",
            DeviceKind::WeatherStation => "WeatherStation",
            DeviceKind::FlowMeter => "FlowMeter",
            DeviceKind::NdviCamera => "NdviCamera",
            DeviceKind::Valve => "Valve",
            DeviceKind::Pump => "Pump",
            DeviceKind::CenterPivot => "CenterPivot",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_and_urn() {
        let id = DeviceId::new("probe-07");
        assert_eq!(id.as_str(), "probe-07");
        assert_eq!(id.entity_urn(), "urn:swamp:device:probe-07");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_id_panics() {
        let _ = DeviceId::new("");
    }

    #[test]
    fn health_default_is_healthy() {
        assert_eq!(DeviceHealth::default(), DeviceHealth::Healthy);
    }

    #[test]
    fn kind_display() {
        assert_eq!(DeviceKind::CenterPivot.to_string(), "CenterPivot");
        assert_eq!(DeviceKind::SoilProbe.to_string(), "SoilProbe");
    }
}
