//! # swamp-sensors — field device models for the SWAMP platform
//!
//! The pilots' hardware — soil probes, agro-met stations, flow meters, NDVI
//! drones, valves, pumps and center pivots — simulated with the properties
//! the platform actually has to cope with:
//!
//! - [`device`] — device identity, kind and health.
//! - [`probes`] — sensing models with bias/noise/drift and stuck-at
//!   failures (the source of the paper's "partial profile" problem).
//! - [`actuators`] — valves with actuation latency, pumps with energy
//!   metering, and the center-pivot machine with per-sector variable-rate
//!   control (the MATOPIBA VRI mechanism).
//! - [`power`] — battery/energy accounting, including the cost of security
//!   operations (the paper's "security mechanisms have to be energy
//!   efficient").
//! - [`firmware`] — the sample/encode/energy loop producing NGSI entity
//!   updates, whose rhythm the behavioral anomaly detectors baseline.
//!
//! ## Example
//!
//! ```
//! use swamp_sensors::probes::{SensorNoise, SoilMoistureProbe};
//! use swamp_sim::{SimRng, SimTime};
//!
//! let probe = SoilMoistureProbe::new("probe-ne-1", 3, SensorNoise::good(0.01));
//! let mut rng = SimRng::seed_from(7);
//! let reading = probe.sample(0.27, SimTime::from_hours(6), &mut rng).unwrap();
//! assert_eq!(reading.quantity, "moisture_vwc");
//! ```

pub mod actuators;
pub mod device;
pub mod firmware;
pub mod power;
pub mod probes;

pub use actuators::{CenterPivot, Pump, Valve};
pub use device::{DeviceHealth, DeviceId, DeviceKind};
pub use firmware::{DeviceFirmware, TelemetryFrame};
pub use power::Battery;
pub use probes::{NdviCamera, Reading, SensorNoise, SoilMoistureProbe, WeatherStation};
