//! Sensing device models: soil-moisture probes, weather stations, flow
//! meters and the drone NDVI camera.
//!
//! Each sensor samples a *true* physical value (from `swamp-agro`) and
//! returns an imperfect reading: calibration bias, Gaussian noise, slow
//! drift, and stuck-at failures. That imperfection is load-bearing — the
//! paper's "partial profile" challenge (experiment E6) and the tamper
//! detectors (E3) both hinge on the platform never seeing ground truth.

use swamp_sim::{SimRng, SimTime};

use crate::device::{DeviceHealth, DeviceId};

/// One sensor reading with provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Reading {
    /// Originating device.
    pub device: DeviceId,
    /// Measured quantity name (e.g. `"moisture_vwc"`).
    pub quantity: &'static str,
    /// The (imperfect) measured value.
    pub value: f64,
    /// Virtual time of the measurement.
    pub at: SimTime,
}

/// Common imperfection model applied by every analog sensor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorNoise {
    /// Constant calibration bias.
    pub bias: f64,
    /// Gaussian noise standard deviation per sample.
    pub noise_sd: f64,
    /// Linear drift per simulated day (sensor aging).
    pub drift_per_day: f64,
}

impl SensorNoise {
    /// A well-calibrated sensor.
    pub fn good(noise_sd: f64) -> Self {
        SensorNoise {
            bias: 0.0,
            noise_sd,
            drift_per_day: 0.0,
        }
    }

    /// Applies the imperfection model to a true value.
    pub fn apply(&self, truth: f64, at: SimTime, rng: &mut SimRng) -> f64 {
        truth
            + self.bias
            + self.drift_per_day * at.as_millis() as f64 / swamp_sim::time::MILLIS_PER_DAY as f64
            + rng.normal_with(0.0, self.noise_sd)
    }
}

/// A capacitance soil-moisture probe for one management zone.
///
/// # Example
/// ```
/// use swamp_sensors::probes::{SensorNoise, SoilMoistureProbe};
/// use swamp_sim::{SimRng, SimTime};
/// let mut probe = SoilMoistureProbe::new("probe-1", 0, SensorNoise::good(0.01));
/// let mut rng = SimRng::seed_from(1);
/// let r = probe.sample(0.25, SimTime::ZERO, &mut rng).unwrap();
/// assert!((r.value - 0.25).abs() < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct SoilMoistureProbe {
    id: DeviceId,
    zone: usize,
    noise: SensorNoise,
    health: DeviceHealth,
    stuck_value: Option<f64>,
}

impl SoilMoistureProbe {
    /// Creates a probe assigned to a management zone.
    pub fn new(id: impl Into<DeviceId>, zone: usize, noise: SensorNoise) -> Self {
        SoilMoistureProbe {
            id: id.into(),
            zone,
            noise,
            health: DeviceHealth::Healthy,
            stuck_value: None,
        }
    }

    /// The probe's device id.
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// The management zone the probe sits in.
    pub fn zone(&self) -> usize {
        self.zone
    }

    /// Current health.
    pub fn health(&self) -> DeviceHealth {
        self.health
    }

    /// Fails the probe stuck at its last plausible value (a classic field
    /// failure mode that naive platforms mistake for a very stable soil).
    pub fn fail_stuck_at(&mut self, value: f64) {
        self.health = DeviceHealth::Failed;
        self.stuck_value = Some(value);
    }

    /// Kills the probe outright (no more readings).
    pub fn fail_silent(&mut self) {
        self.health = DeviceHealth::Failed;
        self.stuck_value = None;
    }

    /// Samples the true volumetric water content `truth_vwc`.
    ///
    /// Returns `None` for a silently failed probe; a stuck probe keeps
    /// reporting its frozen value.
    pub fn sample(&self, truth_vwc: f64, at: SimTime, rng: &mut SimRng) -> Option<Reading> {
        let value = match (self.health, self.stuck_value) {
            (DeviceHealth::Failed, Some(v)) => v,
            (DeviceHealth::Failed, None) => return None,
            _ => self.noise.apply(truth_vwc, at, rng).clamp(0.0, 1.0),
        };
        Some(Reading {
            device: self.id.clone(),
            quantity: "moisture_vwc",
            value,
            at,
        })
    }
}

/// An agro-meteorological station: temperature, humidity, wind, solar, rain.
#[derive(Clone, Debug)]
pub struct WeatherStation {
    id: DeviceId,
    temp_noise: SensorNoise,
    rh_noise: SensorNoise,
}

impl WeatherStation {
    /// Creates a station with typical instrument-grade noise.
    pub fn new(id: impl Into<DeviceId>) -> Self {
        WeatherStation {
            id: id.into(),
            temp_noise: SensorNoise::good(0.3),
            rh_noise: SensorNoise::good(2.0),
        }
    }

    /// The station's device id.
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// Samples a day of true weather into individual readings.
    pub fn sample_day(
        &self,
        day: &swamp_agro::WeatherDay,
        at: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Reading> {
        let mk = |quantity, value| Reading {
            device: self.id.clone(),
            quantity,
            value,
            at,
        };
        vec![
            mk("tmax_c", self.temp_noise.apply(day.tmax_c, at, rng)),
            mk("tmin_c", self.temp_noise.apply(day.tmin_c, at, rng)),
            mk(
                "rh_mean_pct",
                self.rh_noise
                    .apply(day.rh_mean_pct, at, rng)
                    .clamp(0.0, 100.0),
            ),
            mk(
                "wind_2m",
                (day.wind_2m + rng.normal_with(0.0, 0.2)).max(0.0),
            ),
            mk(
                "solar_mj",
                (day.solar_mj + rng.normal_with(0.0, 0.5)).max(0.0),
            ),
            mk(
                "rain_mm",
                (day.rain_mm + rng.normal_with(0.0, 0.2)).max(0.0),
            ),
        ]
    }
}

/// An inline flow meter with a cumulative totalizer.
#[derive(Clone, Debug)]
pub struct FlowMeter {
    id: DeviceId,
    noise: SensorNoise,
    total_m3: f64,
}

impl FlowMeter {
    /// Creates a meter (±1.5% class accuracy represented as noise).
    pub fn new(id: impl Into<DeviceId>) -> Self {
        FlowMeter {
            id: id.into(),
            noise: SensorNoise::good(0.015),
            total_m3: 0.0,
        }
    }

    /// The meter's device id.
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// Meters a delivery of `true_m3` cubic meters, returning the measured
    /// volume and updating the totalizer.
    pub fn meter(&mut self, true_m3: f64, at: SimTime, rng: &mut SimRng) -> Reading {
        let measured = (true_m3 * (1.0 + self.noise.apply(0.0, at, rng))).max(0.0);
        self.total_m3 += measured;
        Reading {
            device: self.id.clone(),
            quantity: "volume_m3",
            value: measured,
            at,
        }
    }

    /// Lifetime metered volume, m³.
    pub fn total_m3(&self) -> f64 {
        self.total_m3
    }
}

/// A drone-mounted NDVI camera surveying management zones.
///
/// The drone visits zones in order; each overflight yields one NDVI sample
/// per zone with optical noise. Its identity can be spoofed by the Sybil
/// attacker in `swamp-security` — which is exactly the scenario the paper
/// warns about.
#[derive(Clone, Debug)]
pub struct NdviCamera {
    id: DeviceId,
    noise: SensorNoise,
}

impl NdviCamera {
    /// Creates a camera with typical radiometric noise.
    pub fn new(id: impl Into<DeviceId>) -> Self {
        NdviCamera {
            id: id.into(),
            noise: SensorNoise::good(0.02),
        }
    }

    /// The camera's device id.
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// Surveys all zones, returning one reading per zone (quantity
    /// `"ndvi_zone_<k>"`).
    pub fn survey(
        &self,
        true_ndvi_per_zone: &[f64],
        at: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Reading> {
        true_ndvi_per_zone
            .iter()
            .enumerate()
            .map(|(zone, &truth)| Reading {
                device: self.id.clone(),
                quantity: zone_quantity(zone),
                value: self.noise.apply(truth, at, rng).clamp(-1.0, 1.0),
                at,
            })
            .collect()
    }
}

/// Static names for per-zone NDVI quantities (up to 16 zones, the VRI max).
pub fn zone_quantity(zone: usize) -> &'static str {
    const NAMES: [&str; 16] = [
        "ndvi_zone_0",
        "ndvi_zone_1",
        "ndvi_zone_2",
        "ndvi_zone_3",
        "ndvi_zone_4",
        "ndvi_zone_5",
        "ndvi_zone_6",
        "ndvi_zone_7",
        "ndvi_zone_8",
        "ndvi_zone_9",
        "ndvi_zone_10",
        "ndvi_zone_11",
        "ndvi_zone_12",
        "ndvi_zone_13",
        "ndvi_zone_14",
        "ndvi_zone_15",
    ];
    NAMES.get(zone).copied().unwrap_or("ndvi_zone_other")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::SimDuration;

    fn rng() -> SimRng {
        SimRng::seed_from(99)
    }

    #[test]
    fn probe_reading_near_truth() {
        let probe = SoilMoistureProbe::new("p", 0, SensorNoise::good(0.005));
        let mut r = rng();
        let mut sum = 0.0;
        let n = 1000;
        for _ in 0..n {
            sum += probe.sample(0.30, SimTime::ZERO, &mut r).unwrap().value;
        }
        assert!((sum / n as f64 - 0.30).abs() < 0.002);
    }

    #[test]
    fn probe_bias_shifts_mean() {
        let noise = SensorNoise {
            bias: 0.05,
            noise_sd: 0.001,
            drift_per_day: 0.0,
        };
        let probe = SoilMoistureProbe::new("p", 0, noise);
        let v = probe.sample(0.20, SimTime::ZERO, &mut rng()).unwrap().value;
        assert!((v - 0.25).abs() < 0.01);
    }

    #[test]
    fn probe_drift_grows_with_time() {
        let noise = SensorNoise {
            bias: 0.0,
            noise_sd: 0.0,
            drift_per_day: 0.001,
        };
        let probe = SoilMoistureProbe::new("p", 0, noise);
        let day0 = probe.sample(0.2, SimTime::ZERO, &mut rng()).unwrap().value;
        let day100 = probe
            .sample(0.2, SimTime::from_days(100), &mut rng())
            .unwrap()
            .value;
        assert!((day100 - day0 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn probe_clamps_to_physical_range() {
        let noise = SensorNoise {
            bias: 2.0,
            noise_sd: 0.0,
            drift_per_day: 0.0,
        };
        let probe = SoilMoistureProbe::new("p", 0, noise);
        assert_eq!(
            probe.sample(0.5, SimTime::ZERO, &mut rng()).unwrap().value,
            1.0
        );
    }

    #[test]
    fn stuck_probe_freezes() {
        let mut probe = SoilMoistureProbe::new("p", 0, SensorNoise::good(0.01));
        probe.fail_stuck_at(0.33);
        for i in 0..5 {
            let r = probe
                .sample(0.1 * i as f64, SimTime::from_days(i), &mut rng())
                .unwrap();
            assert_eq!(r.value, 0.33);
        }
        assert_eq!(probe.health(), DeviceHealth::Failed);
    }

    #[test]
    fn silent_probe_returns_none() {
        let mut probe = SoilMoistureProbe::new("p", 0, SensorNoise::good(0.01));
        probe.fail_silent();
        assert!(probe.sample(0.2, SimTime::ZERO, &mut rng()).is_none());
    }

    #[test]
    fn weather_station_covers_quantities() {
        let station = WeatherStation::new("ws");
        let day = swamp_agro::WeatherDay {
            day_of_year: 100,
            tmax_c: 25.0,
            tmin_c: 14.0,
            rh_mean_pct: 60.0,
            wind_2m: 2.0,
            solar_mj: 20.0,
            rain_mm: 0.0,
        };
        let readings = station.sample_day(&day, SimTime::ZERO, &mut rng());
        let quantities: Vec<_> = readings.iter().map(|r| r.quantity).collect();
        assert_eq!(
            quantities,
            vec![
                "tmax_c",
                "tmin_c",
                "rh_mean_pct",
                "wind_2m",
                "solar_mj",
                "rain_mm"
            ]
        );
        // Values near truth.
        assert!((readings[0].value - 25.0).abs() < 2.0);
        assert!(readings[5].value >= 0.0);
    }

    #[test]
    fn flow_meter_totalizes() {
        let mut fm = FlowMeter::new("fm");
        let mut r = rng();
        let mut measured = 0.0;
        for _ in 0..100 {
            measured += fm.meter(10.0, SimTime::ZERO, &mut r).value;
        }
        assert!((fm.total_m3() - measured).abs() < 1e-9);
        // 1000 m3 true, ±1.5% noise: total within 2%.
        assert!((fm.total_m3() - 1000.0).abs() < 20.0, "{}", fm.total_m3());
    }

    #[test]
    fn ndvi_survey_per_zone() {
        let cam = NdviCamera::new("drone-1");
        let truth = [0.8, 0.6, 0.3];
        let readings = cam.survey(&truth, SimTime::from_hours(10), &mut rng());
        assert_eq!(readings.len(), 3);
        for (i, r) in readings.iter().enumerate() {
            assert_eq!(r.quantity, zone_quantity(i));
            assert!((r.value - truth[i]).abs() < 0.1);
        }
    }

    #[test]
    fn zone_quantity_saturates() {
        assert_eq!(zone_quantity(3), "ndvi_zone_3");
        assert_eq!(zone_quantity(99), "ndvi_zone_other");
    }

    #[test]
    fn deterministic_sampling() {
        let probe = SoilMoistureProbe::new("p", 0, SensorNoise::good(0.01));
        let t = SimTime::ZERO + SimDuration::from_hours(1);
        let a = probe.sample(0.2, t, &mut SimRng::seed_from(5)).unwrap();
        let b = probe.sample(0.2, t, &mut SimRng::seed_from(5)).unwrap();
        assert_eq!(a, b);
    }
}
