//! Property-based tests for the device models.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_sensors::actuators::{CenterPivot, Pump};
use swamp_sensors::power::Battery;
use swamp_sensors::probes::{SensorNoise, SoilMoistureProbe};
use swamp_sim::{SimDuration, SimRng, SimTime};

proptest! {
    /// Battery charge stays in [0, capacity] under any interleaving of
    /// spends and time advances.
    #[test]
    fn battery_charge_bounded(
        capacity in 10.0f64..100_000.0,
        drain in 0.0f64..5.0,
        solar in 0.0f64..10.0,
        ops in prop::collection::vec((0u8..2, 0.0f64..5_000.0), 1..50),
    ) {
        let mut b = Battery::new(capacity, drain).with_solar(solar);
        let mut t = SimTime::ZERO;
        for (kind, amount) in ops {
            match kind {
                0 => {
                    let _ = b.spend(amount);
                }
                _ => {
                    t = t + SimDuration::from_secs_f64(amount);
                    b.advance_to(t);
                }
            }
            prop_assert!((0.0..=1.0).contains(&b.fraction()), "{}", b.fraction());
        }
    }

    /// Probe readings are always inside the physical VWC range and within
    /// bias+drift+5σ of the truth.
    #[test]
    fn probe_reading_bounded(
        truth in 0.0f64..0.6,
        bias in -0.05f64..0.05,
        noise_sd in 0.0001f64..0.05,
        day in 0u64..400,
        seed in any::<u64>(),
    ) {
        let probe = SoilMoistureProbe::new(
            "p",
            0,
            SensorNoise { bias, noise_sd, drift_per_day: 0.0001 },
        );
        let mut rng = SimRng::seed_from(seed);
        let r = probe
            .sample(truth, SimTime::from_days(day), &mut rng)
            .expect("healthy probe");
        prop_assert!((0.0..=1.0).contains(&r.value));
        let expected = truth + bias + 0.0001 * day as f64;
        prop_assert!(
            (r.value - expected.clamp(0.0, 1.0)).abs() <= 5.0 * noise_sd + 1e-9,
            "reading {} vs expected {expected}",
            r.value
        );
    }

    /// Pivot water application is path-independent: advancing in many small
    /// steps applies the same per-sector totals as one big step.
    #[test]
    fn pivot_advance_path_independent(
        sectors in 1usize..12,
        hours in 1u64..48,
        splits in 2u64..20,
        speed_millis in 100u64..1000,
    ) {
        let speed = speed_millis as f64 / 1000.0;
        let mk = |sectors: usize| {
            let mut p = CenterPivot::new("p", sectors, 12.0, 10.0);
            p.set_sector_speeds(vec![speed; sectors]).unwrap();
            p.start(SimTime::ZERO);
            p
        };
        let mut one = mk(sectors);
        one.advance(SimTime::from_hours(hours));

        let mut many = mk(sectors);
        for i in 1..=splits {
            many.advance(SimTime::from_millis(hours * 3_600_000 * i / splits));
        }
        for (a, b) in one.total_applied_mm().iter().zip(many.total_applied_mm()) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        prop_assert!((one.angle_deg() - many.angle_deg()).abs() < 1e-6);
    }

    /// Pump energy equals power × running time regardless of how the
    /// interval is chopped up.
    #[test]
    fn pump_energy_additive(
        power in 1.0f64..100.0,
        run_hours in prop::collection::vec(1u64..10, 1..6),
    ) {
        let mut p = Pump::new("pump", 50.0, power);
        let mut t = SimTime::ZERO;
        let mut expected = 0.0;
        for (i, h) in run_hours.iter().enumerate() {
            if i % 2 == 0 {
                p.set_running(t, true);
                expected += power * *h as f64;
            } else {
                p.set_running(t, false);
            }
            t = t + SimDuration::from_hours(*h);
        }
        p.set_running(t, false);
        prop_assert!((p.energy_kwh(t) - expected).abs() < 1e-9);
    }
}
