//! # swamp — umbrella crate for the SWAMP Smart Water Management Platform
//!
//! Re-exports every SWAMP subsystem so that examples and downstream users can
//! depend on a single crate. See the workspace README for the architecture
//! overview and DESIGN.md for the subsystem inventory.
//!
//! ```
//! use swamp::sim::SimRng;
//! let mut rng = SimRng::seed_from(1);
//! let _ = rng.uniform_f64();
//! ```

pub use swamp_agro as agro;
pub use swamp_codec as codec;
pub use swamp_core as core;
pub use swamp_crypto as crypto;
pub use swamp_fog as fog;
pub use swamp_irrigation as irrigation;
pub use swamp_net as net;
pub use swamp_pilots as pilots;
pub use swamp_security as security;
pub use swamp_sensors as sensors;
pub use swamp_shard as shard;
pub use swamp_sim as sim;
