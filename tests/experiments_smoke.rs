//! Smoke + determinism tests over the whole experiment harness: every
//! report regenerates, is non-empty, and is bit-identical across runs with
//! the same seed.

use swamp::pilots::experiments::run_all;

#[test]
fn all_reports_generate_and_are_nonempty() {
    let reports = run_all(42);
    assert_eq!(reports.len(), 18, "E1..E16 plus ablations");
    for r in &reports {
        assert!(!r.is_empty(), "{} has rows", r.title);
        assert!(!r.headers.is_empty());
        let text = r.to_string();
        assert!(text.starts_with("## "), "{}", r.title);
        // Every row renders with the right arity (push_row enforces it, but
        // the Display path is what EXPERIMENTS.md consumes).
        assert!(text.lines().count() >= 3);
    }
    // Titles cover every experiment id.
    let all_titles: String = reports.iter().map(|r| r.title.as_str()).collect();
    for id in [
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14",
        "E16",
    ] {
        assert!(all_titles.contains(id), "missing {id}");
    }
}

#[test]
fn harness_is_deterministic_per_seed() {
    let a = run_all(7);
    let b = run_all(7);
    assert_eq!(a, b, "same seed, same tables");
}

#[test]
fn different_seeds_change_stochastic_tables() {
    let a = run_all(1);
    let b = run_all(2);
    // At least the season-level water numbers must differ across seeds.
    assert_ne!(
        a[0].rows, b[0].rows,
        "E1 is weather-driven and must vary with seed"
    );
}
