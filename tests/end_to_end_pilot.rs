//! End-to-end integration: field devices → secure network ingestion →
//! context/history → irrigation decision → authorized actuation, across
//! every SWAMP crate at once.

use swamp::agro::soil::{SoilProperties, SoilWaterBalance, WaterFlux};
use swamp::codec::ngsi::Entity;
use swamp::core::platform::{DeploymentConfig, Platform};
use swamp::irrigation::schedule::{IrrigationPolicy, ThresholdRefill, ZoneView};
use swamp::security::access::{Action, Decision};
use swamp::sensors::actuators::CenterPivot;
use swamp::sensors::device::DeviceKind;
use swamp::sensors::probes::{SensorNoise, SoilMoistureProbe};
use swamp::sim::{SimDuration, SimRng, SimTime};

/// A full closed loop: the true soil dries, the probe reports it through
/// the platform, the scheduler decides from platform state, the pivot
/// applies water, and the true soil recovers.
#[test]
fn closed_loop_irrigation_through_the_platform() {
    let mut platform = Platform::builder(DeploymentConfig::FarmFog).seed(1).build();
    platform
        .register_device(
            SimTime::ZERO,
            "probe-z0",
            DeviceKind::SoilProbe,
            "owner:farm",
        )
        .unwrap();
    platform
        .register_device(
            SimTime::ZERO,
            "pivot-1",
            DeviceKind::CenterPivot,
            "owner:farm",
        )
        .unwrap();

    let mut truth = SoilWaterBalance::new(SoilProperties::loam(), 0.6, 0.5);
    let probe = SoilMoistureProbe::new("probe-z0", 0, SensorNoise::good(0.005));
    let mut rng = SimRng::seed_from(2);
    let mut policy = ThresholdRefill::new(1.0);
    let mut pivot = CenterPivot::new("pivot-1", 1, 12.0, 5.0);

    platform.idm.register_client("scheduler", "s3cret", &[]);
    platform
        .pdp
        .add_policy(swamp::security::access::Policy::new(
            swamp::security::access::Effect::Allow,
            swamp::security::access::SubjectMatch::Exact("client:scheduler".into()),
            "urn:swamp:device:pivot-1",
            &[Action::Command],
        ));

    let mut irrigated_days = 0;
    let mut driest_platform_view: f64 = 1.0;
    for day in 0..30u64 {
        let t = SimTime::from_days(day);

        // Device side: sample truth, publish (retry against LPWAN loss).
        let reading = probe
            .sample(truth.volumetric_content(), t, &mut rng)
            .expect("healthy probe");
        for attempt in 0..5 {
            let mut e = Entity::new("urn:swamp:device:probe-z0", "SoilProbe");
            e.set("moisture_vwc", reading.value);
            e.set("seq", (day * 5 + attempt) as f64);
            let at = t + SimDuration::from_mins(attempt * 3);
            let _ = platform.device_publish(at, "probe-z0", &e);
            platform.pump(at + SimDuration::from_mins(2));
            if platform
                .history
                .last("urn:swamp:device:probe-z0", "moisture_vwc")
                .is_some_and(|s| s.at >= t)
            {
                break;
            }
        }

        // Platform side: build the zone view FROM PLATFORM STATE (not truth).
        let vwc = platform
            .context
            .entity(&"urn:swamp:device:probe-z0".into())
            .and_then(|e| e.number("moisture_vwc"))
            .expect("context holds the probe");
        driest_platform_view = driest_platform_view.min(vwc);
        let fc = truth.soil().field_capacity;
        let depletion_mm = ((fc - vwc) * 600.0).max(0.0); // 0.6 m root zone
        let view = ZoneView {
            depletion_mm,
            taw_mm: truth.taw_mm(),
            raw_mm: truth.raw_mm(),
            etc_mm: 6.0,
            forecast_rain_mm: 0.0,
            das: day as u32,
        };
        let depth = policy.decide(&view);

        // Actuation goes through authorization.
        let mut applied_mm = 0.0;
        if depth > 0.0 {
            // Tokens live 8 h; the scheduler re-authenticates each day.
            let sched_token = platform
                .idm
                .client_credentials_grant(t, "scheduler", "s3cret", &[])
                .unwrap();
            let decision = platform
                .authorize_command(t, &sched_token, "pivot-1")
                .expect("valid token");
            assert_eq!(decision, Decision::PermitPolicy);
            // One pivot pass sized to the prescription (speed ∝ 5mm/depth).
            let speed = (5.0 / depth).clamp(0.05, 1.0);
            pivot.set_sector_speeds(vec![speed]).unwrap();
            pivot.start(t);
            let applied = pivot.stop(t + SimDuration::from_hours(12));
            applied_mm = applied[0];
            irrigated_days += 1;
        }

        // Physics advances with whatever was actually applied.
        truth.step(WaterFlux {
            rain_mm: 0.0,
            irrigation_mm: applied_mm,
            etc_mm: 6.0,
        });
    }

    assert!(
        irrigated_days >= 2,
        "a month at 6 mm/day needs several refills"
    );
    assert!(
        driest_platform_view < 0.22,
        "platform saw the drydown: {driest_platform_view}"
    );
    // The closed loop kept the true soil out of deep stress.
    assert!(
        truth.available_fraction() > 0.2,
        "closed loop held the soil up: {}",
        truth.available_fraction()
    );
    assert!(platform.observe().counter("ingest.accepted").unwrap() >= 25);
}

/// The same platform serves all four pilots' crops (the paper's
/// customization claim) — smoke-level, via the pilot runner.
#[test]
fn four_pilots_one_platform() {
    use swamp::pilots::pilots::{run_pilot, PilotSite};
    let mut names = std::collections::BTreeSet::new();
    for site in PilotSite::all() {
        let report = run_pilot(site, 11);
        names.insert(site.name());
        assert!(report.smart.days > 100, "{}: full season ran", site.name());
        assert!(report.smart.account.volume_m3 < report.baseline.account.volume_m3);
    }
    assert_eq!(names.len(), 4);
}

/// Fog replication preserves exactly the ingested history across an outage
/// (no loss, no duplication at the replica).
#[test]
fn outage_replication_is_lossless_and_idempotent() {
    let mut platform = Platform::builder(DeploymentConfig::FarmFog).seed(3).build();
    platform
        .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:x")
        .unwrap();
    platform.set_internet(false);

    let mut accepted = 0;
    let mut seq = 0.0;
    let mut t = SimTime::ZERO;
    while accepted < 20 {
        let mut e = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
        e.set("moisture_vwc", 0.2);
        e.set("seq", seq);
        seq += 1.0;
        let _ = platform.device_publish(t, "probe-1", &e);
        t += SimDuration::from_mins(10);
        platform.pump(t);
        accepted = platform.observe().counter("ingest.accepted").unwrap();
    }

    assert_eq!(
        platform.cloud_replica().unwrap().record_count(),
        0,
        "nothing reaches the cloud during the outage"
    );
    platform.set_internet(true);
    for i in 0..30 {
        platform.pump(t + SimDuration::from_mins(10 * (i + 1)));
    }
    let replica = platform.cloud_replica().unwrap();
    assert_eq!(replica.record_count() as u64, accepted);
}
