//! Cross-crate property tests on system invariants.
//!
//! The proptest cases live in the `proptest_gated` module at the bottom
//! (proptest is not resolvable in the offline build environment — see the
//! `proptest-tests` feature note in this crate's Cargo.toml). The tests in
//! the file body are always on: seeded re-statements of the cross-crate
//! invariants the gated cases cover, so the suite exercises them in plain
//! CI too.

use swamp::codec::ngsi::Entity;
use swamp::core::platform::{DeploymentConfig, Platform};
use swamp::fog::OutageSchedule;
use swamp::sim::{SimDuration, SimRng, SimTime};

/// Crosses the batched ingest path (`ingest_entities` → history append,
/// context `upsert_batch`, replication enqueue) with a scheduled uplink
/// partition: every update enqueued during the outage must still reach
/// the cloud replica once the uplink returns. Asserted entirely through
/// `Platform::observe()` — no deprecated metric getters.
#[test]
fn batched_ingest_survives_scheduled_partition() {
    let seed = 42u64;
    let mut schedule = OutageSchedule::new();
    // One-hour partition starting 10 minutes in: long enough to force
    // retry/backoff cycles at the 60 s base timeout.
    let outage_start = SimTime::from_secs(600);
    let outage_end = SimTime::from_secs(4_200);
    schedule.add_outage(outage_start, outage_end);

    let mut p = Platform::builder(DeploymentConfig::FarmFog)
        .seed(seed)
        .sync_base_timeout(SimDuration::from_secs(60))
        .sync_jitter(0.1)
        .uplink_outages(&schedule)
        .build();

    let mut rng = SimRng::seed_from(seed).split("cross-partition");
    let mut ingested = 0u64;
    // 3 h of minute-grained pumps; a batch of 8 entities lands every
    // 5 minutes for the first 2 h (so batches fall before, inside and
    // after the partition window), the final hour drains the backlog.
    for minute in 0..180u64 {
        let now = SimTime::ZERO.saturating_add(SimDuration::from_mins(minute));
        if minute < 120 && minute % 5 == 0 {
            let batch: Vec<Entity> = (0..8)
                .map(|i| {
                    let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                    e.set("moisture_vwc", 0.1 + rng.uniform_f64() * 0.3);
                    e.set("seq", minute as f64);
                    e
                })
                .collect();
            ingested += p.ingest_entities(now, batch) as u64;
        }
        p.pump(now);
    }

    assert_eq!(ingested, 24 * 8, "every batch is accepted locally");
    let snap = p.observe();
    let read = |name: &str| snap.counter(name).expect("counter registered");
    assert_eq!(
        read("ingest.accepted"),
        ingested,
        "batched ingest counts every update"
    );
    assert_eq!(
        read("sync.enqueued"),
        ingested,
        "fog replication enqueues every accepted update"
    );
    assert_eq!(
        read("sync.acked"),
        ingested,
        "eventual delivery: the partition delays acks, never loses them"
    );
    assert!(
        read("cloud.accepted") + read("cloud.duplicates") <= read("sync.transmissions"),
        "arrivals (applied + deduplicated) cannot exceed transmissions"
    );
    assert_eq!(
        read("cloud.accepted"),
        ingested,
        "the cloud replica applies each update exactly once"
    );
    assert!(
        read("sync.retransmissions") > 0,
        "the hour-long partition must force at least one retry cycle"
    );
    assert!(
        read("sync.timeouts") > 0,
        "in-flight records time out during the partition"
    );
}

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#[cfg(feature = "proptest-tests")]
mod proptest_gated {

    use proptest::prelude::*;

    use swamp::agro::soil::{SoilProperties, SoilWaterBalance, WaterFlux};
    use swamp::codec::ngsi::Entity;
    use swamp::core::platform::{DeploymentConfig, Platform};
    use swamp::irrigation::network::DistributionNetwork;
    use swamp::sensors::device::DeviceKind;
    use swamp::sim::SimTime;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soil water balance conserves mass for arbitrary flux sequences.
        #[test]
        fn soil_mass_balance_closes(
            fluxes in prop::collection::vec(
                (0.0f64..40.0, 0.0f64..30.0, 0.0f64..9.0),
                1..60,
            ),
            initial_frac in 0.0f64..1.0,
        ) {
            let mut swb = SoilWaterBalance::new(SoilProperties::loam(), 0.6, 0.5);
            swb.set_depletion_mm(initial_frac * swb.taw_mm());
            let d0 = swb.depletion_mm();
            let mut in_sum = 0.0;
            let mut out_sum = 0.0;
            for (rain, irr, etc) in fluxes {
                let out = swb.step(WaterFlux {
                    rain_mm: rain,
                    irrigation_mm: irr,
                    etc_mm: etc,
                });
                in_sum += rain + irr;
                out_sum += out.eta_mm + out.drainage_mm + out.runoff_mm;
                prop_assert!((0.0..=1.0).contains(&out.ks));
                prop_assert!(out.eta_mm <= etc + 1e-9);
                prop_assert!(swb.depletion_mm() >= -1e-9);
                prop_assert!(swb.depletion_mm() <= swb.taw_mm() + 1e-9);
            }
            let storage_gain = d0 - swb.depletion_mm();
            prop_assert!(
                (in_sum - out_sum - storage_gain).abs() < 1e-6,
                "mass balance: in={in_sum} out={out_sum} Δ={storage_gain}"
            );
        }

        /// Canal allocation never exceeds any capacity or any demand, for
        /// arbitrary two-level trees, under both policies.
        #[test]
        fn distribution_respects_capacities(
            source in 50.0f64..2000.0,
            branches in prop::collection::vec(
                (20.0f64..800.0, prop::collection::vec(1.0f64..400.0, 1..5)),
                1..5,
            ),
        ) {
            let mut net = DistributionNetwork::new(source);
            let mut farm_demands = Vec::new();
            let mut branch_info = Vec::new();
            for (capacity, demands) in &branches {
                let j = net.add_junction(net.root(), *capacity);
                let mut ids = Vec::new();
                for d in demands {
                    ids.push(net.add_farm(j, *d));
                    farm_demands.push(*d);
                }
                branch_info.push((*capacity, ids));
            }
            for alloc in [net.allocate_max_min(), net.allocate_greedy_upstream()] {
                prop_assert!(alloc.total_m3() <= source + 1e-6);
                for (got, want) in alloc.per_farm_m3.iter().zip(&farm_demands) {
                    prop_assert!(*got <= want + 1e-6);
                    prop_assert!(*got >= -1e-9);
                }
                for (capacity, ids) in &branch_info {
                    let through: f64 = ids.iter().map(|f| alloc.per_farm_m3[f.0]).sum();
                    prop_assert!(through <= capacity + 1e-6);
                }
                let fairness = alloc.jain_fairness(&farm_demands);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&fairness));
            }
        }

        /// Max-min never gives the worst-off farm less than greedy does.
        #[test]
        fn max_min_weakly_dominates_greedy_for_worst_farm(
            source in 100.0f64..1000.0,
            demands in prop::collection::vec(10.0f64..300.0, 2..8),
        ) {
            let mut net = DistributionNetwork::new(source);
            let trunk = net.add_junction(net.root(), source * 0.8);
            for d in &demands {
                net.add_farm(trunk, *d);
            }
            let greedy = net.allocate_greedy_upstream();
            let fair = net.allocate_max_min();
            let worst = |a: &swamp::irrigation::network::Allocation| {
                a.per_farm_m3
                    .iter()
                    .zip(&demands)
                    .map(|(x, d)| x / d)
                    .fold(f64::INFINITY, f64::min)
            };
            prop_assert!(worst(&fair) >= worst(&greedy) - 1e-9);
        }

        /// The platform ingest path accepts exactly what a provisioned device
        /// seals — for arbitrary attribute values — and the context reflects it.
        #[test]
        fn ingest_roundtrip_arbitrary_values(
            vwc in 0.0f64..1.0,
            temp in -20.0f64..55.0,
            battery in 0.0f64..1.0,
        ) {
            let mut p = Platform::builder(DeploymentConfig::FarmFog).seed(12).build();
            p.register_device(SimTime::ZERO, "probe", DeviceKind::SoilProbe, "owner:prop").unwrap();
            let key = p.keystore.device_key("probe").unwrap().key;
            let mut e = Entity::new("urn:swamp:device:probe", "SoilProbe");
            e.set("moisture_vwc", vwc);
            e.set("temperature_c", temp);
            e.set("battery_fraction", battery);
            e.set("seq", 0.0);
            let sealed = key.seal(
                &[9u8; 12],
                b"probe",
                e.to_json().to_compact_string().as_bytes(),
            );
            p.ingest_frame(SimTime::ZERO, "probe", &sealed).expect("ingest ok");
            let stored = p.context.entity(&"urn:swamp:device:probe".into()).unwrap();
            prop_assert_eq!(stored.number("moisture_vwc"), Some(vwc));
            prop_assert_eq!(stored.number("temperature_c"), Some(temp));
        }
    }
}
