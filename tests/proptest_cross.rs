//! Cross-crate property tests on system invariants.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use swamp::agro::soil::{SoilProperties, SoilWaterBalance, WaterFlux};
use swamp::codec::ngsi::Entity;
use swamp::core::platform::{DeploymentConfig, Platform};
use swamp::irrigation::network::DistributionNetwork;
use swamp::sensors::device::DeviceKind;
use swamp::sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soil water balance conserves mass for arbitrary flux sequences.
    #[test]
    fn soil_mass_balance_closes(
        fluxes in prop::collection::vec(
            (0.0f64..40.0, 0.0f64..30.0, 0.0f64..9.0),
            1..60,
        ),
        initial_frac in 0.0f64..1.0,
    ) {
        let mut swb = SoilWaterBalance::new(SoilProperties::loam(), 0.6, 0.5);
        swb.set_depletion_mm(initial_frac * swb.taw_mm());
        let d0 = swb.depletion_mm();
        let mut in_sum = 0.0;
        let mut out_sum = 0.0;
        for (rain, irr, etc) in fluxes {
            let out = swb.step(WaterFlux {
                rain_mm: rain,
                irrigation_mm: irr,
                etc_mm: etc,
            });
            in_sum += rain + irr;
            out_sum += out.eta_mm + out.drainage_mm + out.runoff_mm;
            prop_assert!((0.0..=1.0).contains(&out.ks));
            prop_assert!(out.eta_mm <= etc + 1e-9);
            prop_assert!(swb.depletion_mm() >= -1e-9);
            prop_assert!(swb.depletion_mm() <= swb.taw_mm() + 1e-9);
        }
        let storage_gain = d0 - swb.depletion_mm();
        prop_assert!(
            (in_sum - out_sum - storage_gain).abs() < 1e-6,
            "mass balance: in={in_sum} out={out_sum} Δ={storage_gain}"
        );
    }

    /// Canal allocation never exceeds any capacity or any demand, for
    /// arbitrary two-level trees, under both policies.
    #[test]
    fn distribution_respects_capacities(
        source in 50.0f64..2000.0,
        branches in prop::collection::vec(
            (20.0f64..800.0, prop::collection::vec(1.0f64..400.0, 1..5)),
            1..5,
        ),
    ) {
        let mut net = DistributionNetwork::new(source);
        let mut farm_demands = Vec::new();
        let mut branch_info = Vec::new();
        for (capacity, demands) in &branches {
            let j = net.add_junction(net.root(), *capacity);
            let mut ids = Vec::new();
            for d in demands {
                ids.push(net.add_farm(j, *d));
                farm_demands.push(*d);
            }
            branch_info.push((*capacity, ids));
        }
        for alloc in [net.allocate_max_min(), net.allocate_greedy_upstream()] {
            prop_assert!(alloc.total_m3() <= source + 1e-6);
            for (got, want) in alloc.per_farm_m3.iter().zip(&farm_demands) {
                prop_assert!(*got <= want + 1e-6);
                prop_assert!(*got >= -1e-9);
            }
            for (capacity, ids) in &branch_info {
                let through: f64 = ids.iter().map(|f| alloc.per_farm_m3[f.0]).sum();
                prop_assert!(through <= capacity + 1e-6);
            }
            let fairness = alloc.jain_fairness(&farm_demands);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fairness));
        }
    }

    /// Max-min never gives the worst-off farm less than greedy does.
    #[test]
    fn max_min_weakly_dominates_greedy_for_worst_farm(
        source in 100.0f64..1000.0,
        demands in prop::collection::vec(10.0f64..300.0, 2..8),
    ) {
        let mut net = DistributionNetwork::new(source);
        let trunk = net.add_junction(net.root(), source * 0.8);
        for d in &demands {
            net.add_farm(trunk, *d);
        }
        let greedy = net.allocate_greedy_upstream();
        let fair = net.allocate_max_min();
        let worst = |a: &swamp::irrigation::network::Allocation| {
            a.per_farm_m3
                .iter()
                .zip(&demands)
                .map(|(x, d)| x / d)
                .fold(f64::INFINITY, f64::min)
        };
        prop_assert!(worst(&fair) >= worst(&greedy) - 1e-9);
    }

    /// The platform ingest path accepts exactly what a provisioned device
    /// seals — for arbitrary attribute values — and the context reflects it.
    #[test]
    fn ingest_roundtrip_arbitrary_values(
        vwc in 0.0f64..1.0,
        temp in -20.0f64..55.0,
        battery in 0.0f64..1.0,
    ) {
        let mut p = Platform::builder(DeploymentConfig::FarmFog).seed(12).build();
        p.register_device(SimTime::ZERO, "probe", DeviceKind::SoilProbe, "owner:prop").unwrap();
        let key = p.keystore.device_key("probe").unwrap().key;
        let mut e = Entity::new("urn:swamp:device:probe", "SoilProbe");
        e.set("moisture_vwc", vwc);
        e.set("temperature_c", temp);
        e.set("battery_fraction", battery);
        e.set("seq", 0.0);
        let sealed = key.seal(
            &[9u8; 12],
            b"probe",
            e.to_json().to_compact_string().as_bytes(),
        );
        p.ingest_frame(SimTime::ZERO, "probe", &sealed).expect("ingest ok");
        let stored = p.context.entity(&"urn:swamp:device:probe".into()).unwrap();
        prop_assert_eq!(stored.number("moisture_vwc"), Some(vwc));
        prop_assert_eq!(stored.number("temperature_c"), Some(temp));
    }
}
