//! Integration: the detection pipeline feeding auto-quarantine — a
//! compromised probe starts reporting impossible values and the platform
//! cuts it off without operator intervention, while honest peers continue.

use swamp::codec::ngsi::Entity;
use swamp::core::platform::{DeploymentConfig, IngestError, Platform};
use swamp::security::pipeline::Recommendation;
use swamp::sensors::device::DeviceKind;
use swamp::sim::SimTime;

fn sealed(p: &Platform, device: &str, seq: f64, vwc: f64, nonce: u8) -> Vec<u8> {
    let key = p.keystore.device_key(device).unwrap().key;
    let mut e = Entity::new(format!("urn:swamp:device:{device}"), "SoilProbe");
    e.set("moisture_vwc", vwc);
    e.set("seq", seq);
    key.seal(
        &[nonce; 12],
        device.as_bytes(),
        e.to_json().to_compact_string().as_bytes(),
    )
}

#[test]
fn impossible_values_auto_quarantine_the_device() {
    let mut p = Platform::builder(DeploymentConfig::FarmFog)
        .seed(21)
        .build();
    p.set_auto_quarantine(true);
    p.register_device(SimTime::ZERO, "victim", DeviceKind::SoilProbe, "owner:x")
        .unwrap();
    p.register_device(SimTime::ZERO, "honest", DeviceKind::SoilProbe, "owner:x")
        .unwrap();

    // Honest traffic flows.
    let f = sealed(&p, "honest", 0.0, 0.24, 1);
    p.ingest_frame(SimTime::ZERO, "honest", &f).unwrap();

    // The compromised device reports a physically impossible reading. The
    // frame authenticates (the attacker holds the device), the value is
    // stored once — and the device is immediately quarantined.
    let f = sealed(&p, "victim", 0.0, 7.5, 2);
    p.ingest_frame(SimTime::from_secs(10), "victim", &f)
        .unwrap();
    assert_eq!(
        p.detectors.recommendation("victim"),
        Recommendation::Quarantine
    );
    assert_eq!(p.observe().counter("ingest.quarantined").unwrap(), 1);

    // The next frame from the victim is rejected at the registry gate.
    let f = sealed(&p, "victim", 1.0, 7.5, 3);
    let err = p
        .ingest_frame(SimTime::from_secs(20), "victim", &f)
        .unwrap_err();
    assert!(matches!(err, IngestError::UnregisteredDevice(_)));

    // The honest peer is untouched.
    let f = sealed(&p, "honest", 1.0, 0.25, 4);
    p.ingest_frame(SimTime::from_secs(30), "honest", &f)
        .unwrap();
    assert_eq!(p.detectors.recommendation("honest"), Recommendation::Trust);

    // Operator review clears and re-enables the device.
    p.detectors.clear_device("victim");
    p.registry.set_enabled("victim", true).unwrap();
    let f = sealed(&p, "victim", 2.0, 0.22, 5);
    p.ingest_frame(SimTime::from_secs(40), "victim", &f)
        .unwrap();
}

#[test]
fn quarantine_off_by_default_but_alerts_still_raised() {
    let mut p = Platform::builder(DeploymentConfig::FarmFog)
        .seed(22)
        .build();
    p.register_device(SimTime::ZERO, "d", DeviceKind::SoilProbe, "owner:x")
        .unwrap();
    let f = sealed(&p, "d", 0.0, 9.0, 1);
    p.ingest_frame(SimTime::ZERO, "d", &f).unwrap();
    // Alert exists, recommendation is quarantine, but the registry still
    // accepts the device (operator-in-the-loop mode).
    assert!(!p.detectors.alerts().is_empty());
    assert_eq!(p.detectors.recommendation("d"), Recommendation::Quarantine);
    let f = sealed(&p, "d", 1.0, 9.0, 2);
    p.ingest_frame(SimTime::from_secs(5), "d", &f).unwrap();
    assert_eq!(p.observe().counter("ingest.quarantined").unwrap(), 0);
}

#[test]
fn tamper_step_attack_is_caught_and_cut_off() {
    let mut p = Platform::builder(DeploymentConfig::FarmFog)
        .seed(23)
        .build();
    p.set_auto_quarantine(true);
    p.register_device(SimTime::ZERO, "probe", DeviceKind::SoilProbe, "owner:x")
        .unwrap();

    // 60 in-range baseline frames.
    let mut seq = 0.0;
    for i in 0..60u64 {
        let vwc = 0.24 + 0.002 * ((i % 7) as f64 - 3.0) / 3.0;
        let f = sealed(&p, "probe", seq, vwc, (i % 250) as u8 + 1);
        p.ingest_frame(SimTime::from_secs(i * 3600), "probe", &f)
            .unwrap();
        seq += 1.0;
    }
    assert_eq!(p.detectors.recommendation("probe"), Recommendation::Trust);

    // The attacker pins the value to 0.55 (in range, but a huge step).
    let mut cut_off = false;
    for i in 60..80u64 {
        let f = sealed(&p, "probe", seq, 0.55, (i % 250) as u8 + 1);
        seq += 1.0;
        match p.ingest_frame(SimTime::from_secs(i * 3600), "probe", &f) {
            Ok(()) => {}
            Err(IngestError::UnregisteredDevice(_)) => {
                cut_off = true;
                break;
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }
    assert!(cut_off, "step attack must lead to quarantine");
}
