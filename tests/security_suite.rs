//! Integration tests of the full threat model against the assembled
//! platform: every attack in the paper's §III, each met by the defense the
//! paper prescribes.

use swamp::codec::json::Json;
use swamp::codec::ngsi::Entity;
use swamp::core::platform::{DeploymentConfig, IngestError, Platform};
use swamp::crypto::keystore::KeyEpoch;
use swamp::net::link::LinkSpec;
use swamp::net::message::Message;
use swamp::security::attacks::{Eavesdropper, Interception, ReplayAttacker};
use swamp::security::ledger::{DeviceContract, Ledger, LifecycleEvent, LifecycleKind};
use swamp::sensors::device::DeviceKind;
use swamp::sim::{SimDuration, SimTime};

fn platform_with_probe() -> Platform {
    let mut p = Platform::builder(DeploymentConfig::FarmFog)
        .seed(99)
        .build();
    p.register_device(
        SimTime::ZERO,
        "probe-1",
        DeviceKind::SoilProbe,
        "owner:farm",
    )
    .unwrap();
    p
}

fn sealed_update(p: &Platform, device: &str, seq: f64, nonce_byte: u8) -> Vec<u8> {
    let key = p.keystore.device_key(device).unwrap().key;
    let mut e = Entity::new(format!("urn:swamp:device:{device}"), "SoilProbe");
    e.set("moisture_vwc", 0.23);
    e.set("seq", seq);
    key.seal(
        &[nonce_byte; 12],
        device.as_bytes(),
        e.to_json().to_compact_string().as_bytes(),
    )
}

/// Eavesdropping (paper: market manipulation from crop data): the wire tap
/// sees only ciphertext once devices seal their telemetry.
#[test]
fn eavesdropper_learns_nothing_from_sealed_telemetry() {
    let mut p = platform_with_probe();
    let farm = p.farm_node();
    let tap = p.net.add_tap("probe-1", farm);

    let mut e = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
    e.set("moisture_vwc", 0.23);
    e.set("seq", 0.0);
    p.device_publish(SimTime::ZERO, "probe-1", &e).unwrap();

    let captures: Vec<Vec<u8>> = p
        .net
        .tap_captures(tap)
        .iter()
        .map(|d| d.message.payload.clone())
        .collect();
    assert!(!captures.is_empty(), "the tap saw the transmission");

    let mut eve = Eavesdropper::new();
    eve.process(captures.iter().map(Vec::as_slice));
    assert_eq!(eve.leak_fraction(), 0.0, "all captures opaque");
    assert!(matches!(eve.intercepted()[0], Interception::Opaque { .. }));
}

/// Replay (captured sealed frame re-injected): rejected by the sequence
/// monitor even though the frame authenticates.
#[test]
fn replayed_sealed_frame_is_rejected() {
    let mut p = platform_with_probe();
    let frame = sealed_update(&p, "probe-1", 7.0, 1);
    p.ingest_frame(SimTime::ZERO, "probe-1", &frame).unwrap();

    let mut attacker = ReplayAttacker::new();
    attacker.capture(&frame);
    assert_eq!(attacker.captured_count(), 1);

    // Re-inject through the network from a compromised position.
    p.net.add_node("mitm");
    let farm = p.farm_node();
    p.net.connect("mitm", farm.clone(), LinkSpec::farm_lan());
    let injected = attacker.replay_all(
        &mut p.net,
        SimTime::from_secs(60),
        &"mitm".into(),
        &farm,
        "telemetry/probe-1",
    );
    assert_eq!(injected, 1);
    p.pump(SimTime::from_secs(120));
    assert_eq!(p.observe().counter("ingest.rejected_replay").unwrap(), 1);
    assert_eq!(
        p.observe().counter("ingest.accepted").unwrap(),
        1,
        "only the original"
    );
}

/// Sensor tampering in flight: any bit flip fails authentication.
#[test]
fn in_flight_modification_fails_authentication() {
    let mut p = platform_with_probe();
    let mut frame = sealed_update(&p, "probe-1", 0.0, 2);
    // The attacker tries to inflate the moisture value by flipping bits.
    for idx in [12, 20, frame.len() - 1] {
        let mut tampered = frame.clone();
        tampered[idx] ^= 0x01;
        let err = p
            .ingest_frame(SimTime::ZERO, "probe-1", &tampered)
            .unwrap_err();
        assert!(
            matches!(err, IngestError::AuthenticationFailed(_)),
            "idx {idx}"
        );
    }
    // Untampered frame still ingests (the checks above were side-effect-free).
    frame.truncate(frame.len()); // no-op, clarity
    p.ingest_frame(SimTime::ZERO, "probe-1", &frame).unwrap();
}

/// Rogue node (paper: "unauthorized node … may send false information"):
/// unregistered devices are dropped at the registry; plaintext spoofs of a
/// registered device fail authentication.
#[test]
fn rogue_and_spoofing_nodes_are_rejected() {
    let mut p = platform_with_probe();

    // Unregistered identity.
    let err = p
        .ingest_frame(SimTime::ZERO, "ghost-device", b"anything")
        .unwrap_err();
    assert!(matches!(err, IngestError::UnregisteredDevice(_)));

    // Spoofing a real identity without its key: craft a plausible plaintext
    // JSON (not sealed) claiming to be probe-1.
    let fake = Json::object([
        ("id", Json::from("urn:swamp:device:probe-1")),
        ("type", Json::from("SoilProbe")),
    ])
    .to_compact_string();
    let err = p
        .ingest_frame(SimTime::ZERO, "probe-1", fake.as_bytes())
        .unwrap_err();
    assert!(matches!(err, IngestError::AuthenticationFailed(_)));
}

/// Key revocation (compromised device response): frames stop ingesting the
/// moment the keystore revokes, and the ledger+contract agree.
#[test]
fn revoked_device_is_cut_off_everywhere() {
    let mut p = platform_with_probe();
    let frame = sealed_update(&p, "probe-1", 0.0, 3);
    p.ingest_frame(SimTime::ZERO, "probe-1", &frame).unwrap();

    // Compromise detected: revoke key, quarantine registry entry, record on
    // the ledger.
    p.keystore.revoke("probe-1");
    p.registry.set_enabled("probe-1", false).unwrap();
    let mut ledger = Ledger::new();
    ledger.register_authority("consortium", b"k");
    ledger
        .append(
            "consortium",
            SimTime::from_secs(10),
            vec![
                LifecycleEvent {
                    device_id: "probe-1".into(),
                    kind: LifecycleKind::Provisioned {
                        owner: "owner:farm".into(),
                    },
                    at: SimTime::ZERO,
                },
                LifecycleEvent {
                    device_id: "probe-1".into(),
                    kind: LifecycleKind::Revoked {
                        reason: "compromised".into(),
                    },
                    at: SimTime::from_secs(10),
                },
            ],
        )
        .unwrap();

    let frame2 = {
        // Even a frame sealed with the (stolen) old key is now rejected.
        let stolen_key = p.keystore.derive("probe-1", KeyEpoch(0));
        let mut e = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
        e.set("seq", 1.0);
        stolen_key.seal(
            &[4u8; 12],
            b"probe-1",
            e.to_json().to_compact_string().as_bytes(),
        )
    };
    let err = p
        .ingest_frame(SimTime::from_secs(20), "probe-1", &frame2)
        .unwrap_err();
    assert!(matches!(err, IngestError::UnregisteredDevice(_)));

    // The smart contract refuses the device too.
    let state = ledger.device_state("probe-1");
    assert!(!DeviceContract::provisioned_only()
        .evaluate(&state)
        .is_authorized());
    assert!(ledger.verify().is_ok());
}

/// SDN quarantine: after the controller denies a source, nothing from it
/// crosses the network, while peers are unaffected.
#[test]
fn sdn_quarantine_is_surgical() {
    use swamp::net::sdn::{FlowAction, FlowMatch};
    let mut p = Platform::builder(DeploymentConfig::FarmFog).seed(5).build();
    p.register_device(SimTime::ZERO, "good", DeviceKind::SoilProbe, "owner:x")
        .unwrap();
    p.register_device(SimTime::ZERO, "bad", DeviceKind::SoilProbe, "owner:x")
        .unwrap();

    p.net
        .flow_table_mut()
        .install(10, FlowMatch::from_src("bad"), FlowAction::Deny);

    let farm = p.farm_node();
    let err = p.net.send(
        SimTime::ZERO,
        "bad",
        farm.clone(),
        Message::new("telemetry/bad", vec![1, 2, 3]),
    );
    assert!(err.is_err());
    let ok = p.net.send(
        SimTime::ZERO,
        "good",
        farm,
        Message::new("telemetry/good", vec![1, 2, 3]),
    );
    assert!(ok.is_ok());
}

/// Expired and revoked tokens cannot read anything.
#[test]
fn token_lifecycle_enforced_at_the_read_path() {
    let mut p = platform_with_probe();
    p.context.upsert(SimTime::ZERO, {
        let mut e = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
        e.set("moisture_vwc", 0.2);
        e
    });
    p.idm.register_user("owner", "pw", &["owner:farm"]);
    let (token, _) = p.idm.password_grant(SimTime::ZERO, "owner", "pw").unwrap();

    assert!(p
        .authorized_read(SimTime::ZERO, &token, "urn:swamp:device:probe-1")
        .is_ok());

    // Expired (tokens live 8 h in the platform's IdM).
    let late = SimTime::ZERO + SimDuration::from_hours(9);
    assert!(p
        .authorized_read(late, &token, "urn:swamp:device:probe-1")
        .is_err());

    // Revoked.
    let (token2, _) = p.idm.password_grant(SimTime::ZERO, "owner", "pw").unwrap();
    p.idm.revoke(&token2);
    assert!(p
        .authorized_read(SimTime::ZERO, &token2, "urn:swamp:device:probe-1")
        .is_err());
}
