//! Integration: a drone as a *mobile fog node* — the paper's "possibly
//! mobile fog nodes acting in the field (e.g., drones…)". The drone surveys
//! NDVI across the field while out of radio range, buffers locally, and
//! drains its store-and-forward backlog during its short docking contacts.

use swamp::fog::mobile::{ContactPlan, LinkTransition, MobileLinkDriver};
use swamp::fog::sync::{CloudStore, DropPolicy, FogSync};
use swamp::net::link::LinkSpec;
use swamp::net::network::Network;
use swamp::sensors::probes::NdviCamera;
use swamp::sim::{SimDuration, SimRng, SimTime};

#[test]
fn drone_surveys_offline_and_syncs_at_contacts() {
    let mut net = Network::new(77);
    net.add_node("drone");
    net.add_node("farm-fog");
    net.connect("drone", "farm-fog", LinkSpec::farm_lan());

    // 15 minutes docked per 2-hour survey circuit.
    let plan = ContactPlan::drone_survey();
    let mut driver = MobileLinkDriver::new(plan);
    let mut sync = FogSync::builder("drone", "farm-fog")
        .capacity(10_000)
        .drop_policy(DropPolicy::Oldest)
        .base_timeout(SimDuration::from_secs(30))
        .backoff(1.0, SimDuration::from_secs(30))
        .jitter(0.0)
        .build();
    let mut base = CloudStore::new("farm-fog");
    let camera = NdviCamera::new("drone-cam");
    let mut rng = SimRng::seed_from(5);

    let truth_ndvi = [0.82, 0.74, 0.55, 0.79];
    let mut surveys = 0u64;
    let mut transitions = Vec::new();

    // 12 hours in 5-minute ticks.
    let mut t = SimTime::ZERO;
    for _ in 0..144 {
        let (up, transition) = driver.update(t);
        if let Some(tr) = transition {
            transitions.push(tr);
        }
        net.set_link_up(&"drone".into(), &"farm-fog".into(), up);

        if !up {
            // Out of range: surveying. One zone pass per tick.
            let readings = camera.survey(&truth_ndvi, t, &mut rng);
            for r in readings {
                sync.enqueue(t, r.quantity, r.value.to_be_bytes().to_vec())
                    .unwrap();
                surveys += 1;
            }
        } else {
            // Docked: drain the backlog.
            sync.sync_round(&mut net, t, 128);
            net.advance_to(t + SimDuration::from_secs(30));
            base.process(&mut net, t + SimDuration::from_secs(30));
            net.advance_to(t + SimDuration::from_secs(60));
            sync.poll_acks(&mut net, t + SimDuration::from_secs(60));
        }
        t += SimDuration::from_mins(5);
    }
    // Final docking to flush the tail.
    net.set_link_up(&"drone".into(), &"farm-fog".into(), true);
    for i in 0..20 {
        let at = t + SimDuration::from_mins(i);
        sync.sync_round(&mut net, at, 256);
        net.advance_to(at + SimDuration::from_secs(20));
        base.process(&mut net, at + SimDuration::from_secs(20));
        net.advance_to(at + SimDuration::from_secs(40));
        sync.poll_acks(&mut net, at + SimDuration::from_secs(40));
        if sync.pending() == 0 {
            break;
        }
    }

    assert!(
        surveys > 400,
        "most of the circuit is out of range: {surveys}"
    );
    assert_eq!(sync.pending(), 0, "backlog fully drained");
    assert_eq!(base.record_count() as u64, surveys, "no survey lost");
    // The link actually cycled: at least 5 up/down transitions in 12 h of
    // 2-hour circuits.
    assert!(transitions.len() >= 5, "{} transitions", transitions.len());
    assert!(transitions.contains(&LinkTransition::CameUp));
    assert!(transitions.contains(&LinkTransition::WentDown));
    // The base's latest NDVI per zone is close to the field truth.
    for (zone, &truth) in truth_ndvi.iter().enumerate() {
        let key = swamp::sensors::probes::zone_quantity(zone);
        let rec = base.latest(key).expect("zone reported");
        let value = f64::from_be_bytes(rec.payload.as_slice().try_into().unwrap());
        assert!(
            (value - truth).abs() < 0.1,
            "zone {zone}: {value} vs {truth}"
        );
    }
}
