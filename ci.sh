#!/usr/bin/env bash
# Offline CI for the SWAMP workspace: formatting, lints, tier-1
# build+test, then the full workspace test suite. Everything here runs
# without network access — registry deps are either vendored in-tree
# (criterion shim) or feature-gated off (proptest suites).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The platform path must not panic on reachable errors: unwrap/panic are
# denied in the core and fog library targets via in-source
# `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]`
# (command-line -D flags would leak to every workspace dependency cargo
# re-checks). Tests keep their unwraps; documented invariants use expect
# with a # Panics section. This step lints exactly those two lib targets.
echo "== cargo clippy -p swamp-core -p swamp-fog --lib (deny unwrap/panic)"
cargo clippy -p swamp-core -p swamp-fog --lib -- -D warnings

# Workspace invariants the compiler can't see: determinism (no wall
# clocks/OS entropy outside sanctioned harnesses; HashMap/HashSet
# iteration reachable from serialization entry points), panic-freedom in
# all lib targets, no silent Result discards, the crate-layering DAG, no
# internal callers of deprecated shims — plus the four call-graph rules
# from the v2 item graph: hot-path-alloc (no allocation reachable from
# pump/sync/worker/obs entries), cast-safety (no numeric `as` in wire
# paths), concurrency-discipline (disjoint `&mut` chunks only under
# `thread::scope`), and obs-name-drift (every family-prefixed instrument
# name resolves to exactly one registration of the matching kind).
# Exceptions live in analyzer.allow.toml with written justifications —
# including `symbol =`-scoped cold cuts, which go stale (and fail this
# step) the moment the hot path stops reaching them; see DESIGN.md §10
# and §15. Wall time is measured here in the shell: the analyzer itself
# is subject to its own determinism rule, so it never touches a clock.
echo "== swamp-analyzer --deny-all"
analyzer_start_ns=$(date +%s%N)
cargo run -q -p swamp-analyzer -- --deny-all
analyzer_end_ns=$(date +%s%N)
echo "   analyzer wall time: $(( (analyzer_end_ns - analyzer_start_ns) / 1000000 )) ms"

echo "== rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

# Observability must stay effectively free on the ingest+pump hot path:
# bench_obs times the same workload with instrumentation live vs muted
# (best-of-3 interleaved) and --check fails the build if the aggregate
# overhead exceeds 5%. Uses the release binaries built above.
echo "== bench-guard: obs overhead <= 5% (bench_obs --check)"
cargo run --release -q -p swamp-pilots --bin bench_obs -- --check 100 1000 > /dev/null

# Deep-backlog drains must stay near-linear in backlog depth: bench_sync
# times 1-shard drains at adjacent sizes and --check fails the build if
# drain time grows superlinearly (time ratio > size ratio x slack — the
# pre-indexed engine's O(B^2) drain showed ~size_ratio^2). Guards the
# sync engine's record-table + ready-queue + timer-wheel indexing.
echo "== bench-guard: sync drain stays near-linear (bench_sync --check)"
cargo run --release -q -p swamp-pilots --bin bench_sync -- --check 10000 100000 1000000 > /dev/null

echo "== cargo test --workspace -q"
cargo test --workspace -q

# The behavioral baseline must hold its claims: bench_e16 --check
# re-runs the deterministic per-pilot scorecard (recall >= 0.75 and
# precision >= 0.9 on every pilot's planted Sybil/tamper/takeover
# devices) and bounds the live-vs-muted detector wall-clock overhead on
# the densest stream at 10% (best-of-3 interleaved, reduced sizes).
echo "== bench-guard: baseline detector recall/precision floors + overhead <= 10% (bench_e16 --check)"
cargo run --release -q -p swamp-pilots --bin bench_e16 -- --check 256 96 > /dev/null

# Shard ≡ single-shard, serial ≡ parallel: the differential harness
# quantifies over the seed AND the scheduler (worker counts {1, 2, 8}
# inside the suite), so run it twice with different seeds — equivalence
# must hold as a property of the seed family and of the thread count,
# not one lucky constant or one lucky interleaving. Uses the test
# binary already built by the workspace test step.
echo "== shard-differential: N-shard/parallel == 1-shard/serial at seeds 42 and 1337"
SHARD_DIFF_SEED=42 cargo test -q -p swamp-pilots --test shard_differential
SHARD_DIFF_SEED=1337 cargo test -q -p swamp-pilots --test shard_differential

# Detector verdicts are part of the same contract: the flag set, the
# summed security.baseline.* counters and the precision/recall
# scorecard must be invariant across shards {1, 3, 8} x workers
# {1, 2, 8}, again at two seeds.
echo "== detector-differential: baseline verdicts invariant across shards/workers at seeds 42 and 1337"
SHARD_DIFF_SEED=42 cargo test -q -p swamp-pilots --test detector_differential
SHARD_DIFF_SEED=1337 cargo test -q -p swamp-pilots --test detector_differential

# The worker pool must not cost throughput: bench_e14 --check requires
# the best parallel schedule to beat serial at the largest fleet on
# multi-core machines; on a single core only scheduling/cache overhead
# is measurable, so the gate just bounds pathological collapse (>= 1/4
# of serial — the JSON records available_parallelism so the gate is
# honest about what it could test).
echo "== bench-guard: parallel shard schedule >= serial (bench_e14 --check)"
cargo run --release -q -p swamp-pilots --bin bench_e14 -- --check 1000 10000 > /dev/null

# The columnar read path must earn its keep: bench_e15 --check requires
# byte-identical answers from both layouts, the summary path to engage
# (segments pruned AND answered from frozen summaries), segmented
# wide-read p90 to beat the flat full scan, and retention to stay at
# parity. The wide-p90 gate holds at these reduced tiers because
# hot-series depth is set by the round schedule, not the device count.
echo "== bench-guard: summary-served wide reads beat the flat scan (bench_e15 --check)"
cargo run --release -q -p swamp-pilots --bin bench_e15 -- --check 500 2000 > /dev/null

echo "CI OK"
