#!/usr/bin/env bash
# Offline CI for the SWAMP workspace: formatting, lints, tier-1
# build+test, then the full workspace test suite. Everything here runs
# without network access — registry deps are either vendored in-tree
# (criterion shim) or feature-gated off (proptest suites).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "CI OK"
